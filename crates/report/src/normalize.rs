//! Normalized failure rates: the paper's §3.3 comparison methodology.
//!
//! "Normalization is performed by computing the robustness failure rate on
//! a per-MuT basis (number of test cases failed divided by number of test
//! cases executed for each individual MuT). Then, the MuTs are grouped
//! into comparable classes by functionality ... The individual failure
//! rates within each such group are averaged with uniform weights to
//! provide a group failure rate."

use ballista::campaign::{CampaignReport, MutTally};
use ballista::muts::FunctionGroup;
use serde::{Deserialize, Serialize};

/// Which per-MuT rate is being aggregated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Metric {
    /// Abort failures / cases.
    Abort,
    /// Restart failures / cases.
    Restart,
    /// Ground-truth Silent failures / cases.
    SilentTruth,
    /// Abort + Restart (the paper's non-Silent failure rate).
    AbortPlusRestart,
}

fn rate(t: &MutTally, metric: Metric) -> f64 {
    match metric {
        Metric::Abort => t.abort_rate(),
        Metric::Restart => t.restart_rate(),
        Metric::SilentTruth => t.silent_rate(),
        Metric::AbortPlusRestart => t.failure_rate(),
    }
}

/// A group's aggregated rate for one OS.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GroupRate {
    /// The rate (0..=1), uniform-weighted over non-Catastrophic MuTs.
    pub rate: f64,
    /// MuTs contributing to the average.
    pub muts_counted: usize,
    /// Whether the group contains at least one Catastrophic MuT (rendered
    /// as the paper's `*` in Table 2).
    pub has_catastrophic: bool,
    /// Whether the group has any MuTs at all on this OS (CE gaps).
    pub present: bool,
}

/// Uniform-weight group average, excluding Catastrophic MuTs.
#[must_use]
pub fn group_rate(report: &CampaignReport, group: FunctionGroup, metric: Metric) -> GroupRate {
    let members: Vec<&MutTally> = report.muts.iter().filter(|m| m.group == group).collect();
    let has_catastrophic = members.iter().any(|m| m.catastrophic);
    let counted: Vec<&&MutTally> = members.iter().filter(|m| !m.catastrophic).collect();
    let rate_value = if counted.is_empty() {
        0.0
    } else {
        counted.iter().map(|m| rate(m, metric)).sum::<f64>() / counted.len() as f64
    };
    GroupRate {
        rate: rate_value,
        muts_counted: counted.len(),
        has_catastrophic,
        present: !members.is_empty(),
    }
}

/// Overall rate with each *group* evenly weighted (the Table 2 "total"
/// convention: "the total failure rates give each group's failure rate an
/// even weighting to compensate for the effects caused by different APIs
/// having different numbers of functions").
#[must_use]
pub fn overall_group_weighted(report: &CampaignReport, metric: Metric) -> f64 {
    let rates: Vec<f64> = FunctionGroup::ALL
        .iter()
        .map(|&g| group_rate(report, g, metric))
        .filter(|g| g.present && g.muts_counted > 0)
        .map(|g| g.rate)
        .collect();
    if rates.is_empty() {
        0.0
    } else {
        rates.iter().sum::<f64>() / rates.len() as f64
    }
}

/// Overall rate with each *MuT* evenly weighted (the Table 1 convention),
/// restricted to a MuT predicate (system calls vs C library).
#[must_use]
pub fn overall_by_mut(
    report: &CampaignReport,
    metric: Metric,
    filter: impl Fn(&MutTally) -> bool,
) -> f64 {
    let rates: Vec<f64> = report
        .muts
        .iter()
        .filter(|m| !m.catastrophic && filter(m))
        .map(|m| rate(m, metric))
        .collect();
    if rates.is_empty() {
        0.0
    } else {
        rates.iter().sum::<f64>() / rates.len() as f64
    }
}

/// The Table 1 row for one OS.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Table1Row {
    /// System calls tested.
    pub sys_tested: usize,
    /// System calls with Catastrophic failures.
    pub sys_catastrophic: usize,
    /// System-call percent Restart (catastrophic MuTs excluded).
    pub sys_restart: f64,
    /// System-call percent Abort.
    pub sys_abort: f64,
    /// C functions tested.
    pub c_tested: usize,
    /// C functions with Catastrophic failures.
    pub c_catastrophic: usize,
    /// C-library percent Restart.
    pub c_restart: f64,
    /// C-library percent Abort.
    pub c_abort: f64,
    /// Total MuTs tested.
    pub total_tested: usize,
    /// Total MuTs with Catastrophic failures.
    pub total_catastrophic: usize,
    /// Overall percent Restart (per-MuT weighting).
    pub overall_restart: f64,
    /// Overall percent Abort (per-MuT weighting).
    pub overall_abort: f64,
}

/// Computes the Table 1 statistics for one OS.
#[must_use]
pub fn table1_row(report: &CampaignReport) -> Table1Row {
    let is_sys = |m: &MutTally| !m.group.is_c_library();
    let is_c = |m: &MutTally| m.group.is_c_library();
    let count = |f: &dyn Fn(&MutTally) -> bool| report.muts.iter().filter(|m| f(m)).count();
    let cat = |f: &dyn Fn(&MutTally) -> bool| {
        report
            .muts
            .iter()
            .filter(|m| f(m) && m.catastrophic)
            .count()
    };
    Table1Row {
        sys_tested: count(&is_sys),
        sys_catastrophic: cat(&is_sys),
        sys_restart: overall_by_mut(report, Metric::Restart, is_sys),
        sys_abort: overall_by_mut(report, Metric::Abort, is_sys),
        c_tested: count(&is_c),
        c_catastrophic: cat(&is_c),
        c_restart: overall_by_mut(report, Metric::Restart, is_c),
        c_abort: overall_by_mut(report, Metric::Abort, is_c),
        total_tested: report.muts.len(),
        total_catastrophic: report.muts.iter().filter(|m| m.catastrophic).count(),
        overall_restart: overall_by_mut(report, Metric::Restart, |_| true),
        overall_abort: overall_by_mut(report, Metric::Abort, |_| true),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ballista::muts::FunctionGroup as G;
    use sim_kernel::variant::OsVariant;

    fn tally(name: &str, group: G, cases: usize, aborts: usize, catastrophic: bool) -> MutTally {
        MutTally {
            name: name.to_owned(),
            group,
            cases,
            planned: cases,
            aborts,
            restarts: 0,
            silents: 0,
            error_reports: cases - aborts,
            passes: 0,
            suspected_hindering: 0,
            catastrophic,
            crash_reproducible_in_isolation: None,
            raw_outcomes: Vec::new(),
        }
    }

    fn report() -> CampaignReport {
        CampaignReport {
            os: OsVariant::Linux,
            muts: vec![
                tally("a", G::CChar, 100, 30, false),
                tally("b", G::CChar, 100, 50, false),
                tally("c", G::CChar, 100, 10, true), // excluded
                tally("d", G::IoPrimitives, 200, 20, false),
            ],
            total_cases: 500,
            stats: None,
            warnings: Vec::new(),
            degraded: false,
            fleet_degraded: false,
        }
    }

    #[test]
    fn group_average_is_uniform_and_excludes_catastrophic() {
        let r = report();
        let g = group_rate(&r, G::CChar, Metric::Abort);
        assert!((g.rate - 0.40).abs() < 1e-12, "mean of 30% and 50%, not 10%-polluted");
        assert_eq!(g.muts_counted, 2);
        assert!(g.has_catastrophic);
        let io = group_rate(&r, G::IoPrimitives, Metric::Abort);
        assert!((io.rate - 0.10).abs() < 1e-12);
        assert!(!io.has_catastrophic);
        // An absent group.
        let absent = group_rate(&r, G::CTime, Metric::Abort);
        assert!(!absent.present);
    }

    #[test]
    fn group_average_invariant_under_mut_permutation() {
        let mut r = report();
        let before = group_rate(&r, G::CChar, Metric::Abort).rate;
        r.muts.reverse();
        let after = group_rate(&r, G::CChar, Metric::Abort).rate;
        assert!((before - after).abs() < 1e-12);
    }

    #[test]
    fn overall_weightings_differ() {
        let r = report();
        // Per-MuT: (0.3 + 0.5 + 0.1)/3 over non-catastrophic = 0.3.
        let by_mut = overall_by_mut(&r, Metric::Abort, |_| true);
        assert!((by_mut - 0.3).abs() < 1e-12);
        // Group-weighted: (0.4 + 0.1)/2 = 0.25.
        let by_group = overall_group_weighted(&r, Metric::Abort);
        assert!((by_group - 0.25).abs() < 1e-12);
    }

    #[test]
    fn table1_row_counts() {
        let r = report();
        let row = table1_row(&r);
        assert_eq!(row.c_tested, 3);
        assert_eq!(row.c_catastrophic, 1);
        assert_eq!(row.sys_tested, 1);
        assert_eq!(row.sys_catastrophic, 0);
        assert_eq!(row.total_tested, 4);
        assert_eq!(row.total_catastrophic, 1);
        assert!((row.c_abort - 0.40).abs() < 1e-12);
        assert!((row.sys_abort - 0.10).abs() < 1e-12);
    }
}
