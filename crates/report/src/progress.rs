//! Live progress and metrics renderers for the telemetry hub.
//!
//! [`render_progress`] turns a [`ProgressSnapshot`] into the single-line
//! campaign ticker the `experiments` binaries redraw on stderr while a
//! fleet runs; [`render_metrics`] turns a [`MetricsSnapshot`] into the
//! human-readable table printed after `results/metrics.json` is written.
//! Both are pure string builders — no I/O, no terminal control beyond the
//! caller prefixing `\r` — so they stay trivially testable.

use ballista::telemetry::{HistogramSnapshot, MetricsSnapshot, ProgressSnapshot};
use std::fmt::Write as _;

/// Renders the single-line live ticker:
///
/// ```text
/// [3/15 campaigns] 12847/46800 cases (27%) · 412 cases/s · 2 catastrophic
/// ```
///
/// `elapsed_secs` is wall time since the fleet started; a zero elapsed
/// time reports `0 cases/s` rather than dividing by zero. The line is
/// fixed-order and contains no escape codes, so it is safe to log as-is
/// when stderr is not a terminal.
#[must_use]
pub fn render_progress(p: &ProgressSnapshot, elapsed_secs: f64) -> String {
    let pct = (p.executed.min(p.planned) * 100).checked_div(p.planned).unwrap_or(0);
    let rate = if elapsed_secs > 0.0 {
        (p.executed as f64 / elapsed_secs).round() as u64
    } else {
        0
    };
    let mut s = String::with_capacity(96);
    let _ = write!(
        s,
        "[{}/{} campaigns] {}/{} cases ({pct}%) · {rate} cases/s · {} in-place · {} catastrophic",
        p.finished, p.begun, p.executed, p.planned, p.restores_fast, p.catastrophics
    );
    s
}

/// One `p50 ≈ …, p99 ≈ …, max ≤ …` digest of a log₂ histogram, or `"-"`
/// when the histogram is empty. The quantiles are upper bounds of the
/// bucket containing the quantile — exact enough for an operator glance,
/// honest about being bucketed.
fn histogram_digest(h: &HistogramSnapshot, unit: &str) -> String {
    if h.count == 0 {
        return "-".to_owned();
    }
    let quantile_le = |q: f64| -> u64 {
        let target = (h.count as f64 * q).ceil() as u64;
        let mut seen = 0u64;
        for b in &h.buckets {
            seen += b.count;
            if seen >= target {
                return b.le;
            }
        }
        h.buckets.last().map_or(0, |b| b.le)
    };
    format!(
        "n={} p50≤{}{unit} p99≤{}{unit} mean≈{}{unit}",
        h.count,
        quantile_le(0.50),
        quantile_le(0.99),
        h.sum / h.count.max(1),
    )
}

/// Renders a [`MetricsSnapshot`] as the two-section table the
/// `experiments` binaries print after a telemetry-enabled run. The
/// `deterministic` section is engine-invariant (safe to diff across
/// engines); the `host` section is this machine's business only.
#[must_use]
pub fn render_metrics(m: &MetricsSnapshot) -> String {
    let d = &m.deterministic;
    let h = &m.host;
    let mut s = String::with_capacity(1024);
    s.push_str("metrics (deterministic — engine-invariant)\n");
    let _ = writeln!(s, "  campaigns        {}", d.campaigns);
    let _ = writeln!(s, "  cases applied    {}", d.cases_applied);
    let _ = writeln!(
        s,
        "  classes          pass={} hindering={} silent={} abort={} restart={} catastrophic={}",
        d.classes.pass,
        d.classes.hindering,
        d.classes.silent,
        d.classes.abort,
        d.classes.restart,
        d.classes.catastrophic
    );
    let _ = writeln!(s, "  total fuel       {}", d.total_fuel);
    let _ = writeln!(s, "  case fuel        {}", histogram_digest(&d.case_fuel, ""));
    s.push_str("metrics (host — not comparable across engines)\n");
    let _ = writeln!(s, "  cases executed   {}", h.cases_executed);
    let _ = writeln!(s, "  boots            {}", h.boots);
    let _ = writeln!(s, "  restores         {}", h.restores);
    let _ = writeln!(s, "  restores (fast)  {}", h.restores_fast);
    let _ = writeln!(s, "  restores (full)  {}", h.restores_full);
    let _ = writeln!(s, "  boot latency     {}", histogram_digest(&h.boot_ns, "ns"));
    let _ = writeln!(s, "  restore latency  {}", histogram_digest(&h.restore_ns, "ns"));
    let _ = writeln!(s, "  journal appends  {}", h.journal_appends);
    let _ = writeln!(s, "  journal fsyncs   {}", h.journal_fsyncs);
    let _ = writeln!(s, "  fsync latency    {}", histogram_digest(&h.fsync_ns, "ns"));
    let _ = writeln!(s, "  quarantine retries {}", h.quarantine_retries);
    let _ = writeln!(s, "  quarantined MuTs {}", h.quarantined_muts);
    let _ = writeln!(s, "  selfcheck failures {}", h.selfcheck_failures);
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use ballista::telemetry::HistogramBucket;

    #[test]
    fn progress_line_is_single_line_and_div_safe() {
        let p = ProgressSnapshot::default();
        let line = render_progress(&p, 0.0);
        assert!(!line.contains('\n'));
        assert!(line.contains("[0/0 campaigns]"));
        assert!(line.contains("0 cases/s"));

        let p = ProgressSnapshot {
            planned: 400,
            executed: 100,
            begun: 2,
            finished: 1,
            catastrophics: 3,
            restores_fast: 97,
        };
        let line = render_progress(&p, 2.0);
        assert!(line.contains("100/400 cases (25%)"), "{line}");
        assert!(line.contains("50 cases/s"), "{line}");
        assert!(line.contains("97 in-place"), "{line}");
        assert!(line.contains("3 catastrophic"), "{line}");
    }

    #[test]
    fn metrics_table_covers_both_sections() {
        let mut m = MetricsSnapshot::default();
        m.deterministic.cases_applied = 7;
        m.host.boots = 7;
        m.host.boot_ns = HistogramSnapshot {
            count: 4,
            sum: 4000,
            buckets: vec![
                HistogramBucket { le: 1023, count: 3 },
                HistogramBucket { le: 2047, count: 1 },
            ],
        };
        m.host.restores = 6;
        m.host.restores_fast = 5;
        m.host.restores_full = 1;
        let table = render_metrics(&m);
        assert!(table.contains("deterministic — engine-invariant"));
        assert!(table.contains("restores (fast)  5"), "{table}");
        assert!(table.contains("restores (full)  1"), "{table}");
        assert!(table.contains("cases applied    7"));
        assert!(table.contains("p50≤1023ns"), "{table}");
        assert!(table.contains("p99≤2047ns"), "{table}");
        assert!(table.contains("case fuel        -"), "{table}");
    }
}
