//! Text renderers for the conformance oracle and coverage accounting.
//!
//! Rendered by the `conformance` experiment binary alongside the paper
//! tables: one table listing every oracle invariant with its verdict, one
//! accounting table of what each variant's run exercised. Both end in an
//! unmissable PASS/FAIL footer — CI greps the footer, humans read the
//! rows.

use ballista::coverage::Coverage;
use ballista::oracle::Conformance;
use std::fmt::Write as _;

/// Renders the invariant table: one row per oracle invariant (checks of
/// the same invariant — e.g. one per variant — aggregate into one row,
/// first-seen order) with the number of facts examined and a PASS/FAIL
/// verdict, every violation detail indented under its row, and a final
/// CONFORMANCE footer.
#[must_use]
pub fn conformance_table(conf: &Conformance) -> String {
    let mut rows: Vec<(&str, u64, Vec<&str>)> = Vec::new();
    for check in &conf.checks {
        match rows.iter_mut().find(|(name, ..)| *name == check.invariant) {
            Some((_, checked, violations)) => {
                *checked += check.checked;
                violations.extend(check.violations.iter().map(String::as_str));
            }
            None => rows.push((
                &check.invariant,
                check.checked,
                check.violations.iter().map(String::as_str).collect(),
            )),
        }
    }
    let mut out = String::new();
    let _ = writeln!(out, "Conformance oracle — invariant verdicts.");
    let _ = writeln!(out, "{:<38} {:>8} {:>11} {:>8}", "Invariant", "checked", "violations", "status");
    let _ = writeln!(out, "{}", "-".repeat(68));
    for (invariant, checked, violations) in &rows {
        let _ = writeln!(
            out,
            "{:<38} {:>8} {:>11} {:>8}",
            invariant,
            checked,
            violations.len(),
            if violations.is_empty() { "PASS" } else { "FAIL" }
        );
        for v in violations {
            let _ = writeln!(out, "    ! {v}");
        }
    }
    if conf.is_clean() {
        let _ = writeln!(
            out,
            "CONFORMANCE: PASS ({} invariant(s), {} fact(s) checked)",
            rows.len(),
            conf.checks.iter().map(|c| c.checked).sum::<u64>()
        );
    } else {
        let _ = writeln!(
            out,
            "!! CONFORMANCE: FAIL — {} violation(s) across {} invariant(s)",
            conf.violation_count(),
            rows.iter().filter(|(.., v)| !v.is_empty()).count()
        );
    }
    out
}

/// Renders the coverage accounting table: one row per scope (typically
/// one per variant plus a merged total), and a COVERAGE footer that fails
/// when the checked-in floor is violated (`shortfalls` from
/// [`Coverage::check_floor`]).
#[must_use]
pub fn coverage_table(entries: &[(String, &Coverage)], shortfalls: &[String]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Coverage accounting — what each run exercised.");
    let _ = writeln!(
        out,
        "{:<10} {:>6} {:>10} {:>10} {:>6} {:>9} {:>8}",
        "Scope", "MuTs", "executed", "planned", "pools", "values", "classes"
    );
    let _ = writeln!(out, "{}", "-".repeat(66));
    for (label, cov) in entries {
        let _ = writeln!(
            out,
            "{:<10} {:>6} {:>10} {:>10} {:>6} {:>4}/{:<4} {:>8}",
            label,
            cov.muts_exercised(),
            cov.executed_cases,
            cov.planned_cases,
            cov.pools.len(),
            cov.values_touched(),
            cov.values_total(),
            cov.classes_observed(),
        );
    }
    if shortfalls.is_empty() {
        let _ = writeln!(out, "COVERAGE: PASS (floor holds)");
    } else {
        let _ = writeln!(out, "!! COVERAGE: FAIL — floor regression");
        for s in shortfalls {
            let _ = writeln!(out, "    ! {s}");
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ballista::oracle::Check;

    fn check(name: &str, checked: u64, violations: &[&str]) -> Check {
        Check {
            invariant: name.to_owned(),
            checked,
            violations: violations.iter().map(|s| (*s).to_owned()).collect(),
        }
    }

    #[test]
    fn clean_conformance_renders_pass() {
        let conf = Conformance {
            checks: vec![check("cross-engine-bit-identity", 42, &[])],
        };
        let t = conformance_table(&conf);
        assert!(t.contains("CONFORMANCE: PASS"));
        assert!(!t.contains("FAIL"));
        assert!(t.contains("42"));
    }

    #[test]
    fn violations_render_fail_footer_and_details() {
        let conf = Conformance {
            checks: vec![
                check("nt-linux-never-catastrophic", 10, &["[winnt] Foo recorded Catastrophic"]),
                check("identical-sampling-order", 5, &[]),
            ],
        };
        let t = conformance_table(&conf);
        assert!(t.contains("!! CONFORMANCE: FAIL — 1 violation(s) across 1 invariant(s)"));
        assert!(t.contains("! [winnt] Foo recorded Catastrophic"));
        assert!(t.lines().any(|l| l.contains("identical-sampling-order") && l.ends_with("PASS")));
    }

    #[test]
    fn coverage_table_renders_rows_and_floor() {
        let cov = Coverage::default();
        let t = coverage_table(&[("empty".to_owned(), &cov)], &[]);
        assert!(t.contains("COVERAGE: PASS"));
        let t = coverage_table(
            &[("empty".to_owned(), &cov)],
            &["MuTs exercised: 0 < floor 1".to_owned()],
        );
        assert!(t.contains("!! COVERAGE: FAIL"));
        assert!(t.contains("! MuTs exercised: 0 < floor 1"));
    }
}
