//! ASCII renderings and CSV series for the paper's Figures 1 and 2.

use crate::normalize::{self, Metric};
use crate::voting::{self, VotedSilent};
use crate::MultiOsResults;
use ballista::muts::FunctionGroup;
use sim_kernel::variant::OsVariant;
use std::fmt::Write as _;

const BAR_WIDTH: usize = 50;

fn bar(rate: f64) -> String {
    let filled = ((rate.clamp(0.0, 1.0)) * BAR_WIDTH as f64).round() as usize;
    format!("{}{}", "#".repeat(filled), ".".repeat(BAR_WIDTH - filled))
}

/// Figure 1: comparative robustness failure rates (Abort+Restart) by
/// functional category, one bar per OS per group.
#[must_use]
pub fn figure1(results: &MultiOsResults) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Figure 1. Comparative Windows and Linux robustness failure rates by functional category."
    );
    let _ = writeln!(out, "(bar = group Abort+Restart rate, 0%..100%; 'X' = no data)");
    for group in FunctionGroup::ALL {
        let _ = writeln!(out, "\n{}:", group.label());
        for report in &results.reports {
            let g = normalize::group_rate(report, group, Metric::AbortPlusRestart);
            if g.present {
                let _ = writeln!(
                    out,
                    "  {:<10} |{}| {:5.1}%{}",
                    report.os.short_name(),
                    bar(g.rate),
                    100.0 * g.rate,
                    if g.has_catastrophic { " *" } else { "" }
                );
            } else {
                let _ = writeln!(out, "  {:<10}  X (no data)", report.os.short_name());
            }
        }
    }
    out
}

/// The Figure 1 data as CSV: `group,os,abort_restart_rate,has_catastrophic`.
#[must_use]
pub fn figure1_csv(results: &MultiOsResults) -> String {
    let mut out = String::from("group,os,abort_restart_rate,has_catastrophic,present\n");
    for group in FunctionGroup::ALL {
        for report in &results.reports {
            let g = normalize::group_rate(report, group, Metric::AbortPlusRestart);
            let _ = writeln!(
                out,
                "{},{},{:.6},{},{}",
                group.label(),
                report.os.short_name(),
                g.rate,
                g.has_catastrophic,
                g.present
            );
        }
    }
    out
}

/// Per-OS voted-Silent analysis used by Figure 2.
#[derive(Debug, Clone)]
pub struct Figure2Series {
    /// The OS.
    pub os: OsVariant,
    /// Per-group `(abort+restart, voted silent, ground-truth silent)`.
    pub by_group: Vec<(FunctionGroup, f64, f64, f64)>,
}

/// Computes the Figure 2 series: Abort+Restart plus estimated (voted)
/// Silent rates for the desktop Windows variants.
#[must_use]
pub fn figure2_series(results: &MultiOsResults) -> Vec<Figure2Series> {
    let desktop: Vec<&ballista::campaign::CampaignReport> = results
        .reports
        .iter()
        .filter(|r| OsVariant::DESKTOP_WINDOWS.contains(&r.os))
        .collect();
    let mut out = Vec::new();
    for &report in &desktop {
        let votes: Vec<VotedSilent> = voting::vote_silent(&desktop, report.os);
        let by_group = FunctionGroup::ALL
            .iter()
            .map(|&g| {
                let ar = normalize::group_rate(report, g, Metric::AbortPlusRestart).rate;
                let voted = voting::group_voted_rate(&votes, g);
                let truth = voting::group_truth_rate(&votes, g);
                (g, ar, voted, truth)
            })
            .collect();
        out.push(Figure2Series {
            os: report.os,
            by_group,
        });
    }
    out
}

/// Figure 2: Abort, Restart and estimated Silent failure rates for the
/// desktop Windows variants, as stacked ASCII bars.
#[must_use]
pub fn figure2(results: &MultiOsResults) -> String {
    let series = figure2_series(results);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Figure 2. Abort+Restart and estimated Silent failure rates, desktop Windows variants."
    );
    let _ = writeln!(out, "(# = Abort+Restart, s = voted Silent estimate)");
    for group in FunctionGroup::ALL {
        let _ = writeln!(out, "\n{}:", group.label());
        for s in &series {
            let Some(&(_, ar, voted, truth)) = s.by_group.iter().find(|(g, ..)| *g == group)
            else {
                continue;
            };
            let a_chars = ((ar.clamp(0.0, 1.0)) * BAR_WIDTH as f64).round() as usize;
            let s_chars = ((voted.clamp(0.0, 1.0)) * BAR_WIDTH as f64).round() as usize;
            let rest = BAR_WIDTH.saturating_sub(a_chars + s_chars);
            let _ = writeln!(
                out,
                "  {:<10} |{}{}{}| abort+restart {:4.1}%  silent(est) {:4.1}%  silent(truth) {:4.1}%",
                s.os.short_name(),
                "#".repeat(a_chars),
                "s".repeat(s_chars.min(BAR_WIDTH - a_chars)),
                ".".repeat(rest),
                100.0 * ar,
                100.0 * voted,
                100.0 * truth,
            );
        }
    }
    out
}

/// Figure 2 data as CSV:
/// `os,group,abort_restart,silent_voted,silent_truth`.
#[must_use]
pub fn figure2_csv(results: &MultiOsResults) -> String {
    let mut out = String::from("os,group,abort_restart,silent_voted,silent_truth\n");
    for s in figure2_series(results) {
        for (g, ar, voted, truth) in s.by_group {
            let _ = writeln!(
                out,
                "{},{},{:.6},{:.6},{:.6}",
                s.os.short_name(),
                g.label(),
                ar,
                voted,
                truth
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ballista::campaign::{CampaignReport, MutTally};
    use ballista::crash::RawOutcome;
    use ballista::muts::FunctionGroup as G;

    fn tally(name: &str, raw: &[RawOutcome], aborts: usize, silents: usize) -> MutTally {
        MutTally {
            name: name.to_owned(),
            group: G::IoPrimitives,
            cases: raw.len(),
            planned: raw.len(),
            aborts,
            restarts: 0,
            silents,
            error_reports: 0,
            passes: raw.len() - aborts - silents,
            suspected_hindering: 0,
            catastrophic: false,
            crash_reproducible_in_isolation: None,
            raw_outcomes: raw.iter().map(|r| r.to_byte()).collect(),
        }
    }

    fn results() -> MultiOsResults {
        use RawOutcome::{ReturnedError as E, ReturnedSuccess as S, TaskAbort as A};
        MultiOsResults {
            reports: vec![
                CampaignReport {
                    os: OsVariant::Win98,
                    muts: vec![tally("CloseHandle", &[S, S, A, S], 1, 3)],
                    total_cases: 4,
                    stats: None,
                    warnings: Vec::new(),
                    degraded: false,
                    fleet_degraded: false,
                },
                CampaignReport {
                    os: OsVariant::WinNt4,
                    muts: vec![tally("CloseHandle", &[E, E, A, S], 1, 1)],
                    total_cases: 4,
                    stats: None,
                    warnings: Vec::new(),
                    degraded: false,
                    fleet_degraded: false,
                },
            ],
            warnings: Vec::new(),
        }
    }

    #[test]
    fn figure1_renders_and_csv_parses() {
        let r = results();
        let fig = figure1(&r);
        assert!(fig.contains("I/O Primitives"));
        assert!(fig.contains("win98"));
        assert!(fig.contains("X (no data)"), "absent groups are marked");
        let csv = figure1_csv(&r);
        assert!(csv.lines().count() > 12);
        assert!(csv.starts_with("group,os,"));
    }

    #[test]
    fn figure2_votes_flag_9x_silence() {
        let r = results();
        let series = figure2_series(&r);
        let w98 = series.iter().find(|s| s.os == OsVariant::Win98).unwrap();
        let (_, _, voted, truth) = w98
            .by_group
            .iter()
            .find(|(g, ..)| *g == G::IoPrimitives)
            .copied()
            .unwrap();
        // Cases 0 and 1 succeed on 98 but error on NT: voted 2/4.
        assert!((voted - 0.5).abs() < 1e-12);
        // Ground truth says 3/4: the unanimous case 3 is the blind spot.
        assert!((truth - 0.75).abs() < 1e-12);
        let nt = series.iter().find(|s| s.os == OsVariant::WinNt4).unwrap();
        let (_, _, nt_voted, _) = nt
            .by_group
            .iter()
            .find(|(g, ..)| *g == G::IoPrimitives)
            .copied()
            .unwrap();
        assert_eq!(nt_voted, 0.0, "NT's lone success is unanimous → no vote");
        let fig = figure2(&r);
        assert!(fig.contains("silent(est)"));
        let csv = figure2_csv(&r);
        assert!(csv.contains("win98"));
    }
}
