//! Text renderers for the paper's Tables 1, 2 and 3.

use crate::normalize::{self, Metric};
use crate::MultiOsResults;
use ballista::muts::FunctionGroup;
use sim_kernel::variant::OsVariant;
use std::fmt::Write as _;

fn pct(x: f64) -> String {
    format!("{:.2}%", 100.0 * x)
}

/// A footer flagging partial data: variants whose reports are marked
/// `degraded` (quarantined MuTs, contained worker failures). Empty when
/// every report is complete, so intact runs render byte-identically to
/// the pre-warning output.
fn degraded_footer(results: &MultiOsResults) -> String {
    let degraded: Vec<&str> = results
        .reports
        .iter()
        .filter(|r| r.degraded)
        .map(|r| r.os.short_name())
        .collect();
    let mut out = if degraded.is_empty() {
        String::new()
    } else {
        format!(
            "!! PARTIAL DATA: degraded variant(s) {} — see report warnings\n",
            degraded.join(", ")
        )
    };
    // Fleet degradation is softer: process isolation was lost but the
    // tallies are complete, so note it without the PARTIAL DATA banner.
    let fleet: Vec<&str> = results
        .reports
        .iter()
        .filter(|r| r.fleet_degraded)
        .map(|r| r.os.short_name())
        .collect();
    if !fleet.is_empty() {
        out.push_str(&format!(
            "note: fleet degraded to in-process execution on {} — tallies complete; \
             see report warnings\n",
            fleet.join(", ")
        ));
    }
    out
}

/// Renders Table 1: robustness failure rates by MuT, one row per OS.
#[must_use]
pub fn table1(results: &MultiOsResults) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Table 1. Robustness failure rates by Module under Test (MuT)."
    );
    let _ = writeln!(
        out,
        "{:<18} {:>6} {:>6} {:>9} {:>9} | {:>6} {:>6} {:>9} {:>9} | {:>6} {:>6} {:>9} {:>9}",
        "OS",
        "SysN",
        "SysCat",
        "Sys%Rst",
        "Sys%Abt",
        "C N",
        "C Cat",
        "C %Rst",
        "C %Abt",
        "TotN",
        "TotCat",
        "Tot%Rst",
        "Tot%Abt",
    );
    let _ = writeln!(out, "{}", "-".repeat(132));
    for report in &results.reports {
        let r = normalize::table1_row(report);
        let _ = writeln!(
            out,
            "{:<18} {:>6} {:>6} {:>9} {:>9} | {:>6} {:>6} {:>9} {:>9} | {:>6} {:>6} {:>9} {:>9}",
            report.os.to_string(),
            r.sys_tested,
            r.sys_catastrophic,
            pct(r.sys_restart),
            pct(r.sys_abort),
            r.c_tested,
            r.c_catastrophic,
            pct(r.c_restart),
            pct(r.c_abort),
            r.total_tested,
            r.total_catastrophic,
            pct(r.overall_restart),
            pct(r.overall_abort),
        );
    }
    out.push_str(&degraded_footer(results));
    out
}

/// Renders Table 2: Abort+Restart failure rates by functional grouping.
/// A `*` marks groups containing Catastrophic MuTs (whose rates are
/// excluded, as in the paper); `N/A` marks groups absent on that OS.
#[must_use]
pub fn table2(results: &MultiOsResults) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Table 2. Overall robustness failure rates by functional category."
    );
    let _ = writeln!(
        out,
        "Catastrophic failure rates are excluded; their presence is indicated by '*'."
    );
    let _ = write!(out, "{:<26}", "Group");
    for report in &results.reports {
        let _ = write!(out, " {:>10}", report.os.short_name());
    }
    let _ = writeln!(out);
    let _ = writeln!(out, "{}", "-".repeat(26 + 11 * results.reports.len()));
    for group in FunctionGroup::ALL {
        let _ = write!(out, "{:<26}", group.label());
        for report in &results.reports {
            let g = normalize::group_rate(report, group, Metric::AbortPlusRestart);
            let cell = if !g.present {
                "N/A".to_owned()
            } else {
                format!(
                    "{}{}",
                    if g.has_catastrophic { "*" } else { "" },
                    pct(g.rate)
                )
            };
            let _ = write!(out, " {cell:>10}");
        }
        let _ = writeln!(out);
    }
    // The evenly-weighted totals row.
    let _ = write!(out, "{:<26}", "Total (group-weighted)");
    for report in &results.reports {
        let total = normalize::overall_group_weighted(report, Metric::AbortPlusRestart);
        let _ = write!(out, " {:>10}", pct(total));
    }
    let _ = writeln!(out);
    out.push_str(&degraded_footer(results));
    out
}

/// One Table 3 entry: a function with Catastrophic failures somewhere.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CatastrophicEntry {
    /// Function name.
    pub name: String,
    /// Functional group.
    pub group: FunctionGroup,
    /// Per-OS presence; `Some(reproducible)` when Catastrophic on that OS,
    /// with `false` meaning the paper's `*` (harness-only).
    pub by_os: Vec<(OsVariant, Option<bool>)>,
}

/// Collects the Table 3 entries across all OSes.
#[must_use]
pub fn catastrophic_entries(results: &MultiOsResults) -> Vec<CatastrophicEntry> {
    let mut names: Vec<(String, FunctionGroup)> = Vec::new();
    for report in &results.reports {
        for m in report.catastrophic_muts() {
            if !names.iter().any(|(n, _)| n == &m.name) {
                names.push((m.name.clone(), m.group));
            }
        }
    }
    names.sort_by(|a, b| a.1.cmp(&b.1).then_with(|| a.0.cmp(&b.0)));
    names
        .into_iter()
        .map(|(name, group)| {
            let by_os = results
                .reports
                .iter()
                .map(|r| {
                    let status = r
                        .muts
                        .iter()
                        .find(|m| m.name == name && m.catastrophic)
                        .map(|m| m.crash_reproducible_in_isolation.unwrap_or(true));
                    (r.os, status)
                })
                .collect();
            CatastrophicEntry { name, group, by_os }
        })
        .collect()
}

/// Renders Table 3: functions with Catastrophic failures by OS and group.
/// `X` = crashes and reproduces in isolation; `*X` = crashes only under
/// harness-accumulated state (the paper's `*`).
#[must_use]
pub fn table3(results: &MultiOsResults) -> String {
    let entries = catastrophic_entries(results);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Table 3. Functions that exhibited Catastrophic failures by OS and function group."
    );
    let _ = writeln!(
        out,
        "'X' = reproducible in isolation; '*X' = only inside the full test harness."
    );
    let _ = write!(out, "{:<30} {:<26}", "Function", "Group");
    for report in &results.reports {
        let _ = write!(out, " {:>8}", report.os.short_name());
    }
    let _ = writeln!(out);
    let _ = writeln!(out, "{}", "-".repeat(58 + 9 * results.reports.len()));
    for e in &entries {
        let _ = write!(out, "{:<30} {:<26}", e.name, e.group.label());
        for (_, status) in &e.by_os {
            let cell = match status {
                Some(true) => "X",
                Some(false) => "*X",
                None => "",
            };
            let _ = write!(out, " {cell:>8}");
        }
        let _ = writeln!(out);
    }
    if entries.is_empty() {
        let _ = writeln!(out, "(no Catastrophic failures observed)");
    }
    out.push_str(&degraded_footer(results));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ballista::campaign::{CampaignReport, MutTally};
    use ballista::muts::FunctionGroup as G;

    fn tally(name: &str, group: G, catastrophic: bool, iso: Option<bool>) -> MutTally {
        MutTally {
            name: name.to_owned(),
            group,
            cases: 100,
            planned: 100,
            aborts: 10,
            restarts: 1,
            silents: 5,
            error_reports: 50,
            passes: 34,
            suspected_hindering: 0,
            catastrophic,
            crash_reproducible_in_isolation: iso,
            raw_outcomes: Vec::new(),
        }
    }

    fn tiny_results() -> MultiOsResults {
        MultiOsResults {
            reports: vec![
                CampaignReport {
                    os: OsVariant::Win98,
                    muts: vec![
                        tally("GetThreadContext", G::ProcessPrimitives, true, Some(true)),
                        tally("DuplicateHandle", G::IoPrimitives, true, Some(false)),
                        tally("CloseHandle", G::IoPrimitives, false, None),
                    ],
                    total_cases: 300,
                    stats: None,
                    warnings: Vec::new(),
                    degraded: false,
                    fleet_degraded: false,
                },
                CampaignReport {
                    os: OsVariant::WinNt4,
                    muts: vec![
                        tally("GetThreadContext", G::ProcessPrimitives, false, None),
                        tally("DuplicateHandle", G::IoPrimitives, false, None),
                        tally("CloseHandle", G::IoPrimitives, false, None),
                    ],
                    total_cases: 300,
                    stats: None,
                    warnings: Vec::new(),
                    degraded: false,
                    fleet_degraded: false,
                },
            ],
            warnings: Vec::new(),
        }
    }

    #[test]
    fn table1_renders_rows() {
        let t = table1(&tiny_results());
        assert!(t.contains("Windows 98"));
        assert!(t.contains("Windows NT 4.0"));
        assert!(t.contains("10.00%")); // 10% abort per MuT
        assert!(t.contains("1.00%")); // 1% restart per MuT
    }

    #[test]
    fn table2_marks_catastrophic_groups() {
        let t = table2(&tiny_results());
        assert!(t.contains('*'), "catastrophic groups carry a star");
        assert!(t.contains("N/A"), "absent groups are N/A");
        assert!(t.contains("Total (group-weighted)"));
    }

    #[test]
    fn table3_distinguishes_isolation() {
        let r = tiny_results();
        let entries = catastrophic_entries(&r);
        assert_eq!(entries.len(), 2);
        let t = table3(&r);
        assert!(t.contains("GetThreadContext"));
        // DuplicateHandle only crashes inside the harness: *X.
        assert!(t.contains("*X"));
        // NT column has no marks.
        let dup_line = t
            .lines()
            .find(|l| l.starts_with("DuplicateHandle"))
            .unwrap();
        assert!(dup_line.contains("*X"));
    }

    #[test]
    fn for_os_lookup() {
        let r = tiny_results();
        assert!(r.for_os(OsVariant::Win98).is_some());
        assert!(r.for_os(OsVariant::Linux).is_none());
        assert_eq!(r.oses(), vec![OsVariant::Win98, OsVariant::WinNt4]);
    }

    #[test]
    fn degraded_reports_are_flagged_in_every_table() {
        let clean = tiny_results();
        assert!(!clean.any_degraded());
        for t in [table1(&clean), table2(&clean), table3(&clean)] {
            assert!(!t.contains("PARTIAL DATA"), "intact runs are unflagged");
        }
        let mut partial = tiny_results();
        partial.reports[1].degraded = true;
        partial.reports[1].warnings.push("quarantined strlen".into());
        assert!(partial.any_degraded());
        for t in [table1(&partial), table2(&partial), table3(&partial)] {
            assert!(t.contains("PARTIAL DATA"), "degraded runs carry the banner");
            assert!(t.contains("winnt"), "names the degraded variant");
        }
    }
}
