//! Rendering for crash-consistency (crashcon) campaign results.
//!
//! One table per OS variant: a row per MuT that exercised the
//! filesystem, the four oracle violation columns, and a PASS/FAIL
//! footer over the whole campaign — FAIL meaning some bounded crash
//! image diverged from the independent flat model (or arrived
//! structurally broken), i.e. a Silent-class crash-consistency defect.

use ballista::crashcon::{CrashTally, CrashconReport};
use std::fmt::Write as _;

/// Renders the per-MuT crashcon table for one campaign.
///
/// MuTs that never touched the filesystem are folded into a single
/// summary line rather than listed row by row — a crashcon table's
/// interesting rows are the ones with crash points to judge.
#[must_use]
pub fn crashcon_table(report: &CrashconReport) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Crash-consistency campaign — {} (bounded B3-style crash testing).",
        report.os
    );
    let _ = writeln!(
        out,
        "{:<26} {:>6} {:>7} {:>8} {:>7} {:>5} {:>5} {:>5} {:>5}  status",
        "MuT", "cases", "ops", "points", "incon", "wf", "open", "dur", "ren"
    );
    let _ = writeln!(out, "{}", "-".repeat(92));
    let mut quiet = 0usize;
    for t in &report.muts {
        if t.active_cases == 0 {
            quiet += 1;
            continue;
        }
        let _ = writeln!(
            out,
            "{:<26} {:>6} {:>7} {:>8} {:>7} {:>5} {:>5} {:>5} {:>5}  {}",
            t.name,
            t.cases,
            t.ops_recorded,
            t.crash_points,
            t.inconsistent_points,
            t.viol_well_formed,
            t.viol_open_table,
            t.viol_durability,
            t.viol_rename,
            if t.consistent() { "PASS" } else { "FAIL" }
        );
    }
    if quiet > 0 {
        let _ = writeln!(out, "({quiet} MuT(s) recorded no filesystem activity)");
    }
    let _ = writeln!(out, "{}", "-".repeat(92));
    let truncated: usize = report.muts.iter().map(|t| t.truncated_cases).sum();
    let _ = writeln!(
        out,
        "{} cases, {} crash points judged, {} inconsistent{} — {}",
        report.total_cases,
        report.total_points,
        report.total_inconsistent,
        if truncated > 0 {
            format!(" ({truncated} op log(s) truncated at the recording bound)")
        } else {
            String::new()
        },
        if report.consistent() {
            "PASS: every bounded crash image was consistent"
        } else {
            "FAIL: some crash image diverged from the model"
        }
    );
    if let Some(stats) = &report.stats {
        let _ = writeln!(
            out,
            "{} snapshots, {} remounts ({} restores stayed case-accurate)",
            stats.crashcon_snapshots, stats.crashcon_remounts, stats.restores
        );
    }
    out
}

/// One-line summary for a MuT tally (used by progress displays).
#[must_use]
pub fn summary_line(t: &CrashTally) -> String {
    format!(
        "{}: {} cases, {} points, {} inconsistent",
        t.name, t.cases, t.crash_points, t.inconsistent_points
    )
}
