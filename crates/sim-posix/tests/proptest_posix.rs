//! Property-based tests for the POSIX personality's central invariants:
//! kernel-boundary gracefulness (wild buffers are `EFAULT`, never a
//! machine death), descriptor-domain totality, and file-I/O correctness
//! for arbitrary payloads.

use proptest::prelude::*;
use sim_core::{cstr, SimPtr};
use sim_kernel::Kernel;
use sim_libc::errno;
use sim_posix::{envops, fd as fdops, fsops, memops, procops};

proptest! {
    /// The simulated Linux machine survives any single system call with
    /// arbitrary raw arguments — Table 1's zero-Catastrophic row as a
    /// property.
    #[test]
    fn linux_machine_never_dies(a in any::<u64>(), b in any::<u64>(), c in any::<u32>()) {
        let mut k = Kernel::new();
        let _ = fdops::read(&mut k, a as i64, SimPtr::new(b), u64::from(c));
        let _ = fdops::write(&mut k, (a as u32 as i32).into(), SimPtr::new(b), u64::from(c));
        let _ = fsops::stat(&mut k, SimPtr::new(a), SimPtr::new(b));
        let _ = fsops::open(&mut k, SimPtr::new(a), c as i32, 0);
        let _ = memops::mmap(&mut k, SimPtr::new(a), u64::from(c), 3, 0x22, -1, 0);
        let _ = procops::sigaction(&mut k, c as i32 % 70, SimPtr::new(a), SimPtr::new(b));
        let _ = envops::uname(&mut k, SimPtr::new(a));
        prop_assert!(k.is_alive());
    }

    /// For every descriptor value outside the live set, I/O calls report
    /// EBADF — never a fault, never a panic (descriptor totality).
    #[test]
    fn bad_fds_always_ebadf(raw_fd in any::<i32>()) {
        prop_assume!(!(0..=2).contains(&raw_fd)); // std streams are live
        let mut k = Kernel::new();
        prop_assume!(!k.fs.is_open(raw_fd as u64));
        let buf = k.alloc_user(8, "buf");
        let fd = i64::from(raw_fd);
        prop_assert_eq!(fdops::read(&mut k, fd, buf, 4).unwrap().error, Some(errno::EBADF));
        prop_assert_eq!(fdops::close(&mut k, fd).unwrap().error, Some(errno::EBADF));
        prop_assert_eq!(fdops::fsync(&mut k, fd).unwrap().error, Some(errno::EBADF));
        prop_assert_eq!(fdops::dup(&mut k, fd).unwrap().error, Some(errno::EBADF));
        prop_assert_eq!(fdops::lseek(&mut k, fd, 0, 0).unwrap().error, Some(errno::EBADF));
    }

    /// A wild buffer on the kernel boundary is EFAULT with a *live*
    /// process — Linux's gracefulness, as a property over addresses.
    #[test]
    fn kernel_boundary_is_efault_not_abort(addr in any::<u64>()) {
        let mut k = Kernel::new();
        prop_assume!(k.space
            .check_access(SimPtr::new(addr), 8, 1, sim_core::AccessKind::Write,
                          sim_core::addr::PrivilegeLevel::User)
            .is_err());
        let path = k.alloc_user(16, "p");
        cstr::write_cstr(&mut k.space, path, "/etc/motd", sim_core::addr::PrivilegeLevel::User).unwrap();
        let fd = fsops::open(&mut k, path, 0, 0).unwrap().value;
        let r = fdops::read(&mut k, fd, SimPtr::new(addr), 8).unwrap();
        prop_assert_eq!(r.error, Some(errno::EFAULT));
        let r = envops::gettimeofday(&mut k, SimPtr::new(addr), SimPtr::NULL).unwrap();
        prop_assert_eq!(r.error, Some(errno::EFAULT));
    }

    /// write-then-read round-trips arbitrary payloads through the POSIX
    /// descriptor layer.
    #[test]
    fn posix_file_roundtrip(data in proptest::collection::vec(any::<u8>(), 1..256)) {
        let mut k = Kernel::new();
        let path = k.alloc_user(16, "p");
        cstr::write_cstr(&mut k.space, path, "/tmp/prop", sim_core::addr::PrivilegeLevel::User).unwrap();
        let fd = fsops::open(&mut k, path, 0x42, 0o644).unwrap().value; // O_RDWR|O_CREAT
        let buf = k.alloc_user(data.len() as u64, "in");
        k.space.write_bytes(buf, &data).unwrap();
        prop_assert_eq!(
            fdops::write(&mut k, fd, buf, data.len() as u64).unwrap().value,
            data.len() as i64
        );
        fdops::lseek(&mut k, fd, 0, 0).unwrap();
        let out = k.alloc_user(data.len() as u64, "out");
        prop_assert_eq!(
            fdops::read(&mut k, fd, out, data.len() as u64).unwrap().value,
            data.len() as i64
        );
        prop_assert_eq!(k.space.read_bytes(out, data.len() as u64).unwrap(), data.clone());
    }

    /// umask round-trips arbitrary masks (mod 0o777) — a tiny totality
    /// check on the pure-state calls.
    #[test]
    fn umask_roundtrip(m1 in any::<u32>(), m2 in any::<u32>()) {
        let mut k = Kernel::new();
        let _ = fsops::umask(&mut k, m1).unwrap();
        let prev = fsops::umask(&mut k, m2).unwrap().value;
        prop_assert_eq!(prev as u32, m1 & 0o777);
    }
}
