//! I/O primitives: `read`, `write`, `close`, `dup`/`dup2`, `lseek`,
//! `pipe`, `fcntl`, `fsync`, `fdatasync` — the paper's POSIX *I/O
//! Primitives* grouping.
//!
//! The Linux kernel's copy-in/copy-out boundary makes these calls
//! graceful: a wild buffer pointer is `EFAULT`, not a fault — the heart of
//! the paper's "Linux is significantly more graceful at handling
//! exceptions from system calls" finding.

use sim_kernel::Subsystem;
use crate::{errno_return, signal};
use sim_core::addr::PrivilegeLevel;
use sim_core::{AccessKind, SimPtr};
use sim_kernel::fs::{FsError, SeekFrom};
use sim_kernel::outcome::{ApiAbort, ApiResult, ApiReturn};
use sim_kernel::sync::INFINITE;
use sim_kernel::Kernel;
use sim_libc::errno;

/// Descriptor ids 0–2 are the standard streams; filesystem descriptions
/// start at 3 (the simulated filesystem allocates them that way).
pub const FIRST_FILE_FD: i64 = 3;

/// Key prefix recording pipe read-ends and their buffered byte counts.
fn pipe_key(fd: i64) -> String {
    format!("posix.pipe.{fd}")
}

fn fd_ok(k: &Kernel, fd: i64) -> bool {
    (0..=2).contains(&fd) || (fd >= FIRST_FILE_FD && k.fs.is_open(fd as u64))
}

/// `read(fd, buf, count)`.
///
/// A wild `buf` is `EFAULT` (the kernel checks before copying). Reading a
/// pipe with no data and a live writer **blocks forever** — the paper's
/// Restart failure.
///
/// # Errors
///
/// [`ApiAbort::Hang`] for the empty-pipe case.
pub fn read(k: &mut Kernel, fd: i64, buf: SimPtr, count: u64) -> ApiResult {
    k.charge_call_to(Subsystem::Fs);
    if !fd_ok(k, fd) {
        return Ok(errno_return(errno::EBADF));
    }
    // Kernel probes the destination before copying: EFAULT, not a fault.
    if count > 0
        && k.space
            .check_access(buf, count.min(4096), 1, AccessKind::Write, PrivilegeLevel::User)
            .is_err()
    {
        return Ok(errno_return(errno::EFAULT));
    }
    if fd == 0 {
        // stdin: the console line.
        let line: &[u8] = sim_libc::stream::CONSOLE_INPUT;
        let n = line.len().min(count as usize);
        let _ = k.space.write_bytes(buf, &line[..n]);
        return Ok(ApiReturn::ok(n as i64));
    }
    if fd == 1 || fd == 2 {
        return Ok(errno_return(errno::EBADF));
    }
    // Pipe read-end with no data: block.
    if let Some(&buffered) = k.scratch.get(&pipe_key(fd)) {
        if buffered == 0 {
            return Err(ApiAbort::Hang);
        }
    }
    // The read can't return more than the bytes left in the file, so the
    // scratch buffer needn't be the full requested (possibly huge) count.
    let want = (count as usize).min(k.fs.available(fd as u64).unwrap_or(0) as usize);
    let mut data = vec![0u8; want];
    match k.fs.read(fd as u64, &mut data) {
        Ok(n) => {
            if k.space.write_bytes(buf, &data[..n]).is_err() {
                return Ok(errno_return(errno::EFAULT));
            }
            if let Some(b) = k.scratch.get_mut(&pipe_key(fd)) {
                *b = b.saturating_sub(n as u64);
            }
            Ok(ApiReturn::ok(n as i64))
        }
        Err(e) => Ok(errno_return(errno::from_fs(e))),
    }
}

/// `write(fd, buf, count)`.
///
/// # Errors
///
/// None; hostile pointers are `EFAULT`.
pub fn write(k: &mut Kernel, fd: i64, buf: SimPtr, count: u64) -> ApiResult {
    k.charge_call_to(Subsystem::Fs);
    if !fd_ok(k, fd) {
        return Ok(errno_return(errno::EBADF));
    }
    let data = match k.space.read_bytes_at(buf, count, PrivilegeLevel::User) {
        Ok(d) => d,
        Err(_) => return Ok(errno_return(errno::EFAULT)),
    };
    if fd == 1 || fd == 2 {
        return Ok(ApiReturn::ok(count as i64)); // console sink
    }
    if fd == 0 {
        return Ok(errno_return(errno::EBADF));
    }
    match k.fs.write(fd as u64, &data) {
        Ok(n) => Ok(ApiReturn::ok(n as i64)),
        Err(e) => Ok(errno_return(errno::from_fs(e))),
    }
}

/// `close(fd)`.
///
/// # Errors
///
/// None.
pub fn close(k: &mut Kernel, fd: i64) -> ApiResult {
    k.charge_call_to(Subsystem::Fs);
    if (0..=2).contains(&fd) {
        return Ok(ApiReturn::ok(0)); // closing a std stream "works"
    }
    match k.fs.close(fd as u64) {
        Ok(()) => {
            k.scratch.remove(&pipe_key(fd));
            Ok(ApiReturn::ok(0))
        }
        Err(e) => Ok(errno_return(errno::from_fs(e))),
    }
}

/// `dup(oldfd)`.
///
/// # Errors
///
/// None.
pub fn dup(k: &mut Kernel, oldfd: i64) -> ApiResult {
    k.charge_call_to(Subsystem::Fs);
    if !fd_ok(k, oldfd) {
        return Ok(errno_return(errno::EBADF));
    }
    if (0..=2).contains(&oldfd) {
        // Duplicating a std stream: hand back a fresh console-ish fd id by
        // duplicating nothing — model as a higher unused fd bound to the
        // same sink. Keep it simple and robust: return EBADF-free success
        // with the same semantics as the stream itself.
        return Ok(ApiReturn::ok(oldfd));
    }
    match k.fs.dup(oldfd as u64) {
        Ok(newfd) => Ok(ApiReturn::ok(newfd as i64)),
        Err(e) => Ok(errno_return(errno::from_fs(e))),
    }
}

/// `dup2(oldfd, newfd)`.
///
/// # Errors
///
/// None; out-of-range targets are `EBADF`.
pub fn dup2(k: &mut Kernel, oldfd: i64, newfd: i64) -> ApiResult {
    k.charge_call_to(Subsystem::Fs);
    if !fd_ok(k, oldfd) || !(0..=1024).contains(&newfd) {
        return Ok(errno_return(errno::EBADF));
    }
    if (0..=2).contains(&oldfd) || (0..=2).contains(&newfd) {
        return Ok(ApiReturn::ok(newfd)); // std-stream redirection: accepted
    }
    match k.fs.dup_at(oldfd as u64, newfd as u64) {
        Ok(fd) => Ok(ApiReturn::ok(fd as i64)),
        Err(e) => Ok(errno_return(errno::from_fs(e))),
    }
}

/// `lseek(fd, offset, whence)`.
///
/// # Errors
///
/// None; seeking a pipe is `ESPIPE`, bad whence is `EINVAL`.
pub fn lseek(k: &mut Kernel, fd: i64, offset: i64, whence: i32) -> ApiResult {
    k.charge_call_to(Subsystem::Fs);
    if !fd_ok(k, fd) {
        return Ok(errno_return(errno::EBADF));
    }
    if (0..=2).contains(&fd) || k.scratch.contains_key(&pipe_key(fd)) {
        return Ok(errno_return(errno::ESPIPE));
    }
    let from = match whence {
        0 if offset >= 0 => SeekFrom::Start(offset as u64),
        0 => return Ok(errno_return(errno::EINVAL)),
        1 => SeekFrom::Current(offset),
        2 => SeekFrom::End(offset),
        _ => return Ok(errno_return(errno::EINVAL)),
    };
    match k.fs.seek(fd as u64, from) {
        Ok(pos) => Ok(ApiReturn::ok(pos as i64)),
        Err(FsError::InvalidSeek) => Ok(errno_return(errno::EINVAL)),
        Err(e) => Ok(errno_return(errno::from_fs(e))),
    }
}

/// `pipe(pipefd)` — the two descriptor ids are written through the
/// caller's array: the kernel does it with copy-out (`EFAULT` when bad).
///
/// # Errors
///
/// None.
pub fn pipe(k: &mut Kernel, pipefd: SimPtr) -> ApiResult {
    k.charge_call_to(Subsystem::Fs);
    if k
        .space
        .check_access(pipefd, 8, 4, AccessKind::Write, PrivilegeLevel::User)
        .is_err()
    {
        return Ok(errno_return(errno::EFAULT));
    }
    // Back the pipe with an unnamed file: read end + write end.
    let n = k.scratch.entry("posix.pipe.count".to_owned()).or_insert(0);
    *n += 1;
    let name = format!("/tmp/.pipe{n}");
    let _ = k.fs.create_file(&name, Vec::new());
    let rd = match k.fs.open(&name, sim_kernel::fs::OpenOptions::read_only()) {
        Ok(fd) => fd,
        Err(e) => return Ok(errno_return(errno::from_fs(e))),
    };
    let wr = match k
        .fs
        .open(&name, sim_kernel::fs::OpenOptions::write_only().append(true))
    {
        Ok(fd) => fd,
        Err(e) => {
            let _ = k.fs.close(rd);
            return Ok(errno_return(errno::from_fs(e)));
        }
    };
    k.scratch.insert(pipe_key(rd as i64), 0); // empty read end: blocking
    let _ = k.space.write_u32(pipefd, rd as u32);
    let _ = k.space.write_u32(pipefd.offset(4), wr as u32);
    Ok(ApiReturn::ok(0))
}

/// Registers `n` buffered bytes on a pipe read-end (used by test-value
/// constructors to build non-blocking pipes).
pub fn prime_pipe(k: &mut Kernel, fd: i64, n: u64) {
    k.scratch.insert(pipe_key(fd), n);
}

/// `fcntl(fd, cmd, arg)` — `F_DUPFD`(0), `F_GETFD`(1), `F_SETFD`(2),
/// `F_GETFL`(3), `F_SETFL`(4), `F_GETLK`(5), `F_SETLK`(6), `F_SETLKW`(7).
///
/// # Errors
///
/// [`ApiAbort::Hang`] for `F_SETLKW` on a contended range (the blocking
/// lock — a Restart source).
pub fn fcntl(k: &mut Kernel, fd: i64, cmd: i32, arg: i64) -> ApiResult {
    k.charge_call_to(Subsystem::Fs);
    if !fd_ok(k, fd) {
        return Ok(errno_return(errno::EBADF));
    }
    match cmd {
        0 => dup(k, fd),
        1 | 3 => Ok(ApiReturn::ok(0)),
        2 | 4 => Ok(ApiReturn::ok(0)),
        5 | 6 => {
            // Lock queries/attempts need a valid struct flock pointer —
            // the kernel copy-in makes bad ones EFAULT.
            let p = SimPtr::new(arg as u64);
            if k
                .space
                .check_access(p, 16, 1, AccessKind::Read, PrivilegeLevel::User)
                .is_err()
            {
                return Ok(errno_return(errno::EFAULT));
            }
            Ok(ApiReturn::ok(0))
        }
        7 => {
            let p = SimPtr::new(arg as u64);
            if k
                .space
                .check_access(p, 16, 1, AccessKind::Read, PrivilegeLevel::User)
                .is_err()
            {
                return Ok(errno_return(errno::EFAULT));
            }
            // A blocking lock on a range someone holds: the simulated
            // harness marked the range contended when the fd came from the
            // "locked file" test value.
            if k.scratch.contains_key(&format!("posix.contended.{fd}")) {
                return Err(ApiAbort::Hang);
            }
            Ok(ApiReturn::ok(0))
        }
        _ => Ok(errno_return(errno::EINVAL)),
    }
}

/// Marks an fd's lock range contended (test-value constructor hook).
pub fn mark_contended(k: &mut Kernel, fd: i64) {
    k.scratch.insert(format!("posix.contended.{fd}"), 1);
}

/// `fsync(fd)`.
///
/// # Errors
///
/// None.
pub fn fsync(k: &mut Kernel, fd: i64) -> ApiResult {
    k.charge_call_to(Subsystem::Fs);
    if !fd_ok(k, fd) {
        return Ok(errno_return(errno::EBADF));
    }
    if fd >= FIRST_FILE_FD {
        let _ = k.fs.flush(fd as u64); // durability barrier for crashcon
    }
    Ok(ApiReturn::ok(0))
}

/// `fdatasync(fd)`.
///
/// # Errors
///
/// None.
pub fn fdatasync(k: &mut Kernel, fd: i64) -> ApiResult {
    fsync(k, fd)
}

/// `readv(fd, iov, iovcnt)` — glibc assembles the scatter list in **user
/// mode** before trapping: a wild `iov` pointer faults (one of the few
/// Linux syscall Aborts).
///
/// # Errors
///
/// A SIGSEGV abort when the iovec array itself is unreadable.
pub fn readv(k: &mut Kernel, fd: i64, iov: SimPtr, iovcnt: i32) -> ApiResult {
    k.charge_call_to(Subsystem::Fs);
    if !(0..=1024).contains(&iovcnt) {
        return Ok(errno_return(errno::EINVAL));
    }
    if !fd_ok(k, fd) {
        return Ok(errno_return(errno::EBADF));
    }
    let mut total = 0i64;
    for i in 0..iovcnt {
        // User-mode walk of the array: faults abort.
        let base = k
            .space
            .read_ptr(iov.offset(u64::from(i as u32) * 8))
            .map_err(signal)?;
        let len = k
            .space
            .read_u32(iov.offset(u64::from(i as u32) * 8 + 4))
            .map_err(signal)?;
        let r = read(k, fd, base, u64::from(len))?;
        if r.reported_error() {
            return Ok(r);
        }
        total += r.value;
        if (r.value as u64) < u64::from(len) {
            break;
        }
    }
    Ok(ApiReturn::ok(total))
}

/// `writev(fd, iov, iovcnt)` — same user-mode array walk as [`readv`].
///
/// # Errors
///
/// A SIGSEGV abort when the iovec array is unreadable.
pub fn writev(k: &mut Kernel, fd: i64, iov: SimPtr, iovcnt: i32) -> ApiResult {
    k.charge_call_to(Subsystem::Fs);
    if !(0..=1024).contains(&iovcnt) {
        return Ok(errno_return(errno::EINVAL));
    }
    if !fd_ok(k, fd) {
        return Ok(errno_return(errno::EBADF));
    }
    let mut total = 0i64;
    for i in 0..iovcnt {
        let base = k
            .space
            .read_ptr(iov.offset(u64::from(i as u32) * 8))
            .map_err(signal)?;
        let len = k
            .space
            .read_u32(iov.offset(u64::from(i as u32) * 8 + 4))
            .map_err(signal)?;
        let r = write(k, fd, base, u64::from(len))?;
        if r.reported_error() {
            return Ok(r);
        }
        total += r.value;
    }
    Ok(ApiReturn::ok(total))
}

/// `select(nfds, readfds, writefds, exceptfds, timeout)` — glibc touches
/// the `fd_set` bitmaps in user mode (abort on wild pointers); a NULL
/// timeout with nothing ready blocks forever.
///
/// # Errors
///
/// A SIGSEGV abort for unreadable `fd_set`s; [`ApiAbort::Hang`] for an
/// indefinite wait with nothing ready.
pub fn select(
    k: &mut Kernel,
    nfds: i32,
    readfds: SimPtr,
    writefds: SimPtr,
    exceptfds: SimPtr,
    timeout: SimPtr,
) -> ApiResult {
    k.charge_call_to(Subsystem::Fs);
    if !(0..=1024).contains(&nfds) {
        return Ok(errno_return(errno::EINVAL));
    }
    let mut ready = 0i64;
    for set in [readfds, writefds, exceptfds] {
        if set.is_null() {
            continue;
        }
        // glibc FD_ISSET walks the bitmap in user mode.
        let bits = k.space.read_u32(set).map_err(signal)?;
        // Regular files and std streams are always ready.
        ready += i64::from(bits.count_ones());
    }
    if ready == 0 {
        if timeout.is_null() {
            return Err(ApiAbort::Hang);
        }
        let secs = k.space.read_u32(timeout).map_err(signal)?;
        if secs == INFINITE {
            return Err(ApiAbort::Hang);
        }
        k.clock.advance_ms(u64::from(secs.min(60)) * 1000);
        return Ok(ApiReturn::ok(0));
    }
    Ok(ApiReturn::ok(ready))
}

/// `poll(fds, nfds, timeout)` — the kernel copy-in version: `EFAULT` for
/// bad arrays, indefinite block for `timeout == -1` with nothing ready.
///
/// # Errors
///
/// [`ApiAbort::Hang`] for an indefinite wait over an empty set.
pub fn poll(k: &mut Kernel, fds: SimPtr, nfds: u32, timeout: i32) -> ApiResult {
    k.charge_call_to(Subsystem::Fs);
    if nfds > 1024 {
        return Ok(errno_return(errno::EINVAL));
    }
    if nfds > 0
        && k.space
            .check_access(fds, u64::from(nfds) * 8, 1, AccessKind::Write, PrivilegeLevel::User)
            .is_err()
    {
        return Ok(errno_return(errno::EFAULT));
    }
    let mut ready = 0i64;
    for i in 0..nfds {
        let fd = k
            .space
            .read_i32(fds.offset(u64::from(i) * 8))
            .unwrap_or(-1);
        if fd_ok(k, i64::from(fd)) {
            // revents = POLLIN|POLLOUT
            let _ = k.space.write_u16(fds.offset(u64::from(i) * 8 + 6), 0x5);
            ready += 1;
        }
    }
    if ready == 0 && timeout < 0 {
        return Err(ApiAbort::Hang);
    }
    if ready == 0 {
        k.clock.advance_ms(u64::from(timeout.max(0) as u32));
    }
    Ok(ApiReturn::ok(ready))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_kernel::fs::OpenOptions;

    fn kernel_with_file(path: &str, content: &[u8]) -> (Kernel, i64) {
        let mut k = Kernel::new();
        k.fs.create_file(path, content.to_vec()).unwrap();
        let fd = k.fs.open(path, OpenOptions::read_write()).unwrap() as i64;
        (k, fd)
    }

    #[test]
    fn read_write_roundtrip() {
        let (mut k, fd) = kernel_with_file("/tmp/io", b"");
        let buf = k.alloc_user(16, "buf");
        k.space.write_bytes(buf, b"0123456789").unwrap();
        assert_eq!(write(&mut k, fd, buf, 10).unwrap().value, 10);
        assert_eq!(lseek(&mut k, fd, 0, 0).unwrap().value, 0);
        let out = k.alloc_user(16, "out");
        assert_eq!(read(&mut k, fd, out, 10).unwrap().value, 10);
        assert_eq!(k.space.read_bytes(out, 10).unwrap(), b"0123456789");
    }

    #[test]
    fn wild_buffers_are_efault_not_abort() {
        let (mut k, fd) = kernel_with_file("/tmp/g", b"data");
        let r = read(&mut k, fd, SimPtr::NULL, 4).unwrap();
        assert_eq!(r.error, Some(errno::EFAULT));
        let r = write(&mut k, fd, SimPtr::INVALID, 4).unwrap();
        assert_eq!(r.error, Some(errno::EFAULT));
        // This is the key Linux-vs-Win32 contrast: graceful, no signal.
    }

    #[test]
    fn bad_fds_are_ebadf() {
        let mut k = Kernel::new();
        let buf = k.alloc_user(4, "b");
        for fd in [-1i64, 99, i64::from(i32::MAX)] {
            assert_eq!(read(&mut k, fd, buf, 4).unwrap().error, Some(errno::EBADF));
            assert_eq!(write(&mut k, fd, buf, 4).unwrap().error, Some(errno::EBADF));
            assert_eq!(close(&mut k, fd).unwrap().error, Some(errno::EBADF));
            assert_eq!(fsync(&mut k, fd).unwrap().error, Some(errno::EBADF));
        }
    }

    #[test]
    fn std_streams() {
        let mut k = Kernel::new();
        let buf = k.alloc_user(32, "b");
        // stdin read returns the console line.
        let n = read(&mut k, 0, buf, 32).unwrap().value;
        assert!(n > 0);
        // stdout/stderr writes sink.
        k.space.write_bytes(buf, b"hello").unwrap();
        assert_eq!(write(&mut k, 1, buf, 5).unwrap().value, 5);
        assert_eq!(write(&mut k, 2, buf, 5).unwrap().value, 5);
        // Writing stdin / reading stdout are EBADF.
        assert!(write(&mut k, 0, buf, 1).unwrap().reported_error());
        assert!(read(&mut k, 1, buf, 1).unwrap().reported_error());
        // Seeking a stream: ESPIPE.
        assert_eq!(lseek(&mut k, 1, 0, 0).unwrap().error, Some(errno::ESPIPE));
    }

    #[test]
    fn dup_family() {
        let (mut k, fd) = kernel_with_file("/tmp/d", b"abcdef");
        let d = dup(&mut k, fd).unwrap().value;
        assert!(d > fd);
        let buf = k.alloc_user(4, "b");
        assert_eq!(read(&mut k, d, buf, 2).unwrap().value, 2);
        let target = 77;
        assert_eq!(dup2(&mut k, fd, target).unwrap().value, 77);
        assert_eq!(read(&mut k, target, buf, 2).unwrap().value, 2);
        assert_eq!(dup(&mut k, 999).unwrap().error, Some(errno::EBADF));
        assert_eq!(dup2(&mut k, fd, -1).unwrap().error, Some(errno::EBADF));
    }

    #[test]
    fn pipe_blocks_when_empty() {
        let mut k = Kernel::new();
        let fds = k.alloc_user(8, "pipefd");
        assert_eq!(pipe(&mut k, fds).unwrap().value, 0);
        let rd = i64::from(k.space.read_u32(fds).unwrap());
        let wr = i64::from(k.space.read_u32(fds.offset(4)).unwrap());
        let buf = k.alloc_user(8, "b");
        // Empty pipe: read blocks forever → Restart.
        assert!(read(&mut k, rd, buf, 4).unwrap_err().is_hang());
        // After writing, the primed read works.
        k.space.write_bytes(buf, b"ping").unwrap();
        assert_eq!(write(&mut k, wr, buf, 4).unwrap().value, 4);
        prime_pipe(&mut k, rd, 4);
        assert_eq!(read(&mut k, rd, buf, 4).unwrap().value, 4);
        // Bad pipefd pointer: EFAULT.
        assert_eq!(pipe(&mut k, SimPtr::NULL).unwrap().error, Some(errno::EFAULT));
    }

    #[test]
    fn fcntl_protocol() {
        let (mut k, fd) = kernel_with_file("/tmp/f", b"x");
        assert!(fcntl(&mut k, fd, 0, 0).unwrap().value > fd); // F_DUPFD
        assert_eq!(fcntl(&mut k, fd, 1, 0).unwrap().value, 0);
        assert_eq!(fcntl(&mut k, fd, 99, 0).unwrap().error, Some(errno::EINVAL));
        // Lock commands validate the struct pointer via copy-in.
        assert_eq!(fcntl(&mut k, fd, 6, 0).unwrap().error, Some(errno::EFAULT));
        let flock = k.alloc_user(16, "flock");
        assert_eq!(fcntl(&mut k, fd, 6, flock.addr() as i64).unwrap().value, 0);
        // Blocking lock on a contended fd hangs.
        mark_contended(&mut k, fd);
        assert!(fcntl(&mut k, fd, 7, flock.addr() as i64).unwrap_err().is_hang());
    }

    #[test]
    fn vector_io_walks_array_in_user_mode() {
        let (mut k, fd) = kernel_with_file("/tmp/v", b"");
        // Hostile iovec array: SIGSEGV abort (glibc glue).
        let err = writev(&mut k, fd, SimPtr::NULL, 2).unwrap_err();
        assert!(matches!(err, ApiAbort::Signal { signo: 11, .. }));
        // Valid iovec writes both segments.
        let a = k.alloc_user(4, "a");
        let b = k.alloc_user(4, "b");
        k.space.write_bytes(a, b"abcd").unwrap();
        k.space.write_bytes(b, b"efgh").unwrap();
        let iov = k.alloc_user(16, "iov");
        k.space.write_ptr(iov, a).unwrap();
        k.space.write_u32(iov.offset(4), 4).unwrap();
        k.space.write_ptr(iov.offset(8), b).unwrap();
        k.space.write_u32(iov.offset(12), 4).unwrap();
        assert_eq!(writev(&mut k, fd, iov, 2).unwrap().value, 8);
        lseek(&mut k, fd, 0, 0).unwrap();
        assert_eq!(readv(&mut k, fd, iov, 2).unwrap().value, 8);
        assert_eq!(k.space.read_bytes(a, 4).unwrap(), b"abcd");
        // Degenerate counts.
        assert_eq!(writev(&mut k, fd, iov, -1).unwrap().error, Some(errno::EINVAL));
    }

    #[test]
    fn select_and_poll() {
        let mut k = Kernel::new();
        // Wild fd_set: abort (glibc user-mode bitmap walk).
        assert!(select(&mut k, 4, SimPtr::new(0x30), SimPtr::NULL, SimPtr::NULL, SimPtr::NULL).is_err());
        // Nothing ready + NULL timeout: hang.
        let empty = k.alloc_user(128, "fdset");
        assert!(
            select(&mut k, 4, empty, SimPtr::NULL, SimPtr::NULL, SimPtr::NULL)
                .unwrap_err()
                .is_hang()
        );
        // Something ready returns promptly.
        k.space.write_u32(empty, 0b1010).unwrap();
        assert_eq!(
            select(&mut k, 4, empty, SimPtr::NULL, SimPtr::NULL, SimPtr::NULL)
                .unwrap()
                .value,
            2
        );
        // poll: EFAULT for wild array; hang for infinite empty wait.
        assert_eq!(poll(&mut k, SimPtr::NULL, 2, 0).unwrap().error, Some(errno::EFAULT));
        let pfd = k.alloc_user(8, "pollfd");
        k.space.write_i32(pfd, 999).unwrap(); // unknown fd: never ready
        assert!(poll(&mut k, pfd, 1, -1).unwrap_err().is_hang());
        k.space.write_i32(pfd, 1).unwrap(); // stdout: ready
        assert_eq!(poll(&mut k, pfd, 1, -1).unwrap().value, 1);
    }
}
