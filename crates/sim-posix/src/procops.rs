//! Process primitives: `fork`/`exec`/`wait`, signals and scheduling — the
//! paper's POSIX *Process Primitives* grouping.
//!
//! Hazards modelled: `waitpid` without `WNOHANG` on a live child blocks
//! (Restart); `pause` always blocks; `sigaction` copies the caller's
//! struct in glibc glue (Abort on wild pointers); everything else is
//! kernel-graceful.

use sim_kernel::Subsystem;
use crate::{errno_return, signal};
use sim_core::addr::PrivilegeLevel;
use sim_core::{cstr, AccessKind, SimPtr};
use sim_kernel::outcome::{ApiAbort, ApiResult, ApiReturn};
use sim_kernel::process::ProcessError;
use sim_kernel::Kernel;
use sim_libc::errno;

/// `fork()` — spawns a child record; the (simulated) child immediately
/// runs to completion and exits 0, so `wait` can reap it.
///
/// # Errors
///
/// None.
pub fn fork(k: &mut Kernel) -> ApiResult {
    k.charge_call_to(Subsystem::Process);
    let parent = k.procs.current_pid();
    let pid = k.procs.spawn_process(parent, "forked-child");
    // The child "runs" between now and the parent's next wait.
    let _ = k.procs.terminate(pid, 0);
    Ok(ApiReturn::ok(i64::from(pid)))
}

/// `execve(pathname, argv, envp)` — on success never returns; in the
/// harness a *successful* exec is reported as a normal return so the test
/// can be scored. Bad images are `ENOENT`; the argv/envp arrays are walked
/// by glibc in user mode (Abort on wild pointers).
///
/// # Errors
///
/// A SIGSEGV abort when `argv`/`envp` are unreadable non-NULL pointers.
pub fn execve(k: &mut Kernel, pathname: SimPtr, argv: SimPtr, envp: SimPtr) -> ApiResult {
    k.charge_call_to(Subsystem::Process);
    let path = match cstr::read_cstr(&k.space, pathname, PrivilegeLevel::User) {
        Ok(b) => {
            String::from_utf8(b).unwrap_or_else(|e| String::from_utf8_lossy(e.as_bytes()).into_owned())
        }
        Err(_) => return Ok(errno_return(errno::EFAULT)),
    };
    for array in [argv, envp] {
        if !array.is_null() {
            // Walk until NULL terminator, reading each pointer in user mode.
            let mut cursor = array;
            for _ in 0..64 {
                let entry = k.space.read_ptr(cursor).map_err(signal)?;
                if entry.is_null() {
                    break;
                }
                cursor = cursor.offset(4);
            }
        }
    }
    if !k.fs.exists(&path) {
        return Ok(errno_return(errno::ENOENT));
    }
    Ok(ApiReturn::ok(0))
}

/// `waitpid(pid, wstatus, options)` — `WNOHANG` is bit 0.
///
/// # Errors
///
/// [`ApiAbort::Hang`] when waiting (without `WNOHANG`) and no child will
/// ever exit; a SIGSEGV abort when `wstatus` is a wild non-NULL pointer
/// (glibc writes the status word in user mode).
pub fn waitpid(k: &mut Kernel, pid: i64, wstatus: SimPtr, options: i32) -> ApiResult {
    k.charge_call_to(Subsystem::Process);
    let me = k.procs.current_pid();
    let nohang = options & 1 != 0;
    let reaped = match k.procs.reap_child(me) {
        Ok(Some((child, code))) => {
            if pid > 0 && child != pid as u32 {
                // Asked for a specific other child that hasn't exited.
                if nohang {
                    return Ok(ApiReturn::ok(0));
                }
                return Err(ApiAbort::Hang);
            }
            Some((child, code))
        }
        Ok(None) => None,
        Err(ProcessError::NoChildren) => return Ok(errno_return(errno::ECHILD)),
        Err(e) => return Ok(errno_return(errno::from_process(e))),
    };
    match reaped {
        Some((child, code)) => {
            if !wstatus.is_null() {
                // Exit status encoding: (code << 8).
                k.space
                    .write_u32(wstatus, code << 8)
                    .map_err(signal)?;
            }
            Ok(ApiReturn::ok(i64::from(child)))
        }
        None => {
            if nohang {
                Ok(ApiReturn::ok(0))
            } else {
                // Live children that never run to exit: block forever.
                Err(ApiAbort::Hang)
            }
        }
    }
}

/// `wait(wstatus)` — `waitpid(-1, wstatus, 0)`.
///
/// # Errors
///
/// Same conditions as [`waitpid`].
pub fn wait(k: &mut Kernel, wstatus: SimPtr) -> ApiResult {
    waitpid(k, -1, wstatus, 0)
}

/// `kill(pid, sig)`.
///
/// # Errors
///
/// None; bad pids are `ESRCH`, bad signals `EINVAL`.
pub fn kill(k: &mut Kernel, pid: i64, sig: i32) -> ApiResult {
    k.charge_call_to(Subsystem::Process);
    if !(0..=64).contains(&sig) {
        return Ok(errno_return(errno::EINVAL));
    }
    if pid <= 0 {
        // Process groups: accepted for the caller's own group.
        return Ok(ApiReturn::ok(0));
    }
    match k.procs.process(pid as u32) {
        Ok(_) => {
            if sig != 0 {
                let _ = k.procs.terminate(pid as u32, 128 + sig as u32);
            }
            Ok(ApiReturn::ok(0))
        }
        Err(_) => Ok(errno_return(errno::ESRCH)),
    }
}

/// `getpid()`.
///
/// # Errors
///
/// None.
pub fn getpid(k: &mut Kernel) -> ApiResult {
    k.charge_call_to(Subsystem::Process);
    Ok(ApiReturn::ok(i64::from(k.procs.current_pid())))
}

/// `getppid()`.
///
/// # Errors
///
/// None.
pub fn getppid(k: &mut Kernel) -> ApiResult {
    k.charge_call_to(Subsystem::Process);
    let me = k.procs.current_pid();
    let parent = k.procs.process(me).map(|p| p.parent).unwrap_or(1);
    Ok(ApiReturn::ok(i64::from(parent.max(1))))
}

/// `setpgid(pid, pgid)`.
///
/// # Errors
///
/// None.
pub fn setpgid(k: &mut Kernel, pid: i64, pgid: i64) -> ApiResult {
    k.charge_call_to(Subsystem::Process);
    if pid < 0 || pgid < 0 {
        return Ok(errno_return(errno::EINVAL));
    }
    let target = if pid == 0 { k.procs.current_pid() } else { pid as u32 };
    if k.procs.process(target).is_err() {
        return Ok(errno_return(errno::ESRCH));
    }
    Ok(ApiReturn::ok(0))
}

/// `getpgrp()`.
///
/// # Errors
///
/// None.
pub fn getpgrp(k: &mut Kernel) -> ApiResult {
    k.charge_call_to(Subsystem::Process);
    Ok(ApiReturn::ok(i64::from(k.procs.current_pid())))
}

/// `setsid()` — the test task is already a group leader: `EPERM`, the
/// documented graceful answer.
///
/// # Errors
///
/// None.
pub fn setsid(k: &mut Kernel) -> ApiResult {
    k.charge_call_to(Subsystem::Process);
    Ok(errno_return(errno::EPERM))
}

/// `nice(inc)`.
///
/// # Errors
///
/// None; lowering niceness without privilege is `EPERM`.
pub fn nice(k: &mut Kernel, inc: i32) -> ApiResult {
    k.charge_call_to(Subsystem::Process);
    if inc < 0 {
        return Ok(errno_return(errno::EPERM));
    }
    let tid = k.procs.current_tid();
    if let Ok(t) = k.procs.thread_mut(tid) {
        t.priority = (t.priority + inc.min(19)).min(19);
        return Ok(ApiReturn::ok(i64::from(t.priority)));
    }
    Ok(errno_return(errno::ESRCH))
}

/// `pause()` — blocks until a signal arrives; no signal ever arrives in a
/// single test case: a guaranteed Restart.
///
/// # Errors
///
/// Always [`ApiAbort::Hang`].
pub fn pause(k: &mut Kernel) -> ApiResult {
    k.charge_call_to(Subsystem::Process);
    Err(ApiAbort::Hang)
}

/// `alarm(seconds)` — returns the remaining time of a previous alarm.
///
/// # Errors
///
/// None; total for every input.
pub fn alarm(k: &mut Kernel, seconds: u32) -> ApiResult {
    k.charge_call_to(Subsystem::Process);
    let prev = k
        .scratch
        .insert("posix.alarm".to_owned(), u64::from(seconds))
        .unwrap_or(0);
    Ok(ApiReturn::ok(prev as i64))
}

/// `sleep(seconds)` — returns 0 after "sleeping" (simulated time).
///
/// # Errors
///
/// None (finite argument domain: `u32`).
pub fn sleep(k: &mut Kernel, seconds: u32) -> ApiResult {
    k.charge_call_to(Subsystem::Process);
    k.clock.advance_ms(u64::from(seconds.min(3600)) * 1000);
    Ok(ApiReturn::ok(0))
}

/// `signal(signum, handler)` — returns the previous handler; `SIG_ERR`
/// (−1) with `EINVAL` for unblockable signals.
///
/// # Errors
///
/// None. The handler pointer is *stored, not dereferenced* — exactly why
/// `signal` itself is robust even with wild handlers.
pub fn signal_call(k: &mut Kernel, signum: i32, handler: SimPtr) -> ApiResult {
    k.charge_call_to(Subsystem::Process);
    if !(1..=64).contains(&signum) || signum == 9 || signum == 19 {
        // SIGKILL/SIGSTOP cannot be caught.
        if signum == 9 || signum == 19 {
            return Ok(ApiReturn::err(-1, errno::EINVAL));
        }
        return Ok(ApiReturn::err(-1, errno::EINVAL));
    }
    let prev = k
        .scratch
        .insert(format!("posix.sighandler.{signum}"), handler.addr())
        .unwrap_or(0);
    Ok(ApiReturn::ok(prev as i64))
}

/// `sigaction(signum, act, oldact)` — glibc translates between kernel and
/// libc `sigaction` layouts by copying in user mode: wild non-NULL struct
/// pointers abort (a glibc-glue Abort source).
///
/// # Errors
///
/// A SIGSEGV abort when `act`/`oldact` are unreadable/unwritable non-NULL
/// pointers.
pub fn sigaction(k: &mut Kernel, signum: i32, act: SimPtr, oldact: SimPtr) -> ApiResult {
    k.charge_call_to(Subsystem::Process);
    if !(1..=64).contains(&signum) || signum == 9 || signum == 19 {
        return Ok(errno_return(errno::EINVAL));
    }
    let new_handler = if act.is_null() {
        None
    } else {
        Some(k.space.read_ptr(act).map_err(signal)?)
    };
    let key = format!("posix.sighandler.{signum}");
    let prev = k.scratch.get(&key).copied().unwrap_or(0);
    if !oldact.is_null() {
        k.space
            .write_ptr(oldact, SimPtr::new(prev))
            .map_err(signal)?;
    }
    if let Some(h) = new_handler {
        k.scratch.insert(key, h.addr());
    }
    Ok(ApiReturn::ok(0))
}

/// `sigprocmask(how, set, oldset)` — kernel copy-in/out: `EFAULT` for wild
/// pointers.
///
/// # Errors
///
/// None.
pub fn sigprocmask(k: &mut Kernel, how: i32, set: SimPtr, oldset: SimPtr) -> ApiResult {
    k.charge_call_to(Subsystem::Process);
    if !(0..=2).contains(&how) && !set.is_null() {
        return Ok(errno_return(errno::EINVAL));
    }
    if !set.is_null()
        && k.space
            .check_access(set, 8, 1, AccessKind::Read, PrivilegeLevel::User)
            .is_err()
    {
        return Ok(errno_return(errno::EFAULT));
    }
    if !oldset.is_null() {
        if k
            .space
            .check_access(oldset, 8, 1, AccessKind::Write, PrivilegeLevel::User)
            .is_err()
        {
            return Ok(errno_return(errno::EFAULT));
        }
        let _ = k.space.write_u64(oldset, 0);
    }
    Ok(ApiReturn::ok(0))
}

/// `sched_yield()`.
///
/// # Errors
///
/// None.
pub fn sched_yield(k: &mut Kernel) -> ApiResult {
    k.charge_call_to(Subsystem::Process);
    Ok(ApiReturn::ok(0))
}

/// `sched_get_priority_max(policy)` — SCHED_OTHER=0, SCHED_FIFO=1,
/// SCHED_RR=2.
///
/// # Errors
///
/// None.
pub fn sched_get_priority_max(k: &mut Kernel, policy: i32) -> ApiResult {
    k.charge_call_to(Subsystem::Process);
    match policy {
        0 => Ok(ApiReturn::ok(0)),
        1 | 2 => Ok(ApiReturn::ok(99)),
        _ => Ok(errno_return(errno::EINVAL)),
    }
}

/// `sched_get_priority_min(policy)`.
///
/// # Errors
///
/// None.
pub fn sched_get_priority_min(k: &mut Kernel, policy: i32) -> ApiResult {
    k.charge_call_to(Subsystem::Process);
    match policy {
        0 => Ok(ApiReturn::ok(0)),
        1 | 2 => Ok(ApiReturn::ok(1)),
        _ => Ok(errno_return(errno::EINVAL)),
    }
}

/// `sched_getparam(pid, param)` — kernel copy-out: `EFAULT` for wild
/// pointers.
///
/// # Errors
///
/// None.
pub fn sched_getparam(k: &mut Kernel, pid: i64, param: SimPtr) -> ApiResult {
    k.charge_call_to(Subsystem::Process);
    if pid < 0 {
        return Ok(errno_return(errno::EINVAL));
    }
    let target = if pid == 0 { k.procs.current_pid() } else { pid as u32 };
    if k.procs.process(target).is_err() {
        return Ok(errno_return(errno::ESRCH));
    }
    if k
        .space
        .check_access(param, 4, 4, AccessKind::Write, PrivilegeLevel::User)
        .is_err()
    {
        return Ok(errno_return(errno::EFAULT));
    }
    let _ = k.space.write_u32(param, 0);
    Ok(ApiReturn::ok(0))
}

/// `sched_setparam(pid, param)`.
///
/// # Errors
///
/// None.
pub fn sched_setparam(k: &mut Kernel, pid: i64, param: SimPtr) -> ApiResult {
    k.charge_call_to(Subsystem::Process);
    if pid < 0 {
        return Ok(errno_return(errno::EINVAL));
    }
    let target = if pid == 0 { k.procs.current_pid() } else { pid as u32 };
    if k.procs.process(target).is_err() {
        return Ok(errno_return(errno::ESRCH));
    }
    if k
        .space
        .check_access(param, 4, 4, AccessKind::Read, PrivilegeLevel::User)
        .is_err()
    {
        return Ok(errno_return(errno::EFAULT));
    }
    let prio = k.space.read_i32(param).unwrap_or(0);
    if !(0..=99).contains(&prio) {
        return Ok(errno_return(errno::EINVAL));
    }
    // Unprivileged: only SCHED_OTHER/prio 0 allowed.
    if prio != 0 {
        return Ok(errno_return(errno::EPERM));
    }
    Ok(ApiReturn::ok(0))
}

/// `vfork()` — same observable protocol as [`fork`] in the simulation.
///
/// # Errors
///
/// None.
pub fn vfork(k: &mut Kernel) -> ApiResult {
    fork(k)
}

/// `getpgid(pid)`.
///
/// # Errors
///
/// None.
pub fn getpgid(k: &mut Kernel, pid: i64) -> ApiResult {
    k.charge_call_to(Subsystem::Process);
    if pid < 0 {
        return Ok(errno_return(errno::EINVAL));
    }
    let target = if pid == 0 { k.procs.current_pid() } else { pid as u32 };
    if k.procs.process(target).is_err() {
        return Ok(errno_return(errno::ESRCH));
    }
    Ok(ApiReturn::ok(i64::from(target)))
}

/// `sigpending(set)` — kernel copy-out (`EFAULT` for wild pointers).
///
/// # Errors
///
/// None.
pub fn sigpending(k: &mut Kernel, set: SimPtr) -> ApiResult {
    k.charge_call_to(Subsystem::Process);
    if k
        .space
        .check_access(set, 8, 1, AccessKind::Write, PrivilegeLevel::User)
        .is_err()
    {
        return Ok(errno_return(errno::EFAULT));
    }
    let _ = k.space.write_u64(set, 0);
    Ok(ApiReturn::ok(0))
}

/// `sigsuspend(mask)` — waits for a signal that never arrives: a
/// guaranteed Restart (after the mask copy-in, which is `EFAULT` for wild
/// pointers).
///
/// # Errors
///
/// Always [`ApiAbort::Hang`] when the mask is readable.
pub fn sigsuspend(k: &mut Kernel, mask: SimPtr) -> ApiResult {
    k.charge_call_to(Subsystem::Process);
    if k
        .space
        .check_access(mask, 8, 1, AccessKind::Read, PrivilegeLevel::User)
        .is_err()
    {
        return Ok(errno_return(errno::EFAULT));
    }
    Err(ApiAbort::Hang)
}

/// `nanosleep(req, rem)` — kernel copy-in/out; negative or absurd
/// `tv_nsec` is `EINVAL`.
///
/// # Errors
///
/// None.
pub fn nanosleep(k: &mut Kernel, req: SimPtr, rem: SimPtr) -> ApiResult {
    k.charge_call_to(Subsystem::Process);
    if k
        .space
        .check_access(req, 8, 4, AccessKind::Read, PrivilegeLevel::User)
        .is_err()
    {
        return Ok(errno_return(errno::EFAULT));
    }
    let secs = k.space.read_i32(req).unwrap_or(0);
    let nanos = k.space.read_i32(req.offset(4)).unwrap_or(0);
    if secs < 0 || !(0..1_000_000_000).contains(&nanos) {
        return Ok(errno_return(errno::EINVAL));
    }
    k.clock.advance_ms(u64::from(secs.min(3600) as u32) * 1000);
    if !rem.is_null() {
        if k
            .space
            .check_access(rem, 8, 4, AccessKind::Write, PrivilegeLevel::User)
            .is_err()
        {
            return Ok(errno_return(errno::EFAULT));
        }
        let _ = k.space.write_u64(rem, 0);
    }
    Ok(ApiReturn::ok(0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extended_calls() {
        let mut k = Kernel::new();
        assert!(vfork(&mut k).unwrap().value > 0);
        let me = i64::from(k.procs.current_pid());
        assert_eq!(getpgid(&mut k, 0).unwrap().value, me);
        assert_eq!(getpgid(&mut k, 99_999).unwrap().error, Some(errno::ESRCH));
        let set = k.alloc_user(8, "set");
        assert_eq!(sigpending(&mut k, set).unwrap().value, 0);
        assert_eq!(
            sigpending(&mut k, SimPtr::NULL).unwrap().error,
            Some(errno::EFAULT)
        );
        assert!(sigsuspend(&mut k, set).unwrap_err().is_hang());
        assert_eq!(
            sigsuspend(&mut k, SimPtr::NULL).unwrap().error,
            Some(errno::EFAULT)
        );
        let ts = k.alloc_user(8, "timespec");
        k.space.write_i32(ts, 1).unwrap();
        k.space.write_i32(ts.offset(4), 0).unwrap();
        assert_eq!(nanosleep(&mut k, ts, SimPtr::NULL).unwrap().value, 0);
        k.space.write_i32(ts.offset(4), -5).unwrap();
        assert_eq!(nanosleep(&mut k, ts, SimPtr::NULL).unwrap().error, Some(errno::EINVAL));
        assert_eq!(
            nanosleep(&mut k, SimPtr::NULL, SimPtr::NULL).unwrap().error,
            Some(errno::EFAULT)
        );
    }

    #[test]
    fn fork_and_wait_protocol() {
        let mut k = Kernel::new();
        let child = fork(&mut k).unwrap().value;
        assert!(child > 0);
        let status = k.alloc_user(4, "status");
        let reaped = waitpid(&mut k, -1, status, 0).unwrap().value;
        assert_eq!(reaped, child);
        assert_eq!(k.space.read_u32(status).unwrap(), 0);
        // No more children: ECHILD.
        assert_eq!(wait(&mut k, status).unwrap().error, Some(errno::ECHILD));
    }

    #[test]
    fn waitpid_hazards() {
        let mut k = Kernel::new();
        // No children at all: ECHILD immediately, never a hang.
        assert_eq!(
            waitpid(&mut k, -1, SimPtr::NULL, 0).unwrap().error,
            Some(errno::ECHILD)
        );
        // A live child that never exits (spawned directly, not via fork):
        let live = k.procs.spawn_process(k.procs.current_pid(), "sleeper");
        assert!(waitpid(&mut k, i64::from(live), SimPtr::NULL, 0).unwrap_err().is_hang());
        // WNOHANG: graceful 0.
        assert_eq!(waitpid(&mut k, i64::from(live), SimPtr::NULL, 1).unwrap().value, 0);
        // Wild status pointer with a reapable child: glibc abort.
        let _ = fork(&mut k).unwrap();
        assert!(waitpid(&mut k, -1, SimPtr::new(0x30), 0).is_err());
    }

    #[test]
    fn execve_behaviour() {
        let mut k = Kernel::new();
        let path = k.alloc_user(16, "p");
        cstr::write_cstr(&mut k.space, path, "/etc/motd", PrivilegeLevel::User).unwrap();
        // NULL argv/envp tolerated.
        assert_eq!(execve(&mut k, path, SimPtr::NULL, SimPtr::NULL).unwrap().value, 0);
        // Missing image: ENOENT.
        let ghost = k.alloc_user(8, "g");
        cstr::write_cstr(&mut k.space, ghost, "/ghost", PrivilegeLevel::User).unwrap();
        assert_eq!(
            execve(&mut k, ghost, SimPtr::NULL, SimPtr::NULL).unwrap().error,
            Some(errno::ENOENT)
        );
        // Wild path: EFAULT (kernel copy-in).
        assert_eq!(
            execve(&mut k, SimPtr::NULL, SimPtr::NULL, SimPtr::NULL).unwrap().error,
            Some(errno::EFAULT)
        );
        // Wild argv: SIGSEGV (glibc walks it).
        assert!(execve(&mut k, path, SimPtr::new(0x30), SimPtr::NULL).is_err());
    }

    #[test]
    fn kill_and_identity() {
        let mut k = Kernel::new();
        let victim = k.procs.spawn_process(k.procs.current_pid(), "victim");
        assert_eq!(kill(&mut k, i64::from(victim), 15).unwrap().value, 0);
        assert!(!k.procs.live_pids().contains(&victim));
        assert_eq!(kill(&mut k, 99_999, 15).unwrap().error, Some(errno::ESRCH));
        let me = i64::from(k.procs.current_pid());
        assert_eq!(kill(&mut k, me, 999).unwrap().error, Some(errno::EINVAL));
        // Signal 0 probes without killing.
        let probe = k.procs.spawn_process(k.procs.current_pid(), "probe");
        assert_eq!(kill(&mut k, i64::from(probe), 0).unwrap().value, 0);
        assert!(k.procs.live_pids().contains(&probe));
        assert!(getpid(&mut k).unwrap().value > 0);
        assert!(getppid(&mut k).unwrap().value > 0);
        assert!(getpgrp(&mut k).unwrap().value > 0);
    }

    #[test]
    fn pause_always_hangs() {
        let mut k = Kernel::new();
        assert!(pause(&mut k).unwrap_err().is_hang());
    }

    #[test]
    fn alarm_sleep_nice() {
        let mut k = Kernel::new();
        assert_eq!(alarm(&mut k, 30).unwrap().value, 0);
        assert_eq!(alarm(&mut k, 0).unwrap().value, 30);
        let t0 = k.clock.unix_secs();
        assert_eq!(sleep(&mut k, 2).unwrap().value, 0);
        assert_eq!(k.clock.unix_secs(), t0 + 2);
        assert!(nice(&mut k, 5).unwrap().value >= 5);
        assert_eq!(nice(&mut k, -5).unwrap().error, Some(errno::EPERM));
        assert_eq!(setsid(&mut k).unwrap().error, Some(errno::EPERM));
        assert_eq!(setpgid(&mut k, 0, 0).unwrap().value, 0);
        assert_eq!(setpgid(&mut k, -1, 0).unwrap().error, Some(errno::EINVAL));
    }

    #[test]
    fn signal_and_sigaction() {
        let mut k = Kernel::new();
        let handler = SimPtr::new(0x0040_2000);
        // signal() stores without dereferencing: robust even for garbage.
        assert_eq!(signal_call(&mut k, 2, handler).unwrap().value, 0);
        assert_eq!(signal_call(&mut k, 2, SimPtr::NULL).unwrap().value as u64, handler.addr());
        assert!(signal_call(&mut k, 9, handler).unwrap().reported_error()); // SIGKILL
        assert!(signal_call(&mut k, 99, handler).unwrap().reported_error());
        // sigaction: struct copy in user mode → abort for wild pointers.
        let act = k.alloc_user(16, "act");
        k.space.write_ptr(act, handler).unwrap();
        let old = k.alloc_user(16, "old");
        assert_eq!(sigaction(&mut k, 10, act, old).unwrap().value, 0);
        assert!(sigaction(&mut k, 10, SimPtr::new(0x30), SimPtr::NULL).is_err());
        assert!(sigaction(&mut k, 10, SimPtr::NULL, SimPtr::new(0x30)).is_err());
        // NULL/NULL query form is legal.
        assert_eq!(sigaction(&mut k, 10, SimPtr::NULL, SimPtr::NULL).unwrap().value, 0);
        // sigprocmask: kernel EFAULT.
        assert_eq!(
            sigprocmask(&mut k, 0, SimPtr::new(0x30), SimPtr::NULL).unwrap().error,
            Some(errno::EFAULT)
        );
        let set = k.alloc_user(8, "set");
        assert_eq!(sigprocmask(&mut k, 0, set, SimPtr::NULL).unwrap().value, 0);
    }

    #[test]
    fn scheduling() {
        let mut k = Kernel::new();
        assert_eq!(sched_yield(&mut k).unwrap().value, 0);
        assert_eq!(sched_get_priority_max(&mut k, 1).unwrap().value, 99);
        assert_eq!(sched_get_priority_min(&mut k, 1).unwrap().value, 1);
        assert!(sched_get_priority_max(&mut k, 77).unwrap().reported_error());
        let param = k.alloc_user(4, "param");
        assert_eq!(sched_getparam(&mut k, 0, param).unwrap().value, 0);
        assert_eq!(
            sched_getparam(&mut k, 0, SimPtr::NULL).unwrap().error,
            Some(errno::EFAULT)
        );
        assert_eq!(sched_getparam(&mut k, 99_999, param).unwrap().error, Some(errno::ESRCH));
        k.space.write_i32(param, 0).unwrap();
        assert_eq!(sched_setparam(&mut k, 0, param).unwrap().value, 0);
        k.space.write_i32(param, 50).unwrap();
        assert_eq!(sched_setparam(&mut k, 0, param).unwrap().error, Some(errno::EPERM));
        k.space.write_i32(param, 1000).unwrap();
        assert_eq!(sched_setparam(&mut k, 0, param).unwrap().error, Some(errno::EINVAL));
    }
}
