//! Memory management: `mmap`/`munmap`/`mprotect`/`msync`, `brk`/`sbrk`
//! and the locking calls — the paper's POSIX *Memory Management* grouping.
//!
//! All of these are true system calls: the kernel validates everything and
//! returns `EINVAL`/`ENOMEM`/`EFAULT`, which is why Linux's Memory
//! Management group is among its most graceful in Figure 1.

use sim_kernel::Subsystem;
use crate::errno_return;
use sim_core::memory::Protection;
use sim_core::SimPtr;
use sim_kernel::outcome::{ApiResult, ApiReturn};
use sim_kernel::Kernel;
use sim_libc::errno;

/// `MAP_FAILED` as returned by `mmap`.
pub const MAP_FAILED: i64 = -1;

fn prot_from_bits(prot: i32) -> Option<Protection> {
    // PROT_NONE=0, PROT_READ=1, PROT_WRITE=2, PROT_EXEC=4.
    match prot {
        0 => Some(Protection::NONE),
        1 => Some(Protection::READ),
        2 | 3 => Some(Protection::READ_WRITE),
        4 | 5 => Some(Protection::READ_EXECUTE),
        6 | 7 => Some(Protection::READ_WRITE_EXECUTE),
        _ => None,
    }
}

/// `mmap(addr, length, prot, flags, fd, offset)`.
///
/// # Errors
///
/// None; every hostile argument maps to an `errno`.
pub fn mmap(
    k: &mut Kernel,
    addr: SimPtr,
    length: u64,
    prot: i32,
    flags: i32,
    fd: i64,
    offset: i64,
) -> ApiResult {
    k.charge_call_to(Subsystem::Heap);
    let Some(protection) = prot_from_bits(prot) else {
        return Ok(ApiReturn::err(MAP_FAILED, errno::EINVAL));
    };
    if length == 0 || offset < 0 || offset % 0x1000 != 0 {
        return Ok(ApiReturn::err(MAP_FAILED, errno::EINVAL));
    }
    const MAP_ANONYMOUS: i32 = 0x20;
    const MAP_FIXED: i32 = 0x10;
    let file_backed = flags & MAP_ANONYMOUS == 0;
    if file_backed && (fd < 3 || !k.fs.is_open(fd as u64)) {
        return Ok(ApiReturn::err(MAP_FAILED, errno::EBADF));
    }
    let base = if flags & MAP_FIXED != 0 && !addr.is_null() {
        match k.space.map_at(addr, length, protection, "mmap-fixed") {
            Ok(()) => addr,
            Err(_) => return Ok(ApiReturn::err(MAP_FAILED, errno::EINVAL)),
        }
    } else {
        match k.space.map(length, protection, "mmap") {
            Ok(p) => p,
            Err(_) => return Ok(ApiReturn::err(MAP_FAILED, errno::ENOMEM)),
        }
    };
    if file_backed && protection.can_read() {
        let _ = k.fs.seek(fd as u64, sim_kernel::fs::SeekFrom::Start(offset as u64));
        let mut data = vec![0u8; length.min(1 << 20) as usize];
        if let Ok(n) = k.fs.read(fd as u64, &mut data) {
            if protection.can_write() {
                let _ = k.space.write_bytes(base, &data[..n]);
            } else {
                // Populate then re-protect.
                let _ = k.space.protect(base, Protection::READ_WRITE);
                let _ = k.space.write_bytes(base, &data[..n]);
                let _ = k.space.protect(base, protection);
            }
        }
    }
    Ok(ApiReturn::ok(base.addr() as i64))
}

/// `munmap(addr, length)`.
///
/// # Errors
///
/// None; unmapping garbage is `EINVAL`.
pub fn munmap(k: &mut Kernel, addr: SimPtr, _length: u64) -> ApiResult {
    k.charge_call_to(Subsystem::Heap);
    match k.space.unmap(addr) {
        Ok(()) => Ok(ApiReturn::ok(0)),
        Err(_) => Ok(errno_return(errno::EINVAL)),
    }
}

/// `mprotect(addr, len, prot)`.
///
/// # Errors
///
/// None.
pub fn mprotect(k: &mut Kernel, addr: SimPtr, _len: u64, prot: i32) -> ApiResult {
    k.charge_call_to(Subsystem::Heap);
    let Some(protection) = prot_from_bits(prot) else {
        return Ok(errno_return(errno::EINVAL));
    };
    let Some((base, _, _, _)) = k.space.region_containing(addr) else {
        return Ok(errno_return(errno::ENOMEM)); // the documented errno
    };
    match k.space.protect(base, protection) {
        Ok(()) => Ok(ApiReturn::ok(0)),
        Err(_) => Ok(errno_return(errno::EINVAL)),
    }
}

/// `msync(addr, length, flags)`.
///
/// # Errors
///
/// None.
pub fn msync(k: &mut Kernel, addr: SimPtr, _length: u64, flags: i32) -> ApiResult {
    k.charge_call_to(Subsystem::Heap);
    // MS_ASYNC=1, MS_SYNC=4, MS_INVALIDATE=2; ASYNC+SYNC together invalid.
    if flags & 1 != 0 && flags & 4 != 0 {
        return Ok(errno_return(errno::EINVAL));
    }
    if k.space.region_containing(addr).is_none() {
        return Ok(errno_return(errno::ENOMEM));
    }
    Ok(ApiReturn::ok(0))
}

/// `brk(addr)` — the simulated program break is tracked but fixed-budget:
/// absurd values are rejected with `ENOMEM`, exactly the graceful path.
///
/// # Errors
///
/// None.
pub fn brk(k: &mut Kernel, addr: SimPtr) -> ApiResult {
    k.charge_call_to(Subsystem::Heap);
    let current = k
        .scratch
        .get("posix.brk")
        .copied()
        .unwrap_or(0x0800_0000);
    if addr.is_null() {
        return Ok(ApiReturn::ok(current as i64));
    }
    if addr.addr() < 0x0800_0000 || addr.addr() >= 0x2000_0000 {
        return Ok(errno_return(errno::ENOMEM));
    }
    k.scratch.insert("posix.brk".to_owned(), addr.addr());
    Ok(ApiReturn::ok(0))
}

/// `sbrk(increment)`.
///
/// # Errors
///
/// None.
pub fn sbrk(k: &mut Kernel, increment: i64) -> ApiResult {
    k.charge_call_to(Subsystem::Heap);
    let current = k
        .scratch
        .get("posix.brk")
        .copied()
        .unwrap_or(0x0800_0000) as i64;
    let next = current.saturating_add(increment);
    if !(0x0800_0000..0x2000_0000).contains(&next) {
        return Ok(errno_return(errno::ENOMEM));
    }
    k.scratch.insert("posix.brk".to_owned(), next as u64);
    Ok(ApiReturn::ok(current))
}

/// `mlock(addr, len)` — needs the range mapped; unprivileged callers get
/// `EPERM` over the RLIMIT_MEMLOCK budget (modelled as 64 KiB).
///
/// # Errors
///
/// None.
pub fn mlock(k: &mut Kernel, addr: SimPtr, len: u64) -> ApiResult {
    k.charge_call_to(Subsystem::Heap);
    if len > 0x1_0000 {
        return Ok(errno_return(errno::EPERM));
    }
    if k.space.region_containing(addr).is_none() {
        return Ok(errno_return(errno::ENOMEM));
    }
    Ok(ApiReturn::ok(0))
}

/// `munlock(addr, len)`.
///
/// # Errors
///
/// None.
pub fn munlock(k: &mut Kernel, addr: SimPtr, _len: u64) -> ApiResult {
    k.charge_call_to(Subsystem::Heap);
    if k.space.region_containing(addr).is_none() {
        return Ok(errno_return(errno::ENOMEM));
    }
    Ok(ApiReturn::ok(0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_kernel::fs::OpenOptions;

    #[test]
    fn anonymous_mmap_roundtrip() {
        let mut k = Kernel::new();
        let r = mmap(&mut k, SimPtr::NULL, 0x2000, 3, 0x22, -1, 0).unwrap();
        assert!(r.value > 0);
        let p = SimPtr::new(r.value as u64);
        k.space.write_u32(p, 7).unwrap();
        assert_eq!(mprotect(&mut k, p, 0x2000, 1).unwrap().value, 0);
        assert!(k.space.write_u32(p, 8).is_err()); // now read-only
        assert_eq!(msync(&mut k, p, 0x2000, 4).unwrap().value, 0);
        assert_eq!(munmap(&mut k, p, 0x2000).unwrap().value, 0);
        assert_eq!(munmap(&mut k, p, 0x2000).unwrap().error, Some(errno::EINVAL));
    }

    #[test]
    fn mmap_validates_gracefully() {
        let mut k = Kernel::new();
        // Zero length.
        assert_eq!(
            mmap(&mut k, SimPtr::NULL, 0, 3, 0x22, -1, 0).unwrap().error,
            Some(errno::EINVAL)
        );
        // Bad prot bits.
        assert_eq!(
            mmap(&mut k, SimPtr::NULL, 0x1000, 0x99, 0x22, -1, 0).unwrap().error,
            Some(errno::EINVAL)
        );
        // Unaligned offset.
        assert_eq!(
            mmap(&mut k, SimPtr::NULL, 0x1000, 3, 0x22, -1, 17).unwrap().error,
            Some(errno::EINVAL)
        );
        // File-backed with a bad fd.
        assert_eq!(
            mmap(&mut k, SimPtr::NULL, 0x1000, 3, 0x02, 999, 0).unwrap().error,
            Some(errno::EBADF)
        );
    }

    #[test]
    fn file_backed_mmap_reads_contents() {
        let mut k = Kernel::new();
        k.fs.create_file("/tmp/m", b"mapped bytes".to_vec()).unwrap();
        let fd = k.fs.open("/tmp/m", OpenOptions::read_only()).unwrap() as i64;
        let r = mmap(&mut k, SimPtr::NULL, 12, 1, 0x02, fd, 0).unwrap();
        let p = SimPtr::new(r.value as u64);
        assert_eq!(k.space.read_bytes(p, 6).unwrap(), b"mapped");
        assert!(k.space.write_u8(p, 0).is_err()); // PROT_READ
    }

    #[test]
    fn fixed_mapping_collision() {
        let mut k = Kernel::new();
        let at = SimPtr::new(0x4000_0000);
        assert!(mmap(&mut k, at, 0x1000, 3, 0x32, -1, 0).unwrap().value > 0);
        assert_eq!(
            mmap(&mut k, at, 0x1000, 3, 0x32, -1, 0).unwrap().error,
            Some(errno::EINVAL)
        );
    }

    #[test]
    fn brk_and_sbrk() {
        let mut k = Kernel::new();
        let base = brk(&mut k, SimPtr::NULL).unwrap().value;
        assert_eq!(base, 0x0800_0000);
        assert_eq!(sbrk(&mut k, 0x1000).unwrap().value, base);
        assert_eq!(brk(&mut k, SimPtr::NULL).unwrap().value, base + 0x1000);
        // Absurd break: graceful ENOMEM.
        assert_eq!(
            brk(&mut k, SimPtr::new(u64::from(u32::MAX))).unwrap().error,
            Some(errno::ENOMEM)
        );
        assert_eq!(sbrk(&mut k, i64::MAX).unwrap().error, Some(errno::ENOMEM));
        assert_eq!(sbrk(&mut k, i64::MIN).unwrap().error, Some(errno::ENOMEM));
    }

    #[test]
    fn mlock_budget() {
        let mut k = Kernel::new();
        let p = k.alloc_user(0x1000, "lockme");
        assert_eq!(mlock(&mut k, p, 0x1000).unwrap().value, 0);
        assert_eq!(mlock(&mut k, p, 1 << 20).unwrap().error, Some(errno::EPERM));
        assert_eq!(
            mlock(&mut k, SimPtr::new(0x40), 8).unwrap().error,
            Some(errno::ENOMEM)
        );
        assert_eq!(munlock(&mut k, p, 0x1000).unwrap().value, 0);
    }

    #[test]
    fn mprotect_unmapped_is_enomem() {
        let mut k = Kernel::new();
        assert_eq!(
            mprotect(&mut k, SimPtr::new(0x30), 0x1000, 1).unwrap().error,
            Some(errno::ENOMEM)
        );
        assert_eq!(
            msync(&mut k, SimPtr::new(0x30), 0x1000, 4).unwrap().error,
            Some(errno::ENOMEM)
        );
        let p = k.alloc_user(64, "x");
        assert_eq!(msync(&mut k, p, 64, 5).unwrap().error, Some(errno::EINVAL));
    }
}
