//! File and directory access: `open`, the `stat` family, links, modes and
//! working directories — the paper's POSIX *File/Directory Access*
//! grouping.
//!
//! Path arguments are copied in by the kernel (`EFAULT` for wild
//! pointers), but the **`stat` family aborts**: glibc's `xstat` wrapper
//! translates between kernel and libc struct layouts by writing the
//! caller's buffer in user mode — the main source of Linux's (small)
//! system-call Abort rate in Table 1.

use sim_kernel::Subsystem;
use crate::{errno_return, signal};
use sim_core::addr::PrivilegeLevel;
use sim_core::{cstr, AccessKind, SimPtr};
use sim_kernel::fs::OpenOptions;
use sim_kernel::outcome::{ApiResult, ApiReturn};
use sim_kernel::Kernel;
use sim_libc::errno;

/// Reads a path argument the way the kernel does: copy-in with `EFAULT`
/// on fault (never a signal).
fn read_path(k: &Kernel, ptr: SimPtr) -> Result<String, ApiReturn> {
    match cstr::read_cstr(&k.space, ptr, PrivilegeLevel::User) {
        Ok(bytes) => Ok(String::from_utf8(bytes)
            .unwrap_or_else(|e| String::from_utf8_lossy(e.as_bytes()).into_owned())),
        Err(_) => Err(errno_return(errno::EFAULT)),
    }
}

macro_rules! path_arg {
    ($k:expr, $ptr:expr) => {
        match read_path($k, $ptr) {
            Ok(p) => p,
            Err(e) => return Ok(e),
        }
    };
}

/// `open(pathname, flags, mode)` — `O_RDONLY`(0) / `O_WRONLY`(1) /
/// `O_RDWR`(2), `O_CREAT`(0x40), `O_EXCL`(0x80), `O_TRUNC`(0x200),
/// `O_APPEND`(0x400).
///
/// # Errors
///
/// None; every hostile argument maps to an `errno`.
pub fn open(k: &mut Kernel, pathname: SimPtr, flags: i32, _mode: u32) -> ApiResult {
    k.charge_call_to(Subsystem::Fs);
    let path = path_arg!(k, pathname);
    let mut opts = match flags & 0x3 {
        0 => OpenOptions::read_only(),
        1 => OpenOptions::write_only(),
        2 => OpenOptions::read_write(),
        _ => return Ok(errno_return(errno::EINVAL)),
    };
    if flags & 0x40 != 0 {
        opts = opts.create(true);
    }
    if flags & 0x80 != 0 {
        opts = opts.create_new(true);
    }
    if flags & 0x200 != 0 {
        opts = opts.truncate(true);
    }
    if flags & 0x400 != 0 {
        opts = opts.append(true);
    }
    match k.fs.open(&path, opts) {
        Ok(fd) => Ok(ApiReturn::ok(fd as i64)),
        Err(e) => Ok(errno_return(errno::from_fs(e))),
    }
}

/// `creat(pathname, mode)` — `open(path, O_WRONLY|O_CREAT|O_TRUNC, mode)`.
///
/// # Errors
///
/// None.
pub fn creat(k: &mut Kernel, pathname: SimPtr, mode: u32) -> ApiResult {
    open(k, pathname, 0x1 | 0x40 | 0x200, mode)
}

/// Simulated `struct stat` size (a compact 32-byte layout: dev, ino, mode,
/// nlink, uid, gid, size, mtime — each 32-bit).
pub const STAT_SIZE: u64 = 32;

fn write_stat(
    k: &mut Kernel,
    buf: SimPtr,
    is_dir: bool,
    size: u64,
    ino: u64,
    mtime_ms: u64,
) -> Result<(), sim_core::Fault> {
    // glibc's xstat wrapper writes the libc-layout struct in USER mode —
    // this is where bad buffers abort instead of EFAULTing.
    let mode: u32 = if is_dir { 0o040_755 } else { 0o100_644 };
    let fields = [
        1u32,
        ino as u32,
        mode,
        1,
        1000,
        1000,
        size as u32,
        (mtime_ms / 1000) as u32,
    ];
    for (i, f) in fields.into_iter().enumerate() {
        k.space.write_u32(buf.offset(i as u64 * 4), f)?;
    }
    Ok(())
}

/// `stat(pathname, statbuf)`.
///
/// # Errors
///
/// A SIGSEGV abort when `statbuf` faults (glibc's user-mode struct
/// translation — the paper's main Linux syscall Abort source).
pub fn stat(k: &mut Kernel, pathname: SimPtr, statbuf: SimPtr) -> ApiResult {
    k.charge_call_to(Subsystem::Fs);
    let path = path_arg!(k, pathname);
    let st = match k.fs.stat(&path) {
        Ok(s) => s,
        Err(e) => return Ok(errno_return(errno::from_fs(e))),
    };
    write_stat(k, statbuf, st.is_dir, st.size, st.node_id, st.attrs.modified_ms)
        .map_err(signal)?;
    Ok(ApiReturn::ok(0))
}

/// `lstat(pathname, statbuf)` — no symlinks in the simulated filesystem:
/// identical to [`stat`] including the abort behaviour.
///
/// # Errors
///
/// Same conditions as [`stat`].
pub fn lstat(k: &mut Kernel, pathname: SimPtr, statbuf: SimPtr) -> ApiResult {
    stat(k, pathname, statbuf)
}

/// `fstat(fd, statbuf)`.
///
/// # Errors
///
/// Same abort conditions as [`stat`].
pub fn fstat(k: &mut Kernel, fd: i64, statbuf: SimPtr) -> ApiResult {
    k.charge_call_to(Subsystem::Fs);
    if (0..=2).contains(&fd) {
        write_stat(k, statbuf, false, 0, fd as u64, 0).map_err(signal)?;
        return Ok(ApiReturn::ok(0));
    }
    let st = match k.fs.fstat(fd as u64) {
        Ok(s) => s,
        Err(e) => return Ok(errno_return(errno::from_fs(e))),
    };
    write_stat(k, statbuf, st.is_dir, st.size, st.node_id, st.attrs.modified_ms)
        .map_err(signal)?;
    Ok(ApiReturn::ok(0))
}

/// `access(pathname, mode)` — `F_OK`(0), `R_OK`(4), `W_OK`(2), `X_OK`(1).
///
/// # Errors
///
/// None.
pub fn access(k: &mut Kernel, pathname: SimPtr, mode: i32) -> ApiResult {
    k.charge_call_to(Subsystem::Fs);
    let path = path_arg!(k, pathname);
    if !(0..=7).contains(&mode) {
        return Ok(errno_return(errno::EINVAL));
    }
    match k.fs.stat(&path) {
        Ok(st) => {
            if mode & 2 != 0 && st.attrs.readonly {
                return Ok(errno_return(errno::EACCES));
            }
            Ok(ApiReturn::ok(0))
        }
        Err(e) => Ok(errno_return(errno::from_fs(e))),
    }
}

/// `mkdir(pathname, mode)`.
///
/// # Errors
///
/// None.
pub fn mkdir(k: &mut Kernel, pathname: SimPtr, _mode: u32) -> ApiResult {
    k.charge_call_to(Subsystem::Fs);
    let path = path_arg!(k, pathname);
    match k.fs.mkdir(&path) {
        Ok(()) => Ok(ApiReturn::ok(0)),
        Err(e) => Ok(errno_return(errno::from_fs(e))),
    }
}

/// `rmdir(pathname)`.
///
/// # Errors
///
/// None.
pub fn rmdir(k: &mut Kernel, pathname: SimPtr) -> ApiResult {
    k.charge_call_to(Subsystem::Fs);
    let path = path_arg!(k, pathname);
    match k.fs.rmdir(&path) {
        Ok(()) => Ok(ApiReturn::ok(0)),
        Err(e) => Ok(errno_return(errno::from_fs(e))),
    }
}

/// `unlink(pathname)`.
///
/// # Errors
///
/// None.
pub fn unlink(k: &mut Kernel, pathname: SimPtr) -> ApiResult {
    k.charge_call_to(Subsystem::Fs);
    let path = path_arg!(k, pathname);
    match k.fs.unlink(&path) {
        Ok(()) => Ok(ApiReturn::ok(0)),
        Err(e) => Ok(errno_return(errno::from_fs(e))),
    }
}

/// `rename(oldpath, newpath)`.
///
/// # Errors
///
/// None.
pub fn rename(k: &mut Kernel, oldpath: SimPtr, newpath: SimPtr) -> ApiResult {
    k.charge_call_to(Subsystem::Fs);
    let from = path_arg!(k, oldpath);
    let to = path_arg!(k, newpath);
    match k.fs.rename(&from, &to) {
        Ok(()) => Ok(ApiReturn::ok(0)),
        Err(e) => Ok(errno_return(errno::from_fs(e))),
    }
}

/// `link(oldpath, newpath)` — the simulated filesystem has no hard links;
/// modelled as a copy (identical robustness surface: two path arguments).
///
/// # Errors
///
/// None.
pub fn link(k: &mut Kernel, oldpath: SimPtr, newpath: SimPtr) -> ApiResult {
    k.charge_call_to(Subsystem::Fs);
    let from = path_arg!(k, oldpath);
    let to = path_arg!(k, newpath);
    let ofd = match k.fs.open(&from, OpenOptions::read_only()) {
        Ok(f) => f,
        Err(e) => return Ok(errno_return(errno::from_fs(e))),
    };
    let size = k.fs.size_of(ofd).unwrap_or(0);
    let mut content = vec![0u8; size as usize];
    let _ = k.fs.read(ofd, &mut content);
    let _ = k.fs.close(ofd);
    match k.fs.create_file(&to, content) {
        Ok(()) => Ok(ApiReturn::ok(0)),
        Err(e) => Ok(errno_return(errno::from_fs(e))),
    }
}

/// `symlink(target, linkpath)` — stored as a small regular file holding
/// the target (resolution is out of scope; the robustness surface is the
/// two pointers).
///
/// # Errors
///
/// None.
pub fn symlink(k: &mut Kernel, target: SimPtr, linkpath: SimPtr) -> ApiResult {
    k.charge_call_to(Subsystem::Fs);
    let tgt = path_arg!(k, target);
    let lnk = path_arg!(k, linkpath);
    match k.fs.create_file(&lnk, tgt.into_bytes()) {
        Ok(()) => Ok(ApiReturn::ok(0)),
        Err(e) => Ok(errno_return(errno::from_fs(e))),
    }
}

/// `chmod(pathname, mode)`.
///
/// # Errors
///
/// None.
pub fn chmod(k: &mut Kernel, pathname: SimPtr, mode: u32) -> ApiResult {
    k.charge_call_to(Subsystem::Fs);
    let path = path_arg!(k, pathname);
    match k.fs.set_readonly(&path, mode & 0o200 == 0) {
        Ok(()) => Ok(ApiReturn::ok(0)),
        Err(e) => Ok(errno_return(errno::from_fs(e))),
    }
}

/// `fchmod(fd, mode)`.
///
/// # Errors
///
/// None.
pub fn fchmod(k: &mut Kernel, fd: i64, _mode: u32) -> ApiResult {
    k.charge_call_to(Subsystem::Fs);
    if fd >= 3 && k.fs.is_open(fd as u64) {
        Ok(ApiReturn::ok(0))
    } else {
        Ok(errno_return(errno::EBADF))
    }
}

/// `chown(pathname, owner, group)` — the simulated machine runs as a
/// non-root user: changing to another uid is `EPERM`, chowning to your own
/// uid succeeds.
///
/// # Errors
///
/// None.
pub fn chown(k: &mut Kernel, pathname: SimPtr, owner: u32, _group: u32) -> ApiResult {
    k.charge_call_to(Subsystem::Fs);
    let path = path_arg!(k, pathname);
    if !k.fs.exists(&path) {
        return Ok(errno_return(errno::ENOENT));
    }
    if owner != 1000 && owner != u32::MAX {
        return Ok(errno_return(errno::EPERM));
    }
    Ok(ApiReturn::ok(0))
}

/// `chdir(path)`.
///
/// # Errors
///
/// None.
pub fn chdir(k: &mut Kernel, pathname: SimPtr) -> ApiResult {
    k.charge_call_to(Subsystem::Fs);
    let path = path_arg!(k, pathname);
    match k.fs.stat(&path) {
        Ok(st) if st.is_dir => {
            let _ = k.env.set("__POSIX_CWD", &path);
            Ok(ApiReturn::ok(0))
        }
        Ok(_) => Ok(errno_return(errno::ENOTDIR)),
        Err(e) => Ok(errno_return(errno::from_fs(e))),
    }
}

/// `getcwd(buf, size)` — glibc copies the path into `buf` in user mode:
/// a wild buffer aborts (another glibc-glue Abort source).
///
/// # Errors
///
/// A SIGSEGV abort when the buffer faults.
pub fn getcwd(k: &mut Kernel, buf: SimPtr, size: u64) -> ApiResult {
    k.charge_call_to(Subsystem::Fs);
    let cwd = k.env.get("__POSIX_CWD").unwrap_or("/home/ballista").to_owned();
    if buf.is_null() {
        return Ok(errno_return(errno::EINVAL));
    }
    if size < cwd.len() as u64 + 1 {
        return Ok(errno_return(errno::ERANGE));
    }
    cstr::write_cstr(&mut k.space, buf, &cwd, PrivilegeLevel::User).map_err(signal)?;
    Ok(ApiReturn::ok(buf.addr() as i64))
}

/// `truncate(pathname, length)`.
///
/// # Errors
///
/// None.
pub fn truncate(k: &mut Kernel, pathname: SimPtr, length: i64) -> ApiResult {
    k.charge_call_to(Subsystem::Fs);
    let path = path_arg!(k, pathname);
    if length < 0 {
        return Ok(errno_return(errno::EINVAL));
    }
    match k.fs.open(&path, OpenOptions::write_only()) {
        Ok(fd) => {
            let size = k.fs.size_of(fd).unwrap_or(0);
            if (length as u64) < size {
                // Rewrite the prefix.
                let mut content = vec![0u8; length as usize];
                let rfd = k.fs.open(&path, OpenOptions::read_only()).expect("just opened");
                let _ = k.fs.read(rfd, &mut content);
                let _ = k.fs.close(rfd);
                let _ = k.fs.close(fd);
                let _ = k.fs.unlink(&path);
                let _ = k.fs.create_file(&path, content);
            } else {
                let _ = k.fs.close(fd);
            }
            Ok(ApiReturn::ok(0))
        }
        Err(e) => Ok(errno_return(errno::from_fs(e))),
    }
}

/// `ftruncate(fd, length)`.
///
/// # Errors
///
/// None.
pub fn ftruncate(k: &mut Kernel, fd: i64, length: i64) -> ApiResult {
    k.charge_call_to(Subsystem::Fs);
    if length < 0 {
        return Ok(errno_return(errno::EINVAL));
    }
    if fd >= 3 && k.fs.is_open(fd as u64) {
        Ok(ApiReturn::ok(0))
    } else {
        Ok(errno_return(errno::EBADF))
    }
}

/// `umask(mask)` — returns the previous mask; total.
///
/// # Errors
///
/// None.
pub fn umask(k: &mut Kernel, mask: u32) -> ApiResult {
    k.charge_call_to(Subsystem::Fs);
    let prev = k.scratch.insert("posix.umask".to_owned(), u64::from(mask & 0o777));
    Ok(ApiReturn::ok(prev.unwrap_or(0o022) as i64))
}

/// `utime(pathname, times)` — NULL `times` (meaning "now") is legal; the
/// kernel copies the struct in (`EFAULT` when bad).
///
/// # Errors
///
/// None.
pub fn utime(k: &mut Kernel, pathname: SimPtr, times: SimPtr) -> ApiResult {
    k.charge_call_to(Subsystem::Fs);
    let path = path_arg!(k, pathname);
    if !k.fs.exists(&path) {
        return Ok(errno_return(errno::ENOENT));
    }
    if !times.is_null()
        && k.space
            .check_access(times, 8, 4, AccessKind::Read, PrivilegeLevel::User)
            .is_err()
    {
        return Ok(errno_return(errno::EFAULT));
    }
    Ok(ApiReturn::ok(0))
}

/// `fchown(fd, owner, group)`.
///
/// # Errors
///
/// None.
pub fn fchown(k: &mut Kernel, fd: i64, owner: u32, _group: u32) -> ApiResult {
    k.charge_call_to(Subsystem::Fs);
    if fd < 3 || !k.fs.is_open(fd as u64) {
        return Ok(errno_return(errno::EBADF));
    }
    if owner != 1000 && owner != u32::MAX {
        return Ok(errno_return(errno::EPERM));
    }
    Ok(ApiReturn::ok(0))
}

/// `lchown(pathname, owner, group)` — no symlink distinction in the
/// simulated filesystem.
///
/// # Errors
///
/// None.
pub fn lchown(k: &mut Kernel, pathname: SimPtr, owner: u32, group: u32) -> ApiResult {
    chown(k, pathname, owner, group)
}

/// `mknod(pathname, mode, dev)` — regular files only for unprivileged
/// callers; device nodes are `EPERM`.
///
/// # Errors
///
/// None.
pub fn mknod(k: &mut Kernel, pathname: SimPtr, mode: u32, _dev: u64) -> ApiResult {
    k.charge_call_to(Subsystem::Fs);
    let path = path_arg!(k, pathname);
    const S_IFREG: u32 = 0o100_000;
    const S_IFMT: u32 = 0o170_000;
    if mode & S_IFMT != S_IFREG && mode & S_IFMT != 0 {
        return Ok(errno_return(errno::EPERM));
    }
    match k.fs.create_file(&path, Vec::new()) {
        Ok(()) => Ok(ApiReturn::ok(0)),
        Err(e) => Ok(errno_return(errno::from_fs(e))),
    }
}

/// `statfs(path, buf)` — kernel copy-out of a 64-byte block (`EFAULT`
/// for wild buffers, unlike the glibc-glue `stat` family).
///
/// # Errors
///
/// None.
pub fn statfs(k: &mut Kernel, pathname: SimPtr, buf: SimPtr) -> ApiResult {
    k.charge_call_to(Subsystem::Fs);
    let path = path_arg!(k, pathname);
    if !k.fs.exists(&path) {
        return Ok(errno_return(errno::ENOENT));
    }
    if k
        .space
        .check_access(buf, 64, 4, AccessKind::Write, PrivilegeLevel::User)
        .is_err()
    {
        return Ok(errno_return(errno::EFAULT));
    }
    for (i, v) in [0xEF53u32, 4096, 0x10_0000, 0x8_0000].into_iter().enumerate() {
        let _ = k.space.write_u32(buf.offset(i as u64 * 4), v);
    }
    Ok(ApiReturn::ok(0))
}

/// `readlink(pathname, buf, bufsiz)` — glibc copies the target into the
/// caller's buffer in user mode (abort on wild buffers).
///
/// # Errors
///
/// A SIGSEGV abort when the destination buffer faults.
pub fn readlink(k: &mut Kernel, pathname: SimPtr, buf: SimPtr, bufsiz: u64) -> ApiResult {
    k.charge_call_to(Subsystem::Fs);
    let path = path_arg!(k, pathname);
    // Symlinks are stored as small files holding their target (see
    // `symlink`); everything else is EINVAL as on real Linux.
    let ofd = match k.fs.open(&path, OpenOptions::read_only()) {
        Ok(f) => f,
        Err(e) => return Ok(errno_return(errno::from_fs(e))),
    };
    let mut target = vec![0u8; 256];
    let n = k.fs.read(ofd, &mut target).unwrap_or(0);
    let _ = k.fs.close(ofd);
    if n == 0 {
        return Ok(errno_return(errno::EINVAL));
    }
    let copy = n.min(bufsiz as usize);
    k.space
        .write_bytes(buf, &target[..copy])
        .map_err(signal)?;
    Ok(ApiReturn::ok(copy as i64))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_kernel::ApiAbort;

    fn put(k: &mut Kernel, s: &str) -> SimPtr {
        let p = k.alloc_user(s.len() as u64 + 1, "path");
        cstr::write_cstr(&mut k.space, p, s, PrivilegeLevel::User).unwrap();
        p
    }

    #[test]
    fn open_close_flags() {
        let mut k = Kernel::new();
        let path = put(&mut k, "/tmp/file");
        // O_RDONLY on missing file: ENOENT.
        assert_eq!(open(&mut k, path, 0, 0).unwrap().error, Some(errno::ENOENT));
        // O_CREAT|O_RDWR.
        let fd = open(&mut k, path, 0x42, 0o644).unwrap().value;
        assert!(fd >= 3);
        // O_EXCL on existing: EEXIST.
        assert_eq!(
            open(&mut k, path, 0x42 | 0x80, 0).unwrap().error,
            Some(errno::EEXIST)
        );
        // creat truncates.
        assert!(creat(&mut k, path, 0o644).unwrap().value >= 3);
        // Wild path: EFAULT, not a signal.
        assert_eq!(
            open(&mut k, SimPtr::NULL, 0, 0).unwrap().error,
            Some(errno::EFAULT)
        );
    }

    #[test]
    fn stat_family_aborts_on_bad_buffer() {
        let mut k = Kernel::new();
        let path = put(&mut k, "/etc/motd");
        // Valid buffer works.
        let buf = k.alloc_user(STAT_SIZE, "stat");
        assert_eq!(stat(&mut k, path, buf).unwrap().value, 0);
        let mode = k.space.read_u32(buf.offset(8)).unwrap();
        assert_eq!(mode & 0o170_000, 0o100_000); // regular file
        // Wild buffer: SIGSEGV (glibc xstat glue), NOT EFAULT.
        let err = stat(&mut k, path, SimPtr::NULL).unwrap_err();
        assert!(matches!(err, ApiAbort::Signal { signo: 11, .. }));
        assert!(lstat(&mut k, path, SimPtr::NULL).is_err());
        // fstat through an open fd.
        let fd = k
            .fs
            .open("/etc/motd", OpenOptions::read_only())
            .unwrap() as i64;
        assert_eq!(fstat(&mut k, fd, buf).unwrap().value, 0);
        assert!(fstat(&mut k, fd, SimPtr::new(0x10)).is_err());
        assert_eq!(fstat(&mut k, 999, buf).unwrap().error, Some(errno::EBADF));
        // Missing file: ENOENT with a fine buffer.
        let missing = put(&mut k, "/no/such");
        assert_eq!(stat(&mut k, missing, buf).unwrap().error, Some(errno::ENOENT));
    }

    #[test]
    fn directory_lifecycle() {
        let mut k = Kernel::new();
        let d = put(&mut k, "/tmp/dir");
        assert_eq!(mkdir(&mut k, d, 0o755).unwrap().value, 0);
        assert_eq!(mkdir(&mut k, d, 0o755).unwrap().error, Some(errno::EEXIST));
        let f = put(&mut k, "/tmp/dir/file");
        creat(&mut k, f, 0o644).unwrap();
        assert_eq!(rmdir(&mut k, d).unwrap().error, Some(errno::ENOTEMPTY));
        assert_eq!(unlink(&mut k, f).unwrap().value, 0);
        assert_eq!(rmdir(&mut k, d).unwrap().value, 0);
    }

    #[test]
    fn rename_link_symlink() {
        let mut k = Kernel::new();
        let a = put(&mut k, "/tmp/a");
        let b = put(&mut k, "/tmp/b");
        let c = put(&mut k, "/tmp/c");
        creat(&mut k, a, 0o644).unwrap();
        assert_eq!(link(&mut k, a, b).unwrap().value, 0);
        assert!(k.fs.exists("/tmp/b"));
        assert_eq!(rename(&mut k, b, c).unwrap().value, 0);
        assert!(!k.fs.exists("/tmp/b") && k.fs.exists("/tmp/c"));
        let s = put(&mut k, "/tmp/s");
        assert_eq!(symlink(&mut k, a, s).unwrap().value, 0);
        assert!(k.fs.exists("/tmp/s"));
    }

    #[test]
    fn access_and_chmod() {
        let mut k = Kernel::new();
        let p = put(&mut k, "/etc/motd");
        assert_eq!(access(&mut k, p, 0).unwrap().value, 0); // F_OK
        assert_eq!(access(&mut k, p, 4).unwrap().value, 0); // R_OK
        assert_eq!(access(&mut k, p, 99).unwrap().error, Some(errno::EINVAL));
        chmod(&mut k, p, 0o444).unwrap(); // remove write bit
        assert_eq!(access(&mut k, p, 2).unwrap().error, Some(errno::EACCES));
        chmod(&mut k, p, 0o644).unwrap();
        assert_eq!(access(&mut k, p, 2).unwrap().value, 0);
        let ghost = put(&mut k, "/ghost");
        assert_eq!(access(&mut k, ghost, 0).unwrap().error, Some(errno::ENOENT));
        assert_eq!(chown(&mut k, p, 0, 0).unwrap().error, Some(errno::EPERM));
        assert_eq!(chown(&mut k, p, 1000, 1000).unwrap().value, 0);
    }

    #[test]
    fn cwd_protocol() {
        let mut k = Kernel::new();
        let d = put(&mut k, "/tmp");
        assert_eq!(chdir(&mut k, d).unwrap().value, 0);
        let buf = k.alloc_user(64, "cwd");
        let r = getcwd(&mut k, buf, 64).unwrap();
        assert_eq!(r.value as u64, buf.addr());
        assert_eq!(
            cstr::read_cstr(&k.space, buf, PrivilegeLevel::User).unwrap(),
            b"/tmp"
        );
        // Small buffer: ERANGE. NULL: EINVAL. Wild: SIGSEGV.
        assert_eq!(getcwd(&mut k, buf, 2).unwrap().error, Some(errno::ERANGE));
        assert_eq!(getcwd(&mut k, SimPtr::NULL, 64).unwrap().error, Some(errno::EINVAL));
        assert!(getcwd(&mut k, SimPtr::new(0x30), 64).is_err());
        // chdir to a file: ENOTDIR.
        let f = put(&mut k, "/etc/motd");
        assert_eq!(chdir(&mut k, f).unwrap().error, Some(errno::ENOTDIR));
    }

    #[test]
    fn extended_fs_calls() {
        let mut k = Kernel::new();
        let p = put(&mut k, "/etc/motd");
        // fchown / lchown follow the chown privilege rules.
        let fd = k.fs.open("/etc/motd", OpenOptions::read_only()).unwrap() as i64;
        assert_eq!(fchown(&mut k, fd, 1000, 1000).unwrap().value, 0);
        assert_eq!(fchown(&mut k, fd, 0, 0).unwrap().error, Some(errno::EPERM));
        assert_eq!(fchown(&mut k, 999, 1000, 1000).unwrap().error, Some(errno::EBADF));
        assert_eq!(lchown(&mut k, p, 1000, 1000).unwrap().value, 0);
        // mknod: regular files fine, devices EPERM.
        let n = put(&mut k, "/tmp/node");
        assert_eq!(mknod(&mut k, n, 0o100_644, 0).unwrap().value, 0);
        assert!(k.fs.exists("/tmp/node"));
        let d = put(&mut k, "/tmp/dev");
        assert_eq!(mknod(&mut k, d, 0o020_644, 0x0101).unwrap().error, Some(errno::EPERM));
        // statfs: kernel copy-out (EFAULT for wild buffers).
        let buf = k.alloc_user(64, "statfs");
        assert_eq!(statfs(&mut k, p, buf).unwrap().value, 0);
        assert_eq!(k.space.read_u32(buf).unwrap(), 0xEF53);
        assert_eq!(statfs(&mut k, p, SimPtr::NULL).unwrap().error, Some(errno::EFAULT));
        // readlink: reads a symlink target; glibc user-copy aborts on wild
        // buffers.
        let tgt = put(&mut k, "/etc/motd");
        let lnk = put(&mut k, "/tmp/lnk");
        symlink(&mut k, tgt, lnk).unwrap();
        let out = k.alloc_user(64, "rl");
        let r = readlink(&mut k, lnk, out, 64).unwrap();
        assert!(r.value > 0);
        assert!(readlink(&mut k, lnk, SimPtr::new(0x30), 64).is_err());
        let ghost = put(&mut k, "/tmp/ghost");
        assert_eq!(readlink(&mut k, ghost, out, 64).unwrap().error, Some(errno::ENOENT));
    }

    #[test]
    fn truncate_and_misc() {
        let mut k = Kernel::new();
        k.fs.create_file("/tmp/t", b"0123456789".to_vec()).unwrap();
        let p = put(&mut k, "/tmp/t");
        assert_eq!(truncate(&mut k, p, 4).unwrap().value, 0);
        assert_eq!(k.fs.stat("/tmp/t").unwrap().size, 4);
        assert_eq!(truncate(&mut k, p, -1).unwrap().error, Some(errno::EINVAL));
        let fd = k.fs.open("/tmp/t", OpenOptions::write_only()).unwrap() as i64;
        assert_eq!(ftruncate(&mut k, fd, 2).unwrap().value, 0);
        assert_eq!(ftruncate(&mut k, 999, 2).unwrap().error, Some(errno::EBADF));
        assert_eq!(fchmod(&mut k, fd, 0o600).unwrap().value, 0);
        assert_eq!(umask(&mut k, 0o077).unwrap().value, 0o022);
        assert_eq!(umask(&mut k, 0o022).unwrap().value, 0o077);
        // utime with NULL times is legal; wild times is EFAULT.
        assert_eq!(utime(&mut k, p, SimPtr::NULL).unwrap().value, 0);
        assert_eq!(
            utime(&mut k, p, SimPtr::new(0x30)).unwrap().error,
            Some(errno::EFAULT)
        );
    }
}
