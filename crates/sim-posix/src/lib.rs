//! # sim-posix — the simulated POSIX/Linux API
//!
//! Implements the 91 POSIX system calls of the paper's Linux catalog
//! (RedHat 6.0, kernel 2.2.5) over the simulated kernel.
//!
//! The Linux robustness model, from the paper's numbers: system calls are
//! *mostly graceful* — the kernel validates user pointers at the
//! copy-in/copy-out boundary and returns `EFAULT`, so Linux has the lowest
//! system-call Abort rate in Table 1 and zero crashes. The Aborts that do
//! exist come from **glibc wrapper glue** that touches caller memory in
//! user mode before trapping: the `stat` family's struct-version
//! translation, `sigaction`'s struct copy, `select`'s `fd_set` handling,
//! and `getcwd`'s user-mode copy. Those are modelled explicitly (see
//! [`fsops`] and [`procops`]).
//!
//! Restart failures are the blocking calls: `read` on an empty pipe,
//! `waitpid` on a live child without `WNOHANG`, `pause`, and blocking
//! `fcntl` locks.
//!
//! Entry points follow the same convention as the other personalities:
//! `fn call(k: &mut Kernel, raw args…) -> ApiResult`, with errors reported
//! as `-1` + `errno` and aborts as POSIX signals.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod envops;
pub mod fd;
pub mod fsops;
pub mod memops;
pub mod procops;

use sim_core::fault::Fault;
use sim_kernel::outcome::{ApiAbort, ApiReturn};

/// Converts a user-mode fault into the signal the paper's harness
/// monitored (`SIGSEGV`/`SIGBUS`/`SIGFPE`).
#[must_use]
pub fn signal(fault: Fault) -> ApiAbort {
    ApiAbort::signal_from_fault(fault)
}

/// The POSIX error-return convention: `-1` with `errno`.
#[must_use]
pub fn errno_return(errno: u32) -> ApiReturn {
    ApiReturn::err(-1, errno)
}
