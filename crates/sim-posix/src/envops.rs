//! Process environment: identity, limits, time-of-day and `uname` — the
//! paper's POSIX *Process Environment* grouping.

use crate::{errno_return, signal};
use sim_core::addr::PrivilegeLevel;
use sim_core::{cstr, AccessKind, SimPtr};
use sim_kernel::outcome::{ApiResult, ApiReturn};
use sim_kernel::Kernel;
use sim_libc::errno;

/// The unprivileged uid/gid the simulated test task runs as.
pub const TEST_UID: u32 = 1000;

/// `getuid()` / `geteuid()` share this result.
///
/// # Errors
///
/// None.
pub fn getuid(k: &mut Kernel) -> ApiResult {
    k.charge_call();
    Ok(ApiReturn::ok(i64::from(TEST_UID)))
}

/// `geteuid()`.
///
/// # Errors
///
/// None.
pub fn geteuid(k: &mut Kernel) -> ApiResult {
    getuid(k)
}

/// `getgid()`.
///
/// # Errors
///
/// None.
pub fn getgid(k: &mut Kernel) -> ApiResult {
    k.charge_call();
    Ok(ApiReturn::ok(i64::from(TEST_UID)))
}

/// `getegid()`.
///
/// # Errors
///
/// None.
pub fn getegid(k: &mut Kernel) -> ApiResult {
    getgid(k)
}

/// `setuid(uid)` — unprivileged: only the current uid is permitted.
///
/// # Errors
///
/// None.
pub fn setuid(k: &mut Kernel, uid: i64) -> ApiResult {
    k.charge_call();
    if uid == i64::from(TEST_UID) {
        Ok(ApiReturn::ok(0))
    } else {
        Ok(errno_return(errno::EPERM))
    }
}

/// `setgid(gid)`.
///
/// # Errors
///
/// None.
pub fn setgid(k: &mut Kernel, gid: i64) -> ApiResult {
    k.charge_call();
    if gid == i64::from(TEST_UID) {
        Ok(ApiReturn::ok(0))
    } else {
        Ok(errno_return(errno::EPERM))
    }
}

/// `getgroups(size, list)` — size 0 queries the count; the kernel
/// copy-out makes wild lists `EFAULT`.
///
/// # Errors
///
/// None.
pub fn getgroups(k: &mut Kernel, size: i32, list: SimPtr) -> ApiResult {
    k.charge_call();
    if size < 0 {
        return Ok(errno_return(errno::EINVAL));
    }
    if size == 0 {
        return Ok(ApiReturn::ok(1));
    }
    if k
        .space
        .check_access(list, 4, 4, AccessKind::Write, PrivilegeLevel::User)
        .is_err()
    {
        return Ok(errno_return(errno::EFAULT));
    }
    let _ = k.space.write_u32(list, TEST_UID);
    Ok(ApiReturn::ok(1))
}

/// `getrlimit(resource, rlim)` — kernel copy-out (`EFAULT` when bad).
///
/// # Errors
///
/// None.
pub fn getrlimit(k: &mut Kernel, resource: i32, rlim: SimPtr) -> ApiResult {
    k.charge_call();
    if !(0..=10).contains(&resource) {
        return Ok(errno_return(errno::EINVAL));
    }
    if k
        .space
        .check_access(rlim, 8, 4, AccessKind::Write, PrivilegeLevel::User)
        .is_err()
    {
        return Ok(errno_return(errno::EFAULT));
    }
    let _ = k.space.write_u32(rlim, u32::MAX); // soft: RLIM_INFINITY
    let _ = k.space.write_u32(rlim.offset(4), u32::MAX); // hard
    Ok(ApiReturn::ok(0))
}

/// `setrlimit(resource, rlim)` — raising the hard limit unprivileged is
/// `EPERM`.
///
/// # Errors
///
/// None.
pub fn setrlimit(k: &mut Kernel, resource: i32, rlim: SimPtr) -> ApiResult {
    k.charge_call();
    if !(0..=10).contains(&resource) {
        return Ok(errno_return(errno::EINVAL));
    }
    if k
        .space
        .check_access(rlim, 8, 4, AccessKind::Read, PrivilegeLevel::User)
        .is_err()
    {
        return Ok(errno_return(errno::EFAULT));
    }
    let soft = k.space.read_u32(rlim).unwrap_or(0);
    let hard = k.space.read_u32(rlim.offset(4)).unwrap_or(0);
    if soft > hard {
        return Ok(errno_return(errno::EINVAL));
    }
    Ok(ApiReturn::ok(0))
}

/// `getrusage(who, usage)` — `RUSAGE_SELF`(0) / `RUSAGE_CHILDREN`(−1).
///
/// # Errors
///
/// None.
pub fn getrusage(k: &mut Kernel, who: i32, usage: SimPtr) -> ApiResult {
    k.charge_call();
    if who != 0 && who != -1 {
        return Ok(errno_return(errno::EINVAL));
    }
    // A 72-byte rusage block, kernel copy-out.
    if k
        .space
        .check_access(usage, 72, 4, AccessKind::Write, PrivilegeLevel::User)
        .is_err()
    {
        return Ok(errno_return(errno::EFAULT));
    }
    let _ = k.space.write_u32(usage, (k.clock.tick_count_ms() / 1000) as u32);
    Ok(ApiReturn::ok(0))
}

/// `gettimeofday(tv, tz)` — both pointers may be NULL; kernel copy-out.
///
/// # Errors
///
/// None.
pub fn gettimeofday(k: &mut Kernel, tv: SimPtr, tz: SimPtr) -> ApiResult {
    k.charge_call();
    if !tv.is_null() {
        if k
            .space
            .check_access(tv, 8, 4, AccessKind::Write, PrivilegeLevel::User)
            .is_err()
        {
            return Ok(errno_return(errno::EFAULT));
        }
        let _ = k.space.write_u32(tv, k.clock.unix_secs() as u32);
        let _ = k
            .space
            .write_u32(tv.offset(4), (k.clock.tick_count_ms() % 1000 * 1000) as u32);
    }
    if !tz.is_null() {
        if k
            .space
            .check_access(tz, 8, 4, AccessKind::Write, PrivilegeLevel::User)
            .is_err()
        {
            return Ok(errno_return(errno::EFAULT));
        }
        let _ = k.space.write_u32(tz, 0);
        let _ = k.space.write_u32(tz.offset(4), 0);
    }
    Ok(ApiReturn::ok(0))
}

/// `times(buf)` — returns the tick count; the struct copy-out is kernel
/// side (`EFAULT` when bad); NULL is tolerated by Linux.
///
/// # Errors
///
/// None.
pub fn times(k: &mut Kernel, buf: SimPtr) -> ApiResult {
    k.charge_call();
    let ticks = k.clock.tick_count_ms() / 10; // 100 Hz clock ticks
    if !buf.is_null() {
        if k
            .space
            .check_access(buf, 16, 4, AccessKind::Write, PrivilegeLevel::User)
            .is_err()
        {
            return Ok(errno_return(errno::EFAULT));
        }
        for i in 0..4u64 {
            let _ = k.space.write_u32(buf.offset(i * 4), (ticks / 4) as u32);
        }
    }
    Ok(ApiReturn::ok(ticks as i64))
}

/// `uname(buf)` — glibc passes the buffer straight to the kernel:
/// `EFAULT` when bad.
///
/// # Errors
///
/// None.
pub fn uname(k: &mut Kernel, buf: SimPtr) -> ApiResult {
    k.charge_call();
    // 5 fields × 65 bytes.
    if k
        .space
        .check_access(buf, 325, 1, AccessKind::Write, PrivilegeLevel::User)
        .is_err()
    {
        return Ok(errno_return(errno::EFAULT));
    }
    for (i, field) in ["Linux", "testbed", "2.2.5", "#1 SMP", "i686"].iter().enumerate() {
        let _ = cstr::write_cstr(
            &mut k.space,
            buf.offset(i as u64 * 65),
            field,
            PrivilegeLevel::User,
        );
    }
    Ok(ApiReturn::ok(0))
}

/// `sysconf(name)` — a few well-known names; unknown names are `EINVAL`
/// with −1 (the documented protocol).
///
/// # Errors
///
/// None.
pub fn sysconf(k: &mut Kernel, name: i32) -> ApiResult {
    k.charge_call();
    let value = match name {
        0 => 1024,        // _SC_ARG_MAX-ish
        1 => 999,         // _SC_CHILD_MAX
        2 => 100,         // _SC_CLK_TCK
        4 => 256,         // _SC_OPEN_MAX
        30 => 0x1000,     // _SC_PAGESIZE
        _ => return Ok(ApiReturn::err(-1, errno::EINVAL)),
    };
    Ok(ApiReturn::ok(value))
}

/// `getenv(name)` — strictly a C-library call, but the paper groups it
/// with Process Environment; glibc scans `environ` comparing strings in
/// user mode, so a wild name pointer aborts.
///
/// # Errors
///
/// A SIGSEGV abort when `name` is unreadable.
pub fn getenv(k: &mut Kernel, name: SimPtr) -> ApiResult {
    k.charge_call();
    let bytes = cstr::read_cstr(&k.space, name, PrivilegeLevel::User).map_err(signal)?;
    let key = String::from_utf8_lossy(&bytes).into_owned();
    match k.env.get(&key) {
        Ok(v) => {
            let value = v.to_owned();
            let p = k.alloc_user(value.len() as u64 + 1, "getenv");
            let _ = cstr::write_cstr(&mut k.space, p, &value, PrivilegeLevel::User);
            Ok(ApiReturn::ok(p.addr() as i64))
        }
        Err(_) => Ok(ApiReturn::ok(0)),
    }
}

/// `putenv(string)` — glibc stores the caller's pointer after scanning
/// for `=` in user mode.
///
/// # Errors
///
/// A SIGSEGV abort when the string is unreadable.
pub fn putenv(k: &mut Kernel, string: SimPtr) -> ApiResult {
    k.charge_call();
    let bytes = cstr::read_cstr(&k.space, string, PrivilegeLevel::User).map_err(signal)?;
    let s = String::from_utf8_lossy(&bytes).into_owned();
    match s.split_once('=') {
        Some((name, value)) => match k.env.set(name, value) {
            Ok(()) => Ok(ApiReturn::ok(0)),
            Err(_) => Ok(errno_return(errno::EINVAL)),
        },
        None => {
            let _ = k.env.unset(&s);
            Ok(ApiReturn::ok(0))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_calls() {
        let mut k = Kernel::new();
        assert_eq!(getuid(&mut k).unwrap().value, 1000);
        assert_eq!(geteuid(&mut k).unwrap().value, 1000);
        assert_eq!(getgid(&mut k).unwrap().value, 1000);
        assert_eq!(getegid(&mut k).unwrap().value, 1000);
        assert_eq!(setuid(&mut k, 1000).unwrap().value, 0);
        assert_eq!(setuid(&mut k, 0).unwrap().error, Some(errno::EPERM));
        assert_eq!(setgid(&mut k, i64::from(u32::MAX)).unwrap().error, Some(errno::EPERM));
    }

    #[test]
    fn groups_and_limits() {
        let mut k = Kernel::new();
        assert_eq!(getgroups(&mut k, 0, SimPtr::NULL).unwrap().value, 1);
        assert_eq!(
            getgroups(&mut k, 4, SimPtr::NULL).unwrap().error,
            Some(errno::EFAULT)
        );
        assert_eq!(getgroups(&mut k, -1, SimPtr::NULL).unwrap().error, Some(errno::EINVAL));
        let list = k.alloc_user(16, "groups");
        assert_eq!(getgroups(&mut k, 4, list).unwrap().value, 1);

        let rlim = k.alloc_user(8, "rlim");
        assert_eq!(getrlimit(&mut k, 2, rlim).unwrap().value, 0);
        assert_eq!(getrlimit(&mut k, 99, rlim).unwrap().error, Some(errno::EINVAL));
        assert_eq!(
            getrlimit(&mut k, 2, SimPtr::NULL).unwrap().error,
            Some(errno::EFAULT)
        );
        assert_eq!(setrlimit(&mut k, 2, rlim).unwrap().value, 0);
        // soft > hard is EINVAL.
        k.space.write_u32(rlim, 100).unwrap();
        k.space.write_u32(rlim.offset(4), 50).unwrap();
        assert_eq!(setrlimit(&mut k, 2, rlim).unwrap().error, Some(errno::EINVAL));
    }

    #[test]
    fn time_calls() {
        let mut k = Kernel::new();
        let tv = k.alloc_user(8, "tv");
        assert_eq!(gettimeofday(&mut k, tv, SimPtr::NULL).unwrap().value, 0);
        assert_eq!(
            u64::from(k.space.read_u32(tv).unwrap()),
            sim_kernel::clock::Clock::BOOT_UNIX_SECS
        );
        // NULL/NULL legal; wild pointer EFAULT.
        assert_eq!(gettimeofday(&mut k, SimPtr::NULL, SimPtr::NULL).unwrap().value, 0);
        assert_eq!(
            gettimeofday(&mut k, SimPtr::new(0x30), SimPtr::NULL).unwrap().error,
            Some(errno::EFAULT)
        );
        let buf = k.alloc_user(16, "tms");
        assert!(times(&mut k, buf).unwrap().value >= 0);
        assert!(times(&mut k, SimPtr::NULL).unwrap().value >= 0);
        assert_eq!(
            times(&mut k, SimPtr::new(0x30)).unwrap().error,
            Some(errno::EFAULT)
        );
        let ru = k.alloc_user(72, "rusage");
        assert_eq!(getrusage(&mut k, 0, ru).unwrap().value, 0);
        assert_eq!(getrusage(&mut k, 5, ru).unwrap().error, Some(errno::EINVAL));
    }

    #[test]
    fn uname_and_sysconf() {
        let mut k = Kernel::new();
        let buf = k.alloc_user(325, "utsname");
        assert_eq!(uname(&mut k, buf).unwrap().value, 0);
        assert_eq!(
            cstr::read_cstr(&k.space, buf, PrivilegeLevel::User).unwrap(),
            b"Linux"
        );
        assert_eq!(
            uname(&mut k, SimPtr::NULL).unwrap().error,
            Some(errno::EFAULT)
        );
        assert_eq!(sysconf(&mut k, 30).unwrap().value, 0x1000);
        assert_eq!(sysconf(&mut k, 9999).unwrap().error, Some(errno::EINVAL));
    }

    #[test]
    fn env_calls() {
        let mut k = Kernel::new();
        let name = k.alloc_user(8, "name");
        cstr::write_cstr(&mut k.space, name, "HOME", PrivilegeLevel::User).unwrap();
        let r = getenv(&mut k, name).unwrap();
        assert!(r.value != 0);
        let value = cstr::read_cstr(&k.space, SimPtr::new(r.value as u64), PrivilegeLevel::User)
            .unwrap();
        assert_eq!(value, b"/home/ballista");
        // Missing variable: NULL, no error.
        cstr::write_cstr(&mut k.space, name, "NOPE", PrivilegeLevel::User).unwrap();
        assert_eq!(getenv(&mut k, name).unwrap().value, 0);
        // Wild name: abort (glibc scan).
        assert!(getenv(&mut k, SimPtr::NULL).is_err());

        let assign = k.alloc_user(16, "assign");
        cstr::write_cstr(&mut k.space, assign, "NEW=yes", PrivilegeLevel::User).unwrap();
        assert_eq!(putenv(&mut k, assign).unwrap().value, 0);
        assert_eq!(k.env.get("NEW").unwrap(), "yes");
        assert!(putenv(&mut k, SimPtr::INVALID).is_err());
    }
}
