//! Property-based tests for the Win32 personality's central invariants:
//!
//! * **NT/2000 never crash** — any single call with arbitrary raw
//!   arguments leaves the machine alive (the paper's "different plateau of
//!   overall robustness").
//! * **9x never aborts on bad handles** — garbage handles are silently
//!   accepted (success, no error), the Figure 2 mechanism.
//! * File round-trips preserve data for arbitrary payloads.

use proptest::prelude::*;
use sim_core::SimPtr;
use sim_kernel::kernel::MachineFlavor;
use sim_kernel::objects::Handle;
use sim_kernel::variant::OsVariant;
use sim_kernel::Kernel;
use sim_win32::{fileapi, handleapi, syncapi, threadapi, Win32Profile};

proptest! {
    /// No single Win32 call with arbitrary argument words can kill an
    /// NT-family machine.
    #[test]
    fn nt_family_never_crashes(
        a in any::<u64>(),
        b in any::<u64>(),
        c in any::<u32>(),
        os_pick in any::<bool>(),
    ) {
        let os = if os_pick { OsVariant::WinNt4 } else { OsVariant::Win2000 };
        let profile = Win32Profile::for_os(os);
        let mut k = Kernel::with_flavor(MachineFlavor::Windows);
        let _ = handleapi::CloseHandle(&mut k, profile, Handle(a as u32));
        let _ = threadapi::GetThreadContext(&mut k, profile, Handle(a as u32), SimPtr::new(b));
        let _ = threadapi::SetThreadContext(&mut k, profile, Handle(a as u32), SimPtr::new(b));
        let _ = threadapi::InterlockedIncrement(&mut k, profile, SimPtr::new(b));
        let _ = fileapi::ReadFile(&mut k, profile, Handle(a as u32), SimPtr::new(b), c.min(1 << 16), SimPtr::new(a), SimPtr::NULL);
        let _ = syncapi::MsgWaitForMultipleObjects(&mut k, profile, c.min(64), SimPtr::new(b), 0, 100, 0xFF);
        let _ = sim_win32::timeapi::FileTimeToSystemTime(&mut k, profile, SimPtr::new(a), SimPtr::new(b));
        let _ = sim_win32::heapapi::HeapCreate(&mut k, profile, 0, a, b);
        prop_assert!(k.is_alive(), "{os} died");
    }

    /// On the 9x family a bad handle is never an abort: CloseHandle
    /// reports success with no error (the Silent path), while NT reports
    /// ERROR_INVALID_HANDLE — for *every* garbage handle value.
    #[test]
    fn bad_handle_split_holds_for_all_values(raw in any::<u32>()) {
        let h = Handle(raw);
        // Skip values that could be real handles or pseudo-handles.
        prop_assume!(h != Handle::NULL && !h.is_pseudo());
        let mut k98 = Kernel::with_flavor(MachineFlavor::Windows);
        prop_assume!(k98.objects.get(h).is_err());
        let r98 = handleapi::CloseHandle(
            &mut k98,
            Win32Profile::for_os(OsVariant::Win98),
            h,
        )
        .unwrap();
        prop_assert_eq!(r98.value, 1);
        prop_assert!(!r98.reported_error(), "9x must be silent for 0x{:08x}", raw);

        let mut knt = Kernel::with_flavor(MachineFlavor::Windows);
        let rnt = handleapi::CloseHandle(
            &mut knt,
            Win32Profile::for_os(OsVariant::WinNt4),
            h,
        )
        .unwrap();
        prop_assert!(rnt.reported_error(), "NT must report for 0x{:08x}", raw);
    }

    /// WriteFile-then-ReadFile round-trips arbitrary payloads on every
    /// variant (the simulator is a real filesystem, not a mock).
    #[test]
    fn file_roundtrip_any_payload(data in proptest::collection::vec(any::<u8>(), 1..512)) {
        for os in [OsVariant::Win95, OsVariant::WinNt4] {
            let profile = Win32Profile::for_os(os);
            let mut k = Kernel::with_flavor(MachineFlavor::Windows);
            let name = k.alloc_user(32, "name");
            sim_core::cstr::write_cstr(
                &mut k.space, name, "C:\\TEMP\\prop.bin", sim_core::addr::PrivilegeLevel::User,
            ).unwrap();
            let r = fileapi::CreateFile(
                &mut k, profile, name, 0xC000_0000, 0, SimPtr::NULL, 2, 0, Handle::NULL,
            ).unwrap();
            let h = Handle(r.value as u32);
            let buf = k.alloc_user(data.len() as u64, "payload");
            k.space.write_bytes(buf, &data).unwrap();
            let nw = k.alloc_user(4, "nw");
            let w = fileapi::WriteFile(&mut k, profile, h, buf, data.len() as u32, nw, SimPtr::NULL).unwrap();
            prop_assert_eq!(w.value, 1);
            prop_assert_eq!(k.space.read_u32(nw).unwrap() as usize, data.len());
            fileapi::SetFilePointer(&mut k, profile, h, 0, SimPtr::NULL, 0).unwrap();
            let out = k.alloc_user(data.len() as u64, "out");
            let nr = k.alloc_user(4, "nr");
            fileapi::ReadFile(&mut k, profile, h, out, data.len() as u32, nr, SimPtr::NULL).unwrap();
            prop_assert_eq!(k.space.read_bytes(out, data.len() as u64).unwrap(), data.clone());
        }
    }

    /// GetThreadContext/SetThreadContext round-trips arbitrary register
    /// values through user memory on NT.
    #[test]
    fn thread_context_roundtrip(regs in proptest::collection::vec(any::<u32>(), 16)) {
        let profile = Win32Profile::for_os(OsVariant::WinNt4);
        let mut k = Kernel::with_flavor(MachineFlavor::Windows);
        let ctx = k.alloc_user(64, "ctx");
        for (i, r) in regs.iter().enumerate() {
            k.space.write_u32(ctx.offset(i as u64 * 4), *r).unwrap();
        }
        let me = Handle::CURRENT_THREAD;
        threadapi::SetThreadContext(&mut k, profile, me, ctx).unwrap();
        let back = k.alloc_user(64, "back");
        threadapi::GetThreadContext(&mut k, profile, me, back).unwrap();
        for (i, r) in regs.iter().enumerate() {
            prop_assert_eq!(k.space.read_u32(back.offset(i as u64 * 4)).unwrap(), *r);
        }
    }
}
