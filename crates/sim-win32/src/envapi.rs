//! Process environment: environment variables, command line, module and
//! system information — the paper's *Process Environment* grouping, plus
//! the SEH-guarded `lstr*` kernel32 string calls.
//!
//! The `lstr*` functions are a documented robustness curiosity: on the NT
//! family they wrap the copy in a structured-exception handler and return
//! NULL on faults (a *robust* response to wild pointers!), while the 9x
//! implementations fault through — one more emergent contributor to the
//! families' different Abort/Silent balances.

use crate::errors::{self, ERROR_ENVVAR_NOT_FOUND, ERROR_INSUFFICIENT_BUFFER};
use crate::marshal::{exception, finish_out, read_string, write_out, OutWrite, FALSE, TRUE};
use crate::profile::Win32Profile;
use sim_core::addr::PrivilegeLevel;
use sim_core::cstr;
use sim_core::SimPtr;
use sim_kernel::outcome::{ApiResult, ApiReturn};
use sim_kernel::variant::OsVariant;
use sim_kernel::Kernel;

/// `GetEnvironmentVariable(lpName, lpBuffer, nSize)`.
///
/// # Errors
///
/// An SEH abort when the name or buffer faults.
pub fn GetEnvironmentVariable(
    k: &mut Kernel,
    profile: Win32Profile,
    name: SimPtr,
    buffer: SimPtr,
    size: u32,
) -> ApiResult {
    k.charge_call();
    let n = read_string(k, name)?;
    let value = match k.env.get(&n) {
        Ok(v) => v.to_owned(),
        Err(_) => return Ok(ApiReturn::err(0, ERROR_ENVVAR_NOT_FOUND)),
    };
    let needed = value.len() as u32 + 1;
    if size < needed {
        return Ok(ApiReturn::ok(i64::from(needed)));
    }
    let mut bytes = value.clone().into_bytes();
    bytes.push(0);
    let out = write_out(k, profile, "GetEnvironmentVariable", true, buffer, &bytes)?;
    Ok(finish_out(out, i64::from(value.len() as u32)))
}

/// `SetEnvironmentVariable(lpName, lpValue)` — NULL value deletes.
///
/// # Errors
///
/// An SEH abort when either string faults.
pub fn SetEnvironmentVariable(
    k: &mut Kernel,
    _profile: Win32Profile,
    name: SimPtr,
    value: SimPtr,
) -> ApiResult {
    k.charge_call();
    let n = read_string(k, name)?;
    if value.is_null() {
        return match k.env.unset(&n) {
            Ok(()) => Ok(ApiReturn::ok(TRUE)),
            Err(e) => Ok(ApiReturn::err(FALSE, errors::from_env(e))),
        };
    }
    let v = read_string(k, value)?;
    match k.env.set(&n, &v) {
        Ok(()) => Ok(ApiReturn::ok(TRUE)),
        Err(e) => Ok(ApiReturn::err(FALSE, errors::from_env(e))),
    }
}

/// `ExpandEnvironmentStrings(lpSrc, lpDst, nSize)`.
///
/// # Errors
///
/// An SEH abort when source or destination faults.
pub fn ExpandEnvironmentStrings(
    k: &mut Kernel,
    profile: Win32Profile,
    src: SimPtr,
    dst: SimPtr,
    size: u32,
) -> ApiResult {
    k.charge_call();
    let input = read_string(k, src)?;
    let expanded = k.env.expand(&input);
    let needed = expanded.len() as u32 + 1;
    if size < needed {
        return Ok(ApiReturn::err(i64::from(needed), ERROR_INSUFFICIENT_BUFFER));
    }
    let mut bytes = expanded.into_bytes();
    bytes.push(0);
    let out = write_out(k, profile, "ExpandEnvironmentStrings", true, dst, &bytes)?;
    Ok(finish_out(out, i64::from(needed)))
}

/// `GetCommandLine()` — returns a pointer to the process command line
/// (robust: no arguments to attack).
///
/// # Errors
///
/// None.
pub fn GetCommandLine(k: &mut Kernel, _profile: Win32Profile) -> ApiResult {
    k.charge_call();
    if let Some(&cached) = k.scratch.get("win32.cmdline") {
        return Ok(ApiReturn::ok(cached as i64));
    }
    let image = k
        .procs
        .process(k.procs.current_pid())
        .map(|p| p.image.clone())
        .unwrap_or_default();
    let p = k.alloc_user(image.len() as u64 + 1, "cmdline");
    let _ = cstr::write_cstr(&mut k.space, p, &image, PrivilegeLevel::User);
    k.scratch.insert("win32.cmdline".to_owned(), p.addr());
    Ok(ApiReturn::ok(p.addr() as i64))
}

/// `GetModuleFileName(hModule, lpFilename, nSize)` — NULL module means the
/// current executable.
///
/// # Errors
///
/// An SEH abort when the filename buffer faults under probing.
pub fn GetModuleFileName(
    k: &mut Kernel,
    profile: Win32Profile,
    module: SimPtr,
    buffer: SimPtr,
    size: u32,
) -> ApiResult {
    k.charge_call();
    if !module.is_null() && module.addr() != 0x0040_0000 {
        return Ok(ApiReturn::err(0, errors::ERROR_INVALID_HANDLE));
    }
    let name = "C:\\BALLISTA\\TESTTASK.EXE";
    let needed = name.len() as u32 + 1;
    if size < needed {
        // Truncated copy, returns nSize — the documented (and surprising)
        // behaviour.
        let mut bytes = name.as_bytes()[..size.saturating_sub(1) as usize].to_vec();
        bytes.push(0);
        if size > 0 {
            let out = write_out(k, profile, "GetModuleFileName", true, buffer, &bytes)?;
            return Ok(finish_out(out, i64::from(size)));
        }
        return Ok(ApiReturn::ok(0));
    }
    let mut bytes = name.as_bytes().to_vec();
    bytes.push(0);
    let out = write_out(k, profile, "GetModuleFileName", true, buffer, &bytes)?;
    Ok(finish_out(out, i64::from(name.len() as u32)))
}

/// `GetModuleHandle(lpModuleName)` — NULL means the current executable
/// (base 0x00400000).
///
/// # Errors
///
/// An SEH abort when a non-NULL name faults.
pub fn GetModuleHandle(k: &mut Kernel, _profile: Win32Profile, name: SimPtr) -> ApiResult {
    k.charge_call();
    if name.is_null() {
        return Ok(ApiReturn::ok(0x0040_0000));
    }
    let n = read_string(k, name)?;
    let known = ["kernel32", "kernel32.dll", "user32", "user32.dll", "testtask.exe"];
    if known.contains(&n.to_ascii_lowercase().as_str()) {
        Ok(ApiReturn::ok(0x7780_0000))
    } else {
        Ok(ApiReturn::err(0, errors::ERROR_FILE_NOT_FOUND))
    }
}

/// `GetVersion()` — packed version DWORD per variant.
///
/// # Errors
///
/// None.
pub fn GetVersion(k: &mut Kernel, profile: Win32Profile) -> ApiResult {
    k.charge_call();
    let (major, minor, win9x_bit) = match profile.os {
        OsVariant::Win95 => (4u32, 0u32, true),
        OsVariant::Win98 | OsVariant::Win98Se => (4, 10, true),
        OsVariant::WinNt4 => (4, 0, false),
        OsVariant::Win2000 => (5, 0, false),
        OsVariant::WinCe => (2, 11, false),
        OsVariant::Linux => unreachable!("profile construction forbids Linux"),
    };
    let mut v = major | (minor << 8);
    if win9x_bit {
        v |= 0x8000_0000;
    }
    Ok(ApiReturn::ok(i64::from(v)))
}

/// `GetVersionEx(lpVersionInfo)` — the caller must set
/// `dwOSVersionInfoSize` first; the call reads it, then fills the block.
///
/// # Errors
///
/// An SEH abort when the block faults.
pub fn GetVersionEx(k: &mut Kernel, profile: Win32Profile, info: SimPtr) -> ApiResult {
    k.charge_call();
    let declared = k.space.read_u32(info).map_err(exception)?;
    if declared < 20 {
        return Ok(ApiReturn::err(FALSE, errors::ERROR_INVALID_PARAMETER));
    }
    let packed = GetVersion(k, profile)?.value as u32;
    let mut block = Vec::with_capacity(20);
    block.extend_from_slice(&declared.to_le_bytes());
    block.extend_from_slice(&(packed & 0xFF).to_le_bytes()); // major
    block.extend_from_slice(&((packed >> 8) & 0xFF).to_le_bytes()); // minor
    block.extend_from_slice(&0u32.to_le_bytes()); // build
    block.extend_from_slice(&u32::from(packed & 0x8000_0000 == 0).to_le_bytes()); // platform
    let out = write_out(k, profile, "GetVersionEx", false, info, &block)?;
    Ok(finish_out(out, TRUE))
}

/// `GetSystemInfo(lpSystemInfo)` — fills a 36-byte `SYSTEM_INFO`.
///
/// # Errors
///
/// An SEH abort when the block faults under probing.
pub fn GetSystemInfo(k: &mut Kernel, profile: Win32Profile, info: SimPtr) -> ApiResult {
    k.charge_call();
    let mut block = Vec::with_capacity(36);
    block.extend_from_slice(&0u32.to_le_bytes()); // processor architecture: x86
    block.extend_from_slice(&0x1000u32.to_le_bytes()); // page size
    block.extend_from_slice(&0x0001_0000u32.to_le_bytes()); // min app address
    block.extend_from_slice(&0x7FFE_FFFFu32.to_le_bytes()); // max app address
    block.extend_from_slice(&1u32.to_le_bytes()); // active processor mask
    block.extend_from_slice(&1u32.to_le_bytes()); // number of processors
    block.extend_from_slice(&586u32.to_le_bytes()); // processor type
    block.extend_from_slice(&0x1_0000u32.to_le_bytes()); // allocation granularity
    block.extend_from_slice(&0u32.to_le_bytes()); // level/revision
    let out = write_out(k, profile, "GetSystemInfo", true, info, &block)?;
    Ok(finish_out(out, 0))
}

/// `GetComputerName(lpBuffer, lpnSize)` — in/out size protocol.
///
/// # Errors
///
/// An SEH abort when either pointer faults.
pub fn GetComputerName(k: &mut Kernel, profile: Win32Profile, buffer: SimPtr, size_inout: SimPtr) -> ApiResult {
    k.charge_call();
    let cap = k.space.read_u32(size_inout).map_err(exception)?;
    let name = k.env.get("COMPUTERNAME").unwrap_or("TESTBED").to_owned();
    if u64::from(cap) < name.len() as u64 + 1 {
        k
            .space
            .write_u32(size_inout, name.len() as u32 + 1)
            .map_err(exception)?;
        return Ok(ApiReturn::err(FALSE, ERROR_INSUFFICIENT_BUFFER));
    }
    let mut bytes = name.clone().into_bytes();
    bytes.push(0);
    let out = write_out(k, profile, "GetComputerName", true, buffer, &bytes)?;
    if out == OutWrite::Written {
        let _ = k.space.write_u32(size_inout, name.len() as u32);
    }
    Ok(finish_out(out, TRUE))
}

/// `GetSystemDirectory(lpBuffer, uSize)`.
///
/// # Errors
///
/// An SEH abort when the buffer faults under probing.
pub fn GetSystemDirectory(k: &mut Kernel, profile: Win32Profile, buffer: SimPtr, size: u32) -> ApiResult {
    k.charge_call();
    let dir = "C:\\WINDOWS\\SYSTEM";
    let needed = dir.len() as u32 + 1;
    if size < needed {
        return Ok(ApiReturn::ok(i64::from(needed)));
    }
    let mut bytes = dir.as_bytes().to_vec();
    bytes.push(0);
    let out = write_out(k, profile, "GetSystemDirectory", true, buffer, &bytes)?;
    Ok(finish_out(out, i64::from(dir.len() as u32)))
}

/// `GetWindowsDirectory(lpBuffer, uSize)`.
///
/// # Errors
///
/// An SEH abort when the buffer faults under probing.
pub fn GetWindowsDirectory(k: &mut Kernel, profile: Win32Profile, buffer: SimPtr, size: u32) -> ApiResult {
    k.charge_call();
    let dir = "C:\\WINDOWS";
    let needed = dir.len() as u32 + 1;
    if size < needed {
        return Ok(ApiReturn::ok(i64::from(needed)));
    }
    let mut bytes = dir.as_bytes().to_vec();
    bytes.push(0);
    let out = write_out(k, profile, "GetWindowsDirectory", true, buffer, &bytes)?;
    Ok(finish_out(out, i64::from(dir.len() as u32)))
}

/// `GetStartupInfo(lpStartupInfo)` — fills a 68-byte `STARTUPINFO`.
///
/// # Errors
///
/// An SEH abort when the block faults under probing.
pub fn GetStartupInfo(k: &mut Kernel, profile: Win32Profile, info: SimPtr) -> ApiResult {
    k.charge_call();
    let mut block = vec![0u8; 68];
    block[..4].copy_from_slice(&68u32.to_le_bytes()); // cb
    let out = write_out(k, profile, "GetStartupInfo", true, info, &block)?;
    Ok(finish_out(out, 0))
}

/// Whether the variant's `lstr*` calls are SEH-guarded (NT family).
fn lstr_guarded(profile: Win32Profile) -> bool {
    profile.os.is_nt()
}

/// `lstrlen(lpString)`.
///
/// NT: SEH-guarded — wild pointers return 0 (a Silent-leaning robust
/// response). 9x/CE: faults through (Abort).
///
/// # Errors
///
/// An SEH abort on unguarded variants when the scan faults.
pub fn lstrlen(k: &mut Kernel, profile: Win32Profile, s: SimPtr) -> ApiResult {
    k.charge_call();
    if s.is_null() {
        return Ok(ApiReturn::ok(0)); // documented NULL tolerance
    }
    match cstr::read_cstr(&k.space, s, PrivilegeLevel::User) {
        Ok(bytes) => Ok(ApiReturn::ok(bytes.len() as i64)),
        Err(fault) => {
            if lstr_guarded(profile) {
                Ok(ApiReturn::ok(0))
            } else {
                Err(exception(fault))
            }
        }
    }
}

/// `lstrcpy(lpDst, lpSrc)`.
///
/// # Errors
///
/// An SEH abort on unguarded variants when either access faults.
pub fn lstrcpy(k: &mut Kernel, profile: Win32Profile, dst: SimPtr, src: SimPtr) -> ApiResult {
    k.charge_call();
    let result: Result<(), sim_core::Fault> = (|| {
        let bytes = cstr::read_cstr(&k.space, src, PrivilegeLevel::User)?;
        cstr::write_bytes_nul(&mut k.space, dst, &bytes, PrivilegeLevel::User)
    })();
    match result {
        Ok(()) => Ok(ApiReturn::ok(dst.addr() as i64)),
        Err(fault) => {
            if lstr_guarded(profile) {
                Ok(ApiReturn::ok(0)) // NULL on fault
            } else {
                Err(exception(fault))
            }
        }
    }
}

/// `lstrcpyn(lpDst, lpSrc, iMaxLength)`.
///
/// # Errors
///
/// An SEH abort on unguarded variants when either access faults.
pub fn lstrcpyn(k: &mut Kernel, profile: Win32Profile, dst: SimPtr, src: SimPtr, max: i32) -> ApiResult {
    k.charge_call();
    if max <= 0 {
        return Ok(ApiReturn::ok(0));
    }
    let result: Result<(), sim_core::Fault> = (|| {
        let mut bytes = cstr::read_cstr(&k.space, src, PrivilegeLevel::User)?;
        bytes.truncate(max as usize - 1);
        cstr::write_bytes_nul(&mut k.space, dst, &bytes, PrivilegeLevel::User)
    })();
    match result {
        Ok(()) => Ok(ApiReturn::ok(dst.addr() as i64)),
        Err(fault) => {
            if lstr_guarded(profile) {
                Ok(ApiReturn::ok(0))
            } else {
                Err(exception(fault))
            }
        }
    }
}

/// `lstrcat(lpDst, lpSrc)`.
///
/// # Errors
///
/// An SEH abort on unguarded variants when any access faults.
pub fn lstrcat(k: &mut Kernel, profile: Win32Profile, dst: SimPtr, src: SimPtr) -> ApiResult {
    k.charge_call();
    let result: Result<(), sim_core::Fault> = (|| {
        let head = cstr::read_cstr(&k.space, dst, PrivilegeLevel::User)?;
        let tail = cstr::read_cstr(&k.space, src, PrivilegeLevel::User)?;
        cstr::write_bytes_nul(
            &mut k.space,
            dst.offset(head.len() as u64),
            &tail,
            PrivilegeLevel::User,
        )
    })();
    match result {
        Ok(()) => Ok(ApiReturn::ok(dst.addr() as i64)),
        Err(fault) => {
            if lstr_guarded(profile) {
                Ok(ApiReturn::ok(0))
            } else {
                Err(exception(fault))
            }
        }
    }
}

fn lstrcmp_impl(k: &mut Kernel, profile: Win32Profile, a: SimPtr, b: SimPtr, fold: bool) -> ApiResult {
    let result: Result<i64, sim_core::Fault> = (|| {
        let mut x = cstr::read_cstr(&k.space, a, PrivilegeLevel::User)?;
        let mut y = cstr::read_cstr(&k.space, b, PrivilegeLevel::User)?;
        if fold {
            x.make_ascii_lowercase();
            y.make_ascii_lowercase();
        }
        Ok(match x.cmp(&y) {
            std::cmp::Ordering::Less => -1,
            std::cmp::Ordering::Equal => 0,
            std::cmp::Ordering::Greater => 1,
        })
    })();
    match result {
        Ok(v) => Ok(ApiReturn::ok(v)),
        Err(fault) => {
            if lstr_guarded(profile) {
                Ok(ApiReturn::ok(0)) // "equal" — quietly wrong
            } else {
                Err(exception(fault))
            }
        }
    }
}

/// `lstrcmp(lpString1, lpString2)`.
///
/// # Errors
///
/// An SEH abort on unguarded variants when a scan faults.
pub fn lstrcmp(k: &mut Kernel, profile: Win32Profile, a: SimPtr, b: SimPtr) -> ApiResult {
    k.charge_call();
    lstrcmp_impl(k, profile, a, b, false)
}

/// `lstrcmpi(lpString1, lpString2)` — case-insensitive.
///
/// # Errors
///
/// An SEH abort on unguarded variants when a scan faults.
pub fn lstrcmpi(k: &mut Kernel, profile: Win32Profile, a: SimPtr, b: SimPtr) -> ApiResult {
    k.charge_call();
    lstrcmp_impl(k, profile, a, b, true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_kernel::kernel::MachineFlavor;

    fn nt() -> Win32Profile {
        Win32Profile::for_os(OsVariant::WinNt4)
    }

    fn w98() -> Win32Profile {
        Win32Profile::for_os(OsVariant::Win98)
    }

    fn wk() -> Kernel {
        Kernel::with_flavor(MachineFlavor::Windows)
    }

    fn put(k: &mut Kernel, s: &str) -> SimPtr {
        let p = k.alloc_user(s.len() as u64 + 1, "str");
        cstr::write_cstr(&mut k.space, p, s, PrivilegeLevel::User).unwrap();
        p
    }

    #[test]
    fn env_var_roundtrip() {
        let mut k = wk();
        let name = put(&mut k, "BALLISTA");
        let value = put(&mut k, "ready");
        assert_eq!(
            SetEnvironmentVariable(&mut k, nt(), name, value).unwrap().value,
            TRUE
        );
        let buf = k.alloc_user(32, "buf");
        let r = GetEnvironmentVariable(&mut k, nt(), name, buf, 32).unwrap();
        assert_eq!(r.value, 5);
        assert_eq!(
            cstr::read_cstr(&k.space, buf, PrivilegeLevel::User).unwrap(),
            b"ready"
        );
        // Too-small buffer: returns the needed size, robustly.
        let r = GetEnvironmentVariable(&mut k, nt(), name, buf, 2).unwrap();
        assert_eq!(r.value, 6);
        // Delete via NULL value.
        SetEnvironmentVariable(&mut k, nt(), name, SimPtr::NULL).unwrap();
        assert!(GetEnvironmentVariable(&mut k, nt(), name, buf, 32)
            .unwrap()
            .reported_error());
        // Hostile name pointer aborts.
        assert!(GetEnvironmentVariable(&mut k, nt(), SimPtr::NULL, buf, 32).is_err());
    }

    #[test]
    fn expand_strings() {
        let mut k = wk();
        let src = put(&mut k, "root is %SYSTEMROOT% ok");
        let dst = k.alloc_user(64, "dst");
        let r = ExpandEnvironmentStrings(&mut k, nt(), src, dst, 64).unwrap();
        assert!(r.value > 0);
        assert_eq!(
            cstr::read_cstr(&k.space, dst, PrivilegeLevel::User).unwrap(),
            b"root is C:\\WINDOWS ok"
        );
        assert!(ExpandEnvironmentStrings(&mut k, nt(), src, dst, 3)
            .unwrap()
            .reported_error());
    }

    #[test]
    fn command_line_and_module() {
        let mut k = wk();
        let r = GetCommandLine(&mut k, nt()).unwrap();
        assert!(r.value != 0);
        // Stable across calls.
        assert_eq!(GetCommandLine(&mut k, nt()).unwrap().value, r.value);
        assert_eq!(GetModuleHandle(&mut k, nt(), SimPtr::NULL).unwrap().value, 0x0040_0000);
        let krn = put(&mut k, "KERNEL32.DLL");
        assert!(GetModuleHandle(&mut k, nt(), krn).unwrap().value != 0);
        let nope = put(&mut k, "missing.dll");
        assert!(GetModuleHandle(&mut k, nt(), nope).unwrap().reported_error());
        let buf = k.alloc_user(64, "mod");
        let r = GetModuleFileName(&mut k, nt(), SimPtr::NULL, buf, 64).unwrap();
        assert!(r.value > 0);
    }

    #[test]
    fn version_identifies_variant() {
        let mut k = wk();
        let v95 = GetVersion(&mut k, Win32Profile::for_os(OsVariant::Win95)).unwrap().value as u32;
        assert!(v95 & 0x8000_0000 != 0);
        let vnt = GetVersion(&mut k, nt()).unwrap().value as u32;
        assert!(vnt & 0x8000_0000 == 0);
        assert_eq!(vnt & 0xFF, 4);
        let v2k = GetVersion(&mut k, Win32Profile::for_os(OsVariant::Win2000)).unwrap().value as u32;
        assert_eq!(v2k & 0xFF, 5);
        // GetVersionEx protocol: must set cb first.
        let info = k.alloc_user(20, "osvi");
        k.space.write_u32(info, 20).unwrap();
        assert_eq!(GetVersionEx(&mut k, nt(), info).unwrap().value, TRUE);
        k.space.write_u32(info, 4).unwrap();
        assert!(GetVersionEx(&mut k, nt(), info).unwrap().reported_error());
        assert!(GetVersionEx(&mut k, nt(), SimPtr::NULL).is_err());
    }

    #[test]
    fn system_info_and_directories() {
        let mut k = wk();
        let info = k.alloc_user(36, "si");
        GetSystemInfo(&mut k, nt(), info).unwrap();
        assert_eq!(k.space.read_u32(info.offset(4)).unwrap(), 0x1000);
        let buf = k.alloc_user(32, "dir");
        assert!(GetSystemDirectory(&mut k, nt(), buf, 32).unwrap().value > 0);
        assert!(GetWindowsDirectory(&mut k, nt(), buf, 32).unwrap().value > 0);
        // Size-too-small returns the needed size.
        let needed = GetSystemDirectory(&mut k, nt(), buf, 2).unwrap().value;
        assert_eq!(needed, 18);
        let si = k.alloc_user(68, "startup");
        GetStartupInfo(&mut k, nt(), si).unwrap();
        assert_eq!(k.space.read_u32(si).unwrap(), 68);
    }

    #[test]
    fn computer_name_protocol() {
        let mut k = wk();
        let size = k.alloc_user(4, "size");
        k.space.write_u32(size, 32).unwrap();
        let buf = k.alloc_user(32, "name");
        assert_eq!(GetComputerName(&mut k, nt(), buf, size).unwrap().value, TRUE);
        assert_eq!(
            cstr::read_cstr(&k.space, buf, PrivilegeLevel::User).unwrap(),
            b"TESTBED"
        );
        assert_eq!(k.space.read_u32(size).unwrap(), 7);
        // Too small: error + needed size written back.
        k.space.write_u32(size, 2).unwrap();
        assert!(GetComputerName(&mut k, nt(), buf, size).unwrap().reported_error());
        assert_eq!(k.space.read_u32(size).unwrap(), 8);
        assert!(GetComputerName(&mut k, nt(), buf, SimPtr::NULL).is_err());
    }

    #[test]
    fn lstr_family_seh_guard_split() {
        let mut k = wk();
        let s = put(&mut k, "guarded");
        assert_eq!(lstrlen(&mut k, nt(), s).unwrap().value, 7);
        assert_eq!(lstrlen(&mut k, nt(), SimPtr::NULL).unwrap().value, 0);
        // Wild pointer: NT returns 0 (SEH-guarded), 98 aborts.
        assert_eq!(lstrlen(&mut k, nt(), SimPtr::new(0x44)).unwrap().value, 0);
        assert!(lstrlen(&mut k, w98(), SimPtr::new(0x44)).is_err());

        let dst = k.alloc_user(32, "dst");
        assert!(lstrcpy(&mut k, nt(), dst, s).unwrap().value != 0);
        assert_eq!(lstrcpy(&mut k, nt(), SimPtr::new(0x44), s).unwrap().value, 0);
        assert!(lstrcpy(&mut k, w98(), SimPtr::new(0x44), s).is_err());

        assert!(lstrcat(&mut k, nt(), dst, s).unwrap().value != 0);
        assert_eq!(
            cstr::read_cstr(&k.space, dst, PrivilegeLevel::User).unwrap(),
            b"guardedguarded"
        );
        assert!(lstrcpyn(&mut k, nt(), dst, s, 4).unwrap().value != 0);
        assert_eq!(
            cstr::read_cstr(&k.space, dst, PrivilegeLevel::User).unwrap(),
            b"gua"
        );

        let a = put(&mut k, "Alpha");
        let b = put(&mut k, "alpha");
        assert_ne!(lstrcmp(&mut k, nt(), a, b).unwrap().value, 0);
        assert_eq!(lstrcmpi(&mut k, nt(), a, b).unwrap().value, 0);
        assert_eq!(lstrcmp(&mut k, nt(), SimPtr::new(0x44), b).unwrap().value, 0);
        assert!(lstrcmp(&mut k, w98(), SimPtr::new(0x44), b).is_err());
    }
}
