//! Threads: creation, scheduling, register contexts and the interlocked
//! primitives — the bulk of the paper's *Process Primitives* grouping.
//!
//! This module contains the paper's Listing 1:
//!
//! ```text
//! GetThreadContext(GetCurrentThread(), NULL);
//! ```
//!
//! which crashes Windows 95, 98, 98 SE and CE outright — the 9x/CE kernels
//! write the `CONTEXT` block through the caller's pointer with no probing.
//! Also here: `SetThreadContext` (CE crash), `CreateThread` (98 SE/CE,
//! interference-dependent) and the `Interlocked*` trio (CE,
//! interference-dependent).

use sim_kernel::Subsystem;
use crate::errors::{self, ERROR_INVALID_PARAMETER};
use crate::marshal::{
    bad_handle_return, exception, finish_out, kernel_write, write_out, OutWrite, FALSE, TRUE,
};
use crate::profile::Win32Profile;
use sim_core::addr::PrivilegeLevel;
use sim_core::SimPtr;
use sim_kernel::objects::{Handle, HandleError, ObjectKind};
use sim_kernel::outcome::{ApiResult, ApiReturn};
use sim_kernel::process::ThreadContext;
use sim_kernel::Kernel;

/// Resolves a thread handle (accepting the `GetCurrentThread()`
/// pseudo-handle) to a thread id.
fn thread_tid(k: &Kernel, h: Handle) -> Result<u32, HandleError> {
    if h == Handle::CURRENT_THREAD {
        return Ok(k.procs.current_tid());
    }
    match k.objects.get(h)? {
        ObjectKind::Thread(tid) => Ok(*tid),
        other => Err(HandleError::WrongType {
            actual: other.type_name(),
        }),
    }
}

fn context_bytes(ctx: &ThreadContext) -> Vec<u8> {
    let mut out = Vec::with_capacity(ThreadContext::SIZE as usize);
    for f in ctx.fields() {
        out.extend_from_slice(&f.to_le_bytes());
    }
    out
}

/// `GetCurrentThread()` — the pseudo-handle.
///
/// # Errors
///
/// None.
pub fn GetCurrentThread(k: &mut Kernel, _profile: Win32Profile) -> ApiResult {
    k.charge_call_to(Subsystem::Process);
    Ok(ApiReturn::ok(i64::from(Handle::CURRENT_THREAD.raw())))
}

/// `GetCurrentThreadId()`.
///
/// # Errors
///
/// None.
pub fn GetCurrentThreadId(k: &mut Kernel, _profile: Win32Profile) -> ApiResult {
    k.charge_call_to(Subsystem::Process);
    Ok(ApiReturn::ok(i64::from(k.procs.current_tid())))
}

/// `CreateThread(lpSecurity, dwStackSize, lpStartAddress, lpParameter,
/// dwCreationFlags, lpThreadId)`.
///
/// **Table 3** (`*CreateThread`): on Windows 98 SE and CE, under harness
/// residue, the thread-id writeback goes down a kernel path with no
/// probing.
///
/// # Errors
///
/// An SEH abort when `lpThreadId` faults under probing, or when the start
/// address is not executable (real threads crash at their first fetch —
/// reported here synchronously, as the paper's harness observed it).
pub fn CreateThread(
    k: &mut Kernel,
    profile: Win32Profile,
    _security: SimPtr,
    _stack_size: u64,
    start_address: SimPtr,
    _parameter: SimPtr,
    creation_flags: u32,
    thread_id_out: SimPtr,
) -> ApiResult {
    k.charge_call_to(Subsystem::Process);
    // A NULL start address is rejected up front by every variant.
    if start_address.is_null() {
        return Ok(ApiReturn::err(0, ERROR_INVALID_PARAMETER));
    }
    const CREATE_SUSPENDED: u32 = 4;
    if creation_flags & !CREATE_SUSPENDED != 0 {
        return Ok(ApiReturn::err(0, ERROR_INVALID_PARAMETER));
    }
    let tid = k
        .procs
        .spawn_thread(k.procs.current_pid())
        .expect("current process is alive");
    if creation_flags & CREATE_SUSPENDED != 0 {
        let _ = k.procs.suspend_thread(tid);
    }
    let h = k.objects.insert(ObjectKind::Thread(tid));
    if !thread_id_out.is_null() {
        let out = if profile.vulnerability_fires_on("CreateThread", k) {
            kernel_write(k, "CreateThread", thread_id_out, &tid.to_le_bytes())
        } else {
            write_out(
                k,
                profile,
                "CreateThread",
                true,
                thread_id_out,
                &tid.to_le_bytes(),
            )?
        };
        if let OutWrite::ErrorReturn(code) = out {
            return Ok(ApiReturn::err(0, code));
        }
    }
    Ok(ApiReturn::ok(i64::from(h.raw())))
}

/// `TerminateThread(hThread, dwExitCode)`.
///
/// # Errors
///
/// None; bad handles return errors (or 9x silence).
pub fn TerminateThread(k: &mut Kernel, profile: Win32Profile, h: Handle, exit_code: u32) -> ApiResult {
    k.charge_call_to(Subsystem::Process);
    match thread_tid(k, h) {
        Ok(tid) => {
            if let Ok(t) = k.procs.thread_mut(tid) {
                t.state = sim_kernel::process::RunState::Exited(exit_code);
            }
            Ok(ApiReturn::ok(TRUE))
        }
        Err(e) => Ok(bad_handle_return(profile, e, TRUE)),
    }
}

/// `SuspendThread(hThread)` — returns the previous suspend count.
///
/// # Errors
///
/// None.
pub fn SuspendThread(k: &mut Kernel, profile: Win32Profile, h: Handle) -> ApiResult {
    k.charge_call_to(Subsystem::Process);
    let tid = match thread_tid(k, h) {
        Ok(t) => t,
        Err(e) => return Ok(bad_handle_return(profile, e, 0)),
    };
    match k.procs.suspend_thread(tid) {
        Ok(prev) => Ok(ApiReturn::ok(i64::from(prev))),
        Err(e) => Ok(ApiReturn::err(-1, errors::from_process(e))),
    }
}

/// `ResumeThread(hThread)`.
///
/// # Errors
///
/// None.
pub fn ResumeThread(k: &mut Kernel, profile: Win32Profile, h: Handle) -> ApiResult {
    k.charge_call_to(Subsystem::Process);
    let tid = match thread_tid(k, h) {
        Ok(t) => t,
        Err(e) => return Ok(bad_handle_return(profile, e, 0)),
    };
    match k.procs.resume_thread(tid) {
        Ok(prev) => Ok(ApiReturn::ok(i64::from(prev))),
        Err(e) => Ok(ApiReturn::err(-1, errors::from_process(e))),
    }
}

/// `GetThreadContext(hThread, lpContext)` — **Listing 1 of the paper**.
///
/// The 9x and CE kernels copy the `CONTEXT` block to `lpContext` at kernel
/// privilege with no probing: `GetThreadContext(GetCurrentThread(), NULL)`
/// is a one-line whole-system crash on Windows 95, 98, 98 SE and CE, and a
/// plain access-violation Abort on NT/2000.
///
/// # Errors
///
/// An SEH abort on the NT family when `lpContext` faults.
pub fn GetThreadContext(k: &mut Kernel, profile: Win32Profile, h: Handle, context_out: SimPtr) -> ApiResult {
    k.charge_call_to(Subsystem::Process);
    let tid = match thread_tid(k, h) {
        Ok(t) => t,
        Err(e) => return Ok(bad_handle_return(profile, e, TRUE)),
    };
    let ctx = match k.procs.thread(tid) {
        Ok(t) => t.context,
        Err(e) => return Ok(ApiReturn::err(FALSE, errors::from_process(e))),
    };
    let bytes = context_bytes(&ctx);
    let out = if profile.vulnerability_fires_on("GetThreadContext", k) {
        kernel_write(k, "GetThreadContext", context_out, &bytes)
    } else {
        write_out(k, profile, "GetThreadContext", false, context_out, &bytes)?
    };
    Ok(finish_out(out, TRUE))
}

/// `SetThreadContext(hThread, lpContext)`.
///
/// **Table 3**: the CE kernel reads the block at kernel privilege with no
/// probing — Catastrophic on CE; an Abort elsewhere.
///
/// # Errors
///
/// An SEH abort when the context block faults under user-mode reading.
pub fn SetThreadContext(k: &mut Kernel, profile: Win32Profile, h: Handle, context_in: SimPtr) -> ApiResult {
    k.charge_call_to(Subsystem::Process);
    let tid = match thread_tid(k, h) {
        Ok(t) => t,
        Err(e) => return Ok(bad_handle_return(profile, e, TRUE)),
    };
    let bytes = if profile.vulnerability_fires_on("SetThreadContext", k) {
        match crate::marshal::kernel_read(k, "SetThreadContext", context_in, ThreadContext::SIZE) {
            Some(b) => b,
            None => return Ok(ApiReturn::ok(TRUE)), // machine dead
        }
    } else {
        k.space
            .read_bytes_at(context_in, ThreadContext::SIZE, PrivilegeLevel::User)
            .map_err(exception)?
    };
    let mut fields = [0u32; ThreadContext::FIELD_COUNT];
    for (i, f) in fields.iter_mut().enumerate() {
        *f = u32::from_le_bytes(bytes[i * 4..i * 4 + 4].try_into().expect("sized"));
    }
    match k.procs.thread_mut(tid) {
        Ok(t) => {
            t.context = ThreadContext::from_fields(fields);
            Ok(ApiReturn::ok(TRUE))
        }
        Err(e) => Ok(ApiReturn::err(FALSE, errors::from_process(e))),
    }
}

/// `GetThreadPriority(hThread)`.
///
/// # Errors
///
/// None; failures return `THREAD_PRIORITY_ERROR_RETURN` (0x7FFFFFFF).
pub fn GetThreadPriority(k: &mut Kernel, profile: Win32Profile, h: Handle) -> ApiResult {
    k.charge_call_to(Subsystem::Process);
    let tid = match thread_tid(k, h) {
        Ok(t) => t,
        Err(e) => {
            return Ok(match crate::marshal::handle_disposition(profile, e) {
                crate::marshal::BadHandle::SilentSuccess => ApiReturn::ok(0),
                crate::marshal::BadHandle::ErrorReturn(code) => {
                    ApiReturn::err(0x7FFF_FFFF, code)
                }
            })
        }
    };
    match k.procs.thread(tid) {
        Ok(t) => Ok(ApiReturn::ok(i64::from(t.priority))),
        Err(e) => Ok(ApiReturn::err(0x7FFF_FFFF, errors::from_process(e))),
    }
}

/// `SetThreadPriority(hThread, nPriority)` — priorities −2..=2 plus the
/// ±15 extremes.
///
/// # Errors
///
/// None.
pub fn SetThreadPriority(k: &mut Kernel, profile: Win32Profile, h: Handle, priority: i32) -> ApiResult {
    k.charge_call_to(Subsystem::Process);
    if !matches!(priority, -15 | -2 | -1 | 0 | 1 | 2 | 15) {
        return Ok(ApiReturn::err(FALSE, ERROR_INVALID_PARAMETER));
    }
    let tid = match thread_tid(k, h) {
        Ok(t) => t,
        Err(e) => return Ok(bad_handle_return(profile, e, TRUE)),
    };
    match k.procs.thread_mut(tid) {
        Ok(t) => {
            t.priority = priority;
            Ok(ApiReturn::ok(TRUE))
        }
        Err(e) => Ok(ApiReturn::err(FALSE, errors::from_process(e))),
    }
}

/// `GetExitCodeThread(hThread, lpExitCode)` — `STILL_ACTIVE` (259) for
/// running threads.
///
/// # Errors
///
/// An SEH abort when the exit-code pointer faults under probing.
pub fn GetExitCodeThread(k: &mut Kernel, profile: Win32Profile, h: Handle, code_out: SimPtr) -> ApiResult {
    k.charge_call_to(Subsystem::Process);
    let tid = match thread_tid(k, h) {
        Ok(t) => t,
        Err(e) => return Ok(bad_handle_return(profile, e, TRUE)),
    };
    let code = match k.procs.thread(tid) {
        Ok(t) => match t.state {
            sim_kernel::process::RunState::Exited(c) => c,
            _ => 259, // STILL_ACTIVE
        },
        Err(e) => return Ok(ApiReturn::err(FALSE, errors::from_process(e))),
    };
    let out = write_out(
        k,
        profile,
        "GetExitCodeThread",
        true,
        code_out,
        &code.to_le_bytes(),
    )?;
    Ok(finish_out(out, TRUE))
}

/// Shared implementation of the interlocked primitives.
///
/// On desktop Windows these are user-mode `lock xadd`/`xchg` instructions:
/// a hostile pointer is a plain access violation (Abort). On Windows CE
/// they trap into the kernel, which performs the read-modify-write with no
/// probing — the `*Interlocked*` Catastrophic entries of Table 3.
fn interlocked(
    k: &mut Kernel,
    profile: Win32Profile,
    call: &'static str,
    addend: SimPtr,
    f: impl FnOnce(i32) -> i32,
    ret_new: bool,
) -> ApiResult {
    k.charge_call_to(Subsystem::Process);
    if profile.vulnerability_fires_on(call, k) {
        // CE kernel path: unprobed kernel-mode RMW.
        let old = match k.space.read_i32_priv(addend, PrivilegeLevel::Kernel) {
            Ok(v) => v,
            Err(fault) => {
                k.crash
                    .panic(call, "kernel-mode interlocked access through wild pointer", Some(fault));
                return Ok(ApiReturn::ok(0));
            }
        };
        let new = f(old);
        if let Err(fault) = k.space.write_i32_priv(addend, new, PrivilegeLevel::Kernel) {
            k.crash.panic(call, "kernel-mode interlocked writeback faulted", Some(fault));
            return Ok(ApiReturn::ok(0));
        }
        return Ok(ApiReturn::ok(i64::from(if ret_new { new } else { old })));
    }
    let old = k.space.read_i32(addend).map_err(exception)?;
    let new = f(old);
    k.space.write_i32(addend, new).map_err(exception)?;
    Ok(ApiReturn::ok(i64::from(if ret_new { new } else { old })))
}

/// `InterlockedIncrement(lpAddend)`.
///
/// # Errors
///
/// An SEH abort on desktop variants for hostile pointers; Catastrophic on
/// CE with residue (Table 3 `*InterlockedIncrement`).
pub fn InterlockedIncrement(k: &mut Kernel, profile: Win32Profile, addend: SimPtr) -> ApiResult {
    interlocked(k, profile, "InterlockedIncrement", addend, |v| v.wrapping_add(1), true)
}

/// `InterlockedDecrement(lpAddend)`.
///
/// # Errors
///
/// Same conditions as [`InterlockedIncrement`].
pub fn InterlockedDecrement(k: &mut Kernel, profile: Win32Profile, addend: SimPtr) -> ApiResult {
    interlocked(k, profile, "InterlockedDecrement", addend, |v| v.wrapping_sub(1), true)
}

/// `InterlockedExchange(lpTarget, lValue)` — returns the old value.
///
/// # Errors
///
/// Same conditions as [`InterlockedIncrement`].
pub fn InterlockedExchange(
    k: &mut Kernel,
    profile: Win32Profile,
    target: SimPtr,
    value: i32,
) -> ApiResult {
    interlocked(k, profile, "InterlockedExchange", target, move |_| value, false)
}

/// `Sleep(dwMilliseconds)` — advances simulated time; `INFINITE` hangs
/// (Restart), as a real `Sleep(INFINITE)` does.
///
/// # Errors
///
/// [`ApiAbort::Hang`](sim_kernel::ApiAbort::Hang) for `INFINITE`.
pub fn Sleep(k: &mut Kernel, _profile: Win32Profile, ms: u32) -> ApiResult {
    k.charge_call_to(Subsystem::Process);
    if ms == sim_kernel::sync::INFINITE {
        return Err(sim_kernel::ApiAbort::Hang);
    }
    k.clock.advance_ms(u64::from(ms.min(60_000)));
    Ok(ApiReturn::ok(0))
}

/// `SleepEx(dwMilliseconds, bAlertable)` — like [`Sleep`], but the delay
/// runs through the kernel step loop ([`Kernel::step_for`]), so the full
/// duration is charged against the watchdog's fuel budget. A hostile
/// near-`INFINITE` duration (the pools' `0xFFFFFFFE`) therefore exhausts
/// the budget and surfaces as a hang the harness tallies as Restart —
/// without wedging the worker that ran it.
///
/// # Errors
///
/// [`ApiAbort::Hang`](sim_kernel::ApiAbort::Hang) for `INFINITE`, and for
/// any duration the per-case fuel budget cannot cover.
pub fn SleepEx(k: &mut Kernel, _profile: Win32Profile, ms: u32, _alertable: u32) -> ApiResult {
    k.charge_call_to(Subsystem::Process);
    if ms == sim_kernel::sync::INFINITE {
        return Err(sim_kernel::ApiAbort::Hang);
    }
    k.step_for(u64::from(ms))?;
    Ok(ApiReturn::ok(0))
}

/// `AttachThreadInput(idAttach, idAttachTo, fAttach)` — grouped by the
/// paper under I/O Primitives (it wires message queues together).
///
/// # Errors
///
/// None; unknown thread ids are robust errors.
pub fn AttachThreadInput(
    k: &mut Kernel,
    _profile: Win32Profile,
    id_attach: u32,
    id_attach_to: u32,
    _attach: u32,
) -> ApiResult {
    k.charge_call_to(Subsystem::Process);
    if id_attach == id_attach_to {
        return Ok(ApiReturn::err(FALSE, ERROR_INVALID_PARAMETER));
    }
    let known = k.procs.thread(id_attach).is_ok() && k.procs.thread(id_attach_to).is_ok();
    if known {
        Ok(ApiReturn::ok(TRUE))
    } else {
        Ok(ApiReturn::err(FALSE, ERROR_INVALID_PARAMETER))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_kernel::kernel::MachineFlavor;
    use sim_kernel::variant::OsVariant;

    fn nt() -> Win32Profile {
        Win32Profile::for_os(OsVariant::WinNt4)
    }

    fn w98() -> Win32Profile {
        Win32Profile::for_os(OsVariant::Win98)
    }

    fn ce() -> Win32Profile {
        Win32Profile::for_os(OsVariant::WinCe)
    }

    fn wk() -> Kernel {
        Kernel::with_flavor(MachineFlavor::Windows)
    }

    #[test]
    fn listing_1_crashes_9x_families_not_nt() {
        // GetThreadContext(GetCurrentThread(), NULL);
        for os in [OsVariant::Win95, OsVariant::Win98, OsVariant::Win98Se, OsVariant::WinCe] {
            let mut k = Kernel::with_flavor(os.machine_flavor());
            let p = Win32Profile::for_os(os);
            let h = Handle(GetCurrentThread(&mut k, p).unwrap().value as u32);
            let _ = GetThreadContext(&mut k, p, h, SimPtr::NULL).unwrap();
            assert!(!k.is_alive(), "{os} must die on Listing 1");
            assert_eq!(k.crash.info().unwrap().call, "GetThreadContext");
        }
        for os in [OsVariant::WinNt4, OsVariant::Win2000] {
            let mut k = wk();
            let p = Win32Profile::for_os(os);
            let h = Handle(GetCurrentThread(&mut k, p).unwrap().value as u32);
            let err = GetThreadContext(&mut k, p, h, SimPtr::NULL).unwrap_err();
            assert!(matches!(err, sim_kernel::ApiAbort::Exception { .. }));
            assert!(k.is_alive(), "{os} must survive Listing 1");
        }
    }

    #[test]
    fn get_thread_context_valid_pointer_works_everywhere() {
        for os in [OsVariant::Win95, OsVariant::WinNt4] {
            let mut k = wk();
            let p = Win32Profile::for_os(os);
            let ctx = k.alloc_user(ThreadContext::SIZE, "ctx");
            let r = GetThreadContext(&mut k, p, Handle::CURRENT_THREAD, ctx).unwrap();
            assert_eq!(r.value, TRUE);
            assert!(k.is_alive());
            // eip (field 8) is nonzero in a fresh thread.
            assert_ne!(k.space.read_u32(ctx.offset(32)).unwrap(), 0);
        }
    }

    #[test]
    fn set_thread_context_splits() {
        // CE: kernel-read of a wild pointer kills the machine.
        let mut k = Kernel::with_flavor(MachineFlavor::WindowsStrictAlign);
        let _ = SetThreadContext(&mut k, ce(), Handle::CURRENT_THREAD, SimPtr::new(0x50)).unwrap();
        assert!(!k.is_alive());
        // 98: user-mode read aborts, machine survives.
        let mut k2 = wk();
        assert!(SetThreadContext(&mut k2, w98(), Handle::CURRENT_THREAD, SimPtr::new(0x50)).is_err());
        assert!(k2.is_alive());
        // Roundtrip with a valid block.
        let mut k3 = wk();
        let ctx = k3.alloc_user(ThreadContext::SIZE, "ctx");
        GetThreadContext(&mut k3, nt(), Handle::CURRENT_THREAD, ctx).unwrap();
        k3.space.write_u32(ctx, 0x1234).unwrap(); // eax
        assert_eq!(
            SetThreadContext(&mut k3, nt(), Handle::CURRENT_THREAD, ctx).unwrap().value,
            TRUE
        );
        assert_eq!(
            k3.procs.thread(k3.procs.current_tid()).unwrap().context.eax,
            0x1234
        );
    }

    #[test]
    fn create_thread_basics_and_crash() {
        let mut k = wk();
        let start = k.alloc_user(16, "code");
        let tid_out = k.alloc_user(4, "tid");
        let r = CreateThread(&mut k, nt(), SimPtr::NULL, 0, start, SimPtr::NULL, 0, tid_out).unwrap();
        assert!(!r.reported_error());
        let tid = k.space.read_u32(tid_out).unwrap();
        assert!(k.procs.thread(tid).is_ok());
        // NULL start address: robust error.
        assert!(CreateThread(&mut k, nt(), SimPtr::NULL, 0, SimPtr::NULL, SimPtr::NULL, 0, tid_out)
            .unwrap()
            .reported_error());
        // 98 SE + residue + hostile tid pointer: Catastrophic.
        let se = Win32Profile::for_os(OsVariant::Win98Se);
        let mut k2 = wk();
        k2.residue = 5;
        let start2 = k2.alloc_user(16, "code");
        let _ = CreateThread(&mut k2, se, SimPtr::NULL, 0, start2, SimPtr::NULL, 0, SimPtr::new(0x30))
            .unwrap();
        assert!(!k2.is_alive());
        // Plain 98 with residue: silent skip, alive.
        let mut k3 = wk();
        k3.residue = 5;
        let start3 = k3.alloc_user(16, "code");
        let r = CreateThread(&mut k3, w98(), SimPtr::NULL, 0, start3, SimPtr::NULL, 0, SimPtr::new(0x30))
            .unwrap();
        assert!(!r.reported_error());
        assert!(k3.is_alive());
    }

    #[test]
    fn suspend_resume_priority() {
        let mut k = wk();
        let start = k.alloc_user(4, "code");
        let r = CreateThread(&mut k, nt(), SimPtr::NULL, 0, start, SimPtr::NULL, 4, SimPtr::NULL)
            .unwrap();
        let h = Handle(r.value as u32);
        // Created suspended: previous count 1 when suspended again.
        assert_eq!(SuspendThread(&mut k, nt(), h).unwrap().value, 1);
        assert_eq!(ResumeThread(&mut k, nt(), h).unwrap().value, 2);
        assert_eq!(ResumeThread(&mut k, nt(), h).unwrap().value, 1);
        assert_eq!(SetThreadPriority(&mut k, nt(), h, 2).unwrap().value, TRUE);
        assert_eq!(GetThreadPriority(&mut k, nt(), h).unwrap().value, 2);
        assert!(SetThreadPriority(&mut k, nt(), h, 77).unwrap().reported_error());
        let code_out = k.alloc_user(4, "exit");
        GetExitCodeThread(&mut k, nt(), h, code_out).unwrap();
        assert_eq!(k.space.read_u32(code_out).unwrap(), 259); // STILL_ACTIVE
        assert_eq!(TerminateThread(&mut k, nt(), h, 9).unwrap().value, TRUE);
        GetExitCodeThread(&mut k, nt(), h, code_out).unwrap();
        assert_eq!(k.space.read_u32(code_out).unwrap(), 9);
    }

    #[test]
    fn interlocked_matrix() {
        // Desktop happy path.
        let mut k = wk();
        let cell = k.alloc_user(4, "cell");
        k.space.write_i32(cell, 10).unwrap();
        assert_eq!(InterlockedIncrement(&mut k, nt(), cell).unwrap().value, 11);
        assert_eq!(InterlockedDecrement(&mut k, nt(), cell).unwrap().value, 10);
        assert_eq!(InterlockedExchange(&mut k, nt(), cell, 99).unwrap().value, 10);
        assert_eq!(k.space.read_i32(cell).unwrap(), 99);
        // Desktop hostile pointer: abort everywhere, even 9x.
        assert!(InterlockedIncrement(&mut k, nt(), SimPtr::NULL).is_err());
        assert!(InterlockedIncrement(&mut k, w98(), SimPtr::NULL).is_err());
        assert!(k.is_alive());
        // CE + residue: Catastrophic.
        let mut kce = Kernel::with_flavor(MachineFlavor::WindowsStrictAlign);
        kce.residue = 5;
        let _ = InterlockedIncrement(&mut kce, ce(), SimPtr::NULL).unwrap();
        assert!(!kce.is_alive());
        // CE without residue: abort only.
        let mut kce2 = Kernel::with_flavor(MachineFlavor::WindowsStrictAlign);
        assert!(InterlockedExchange(&mut kce2, ce(), SimPtr::NULL, 5).is_err());
        assert!(kce2.is_alive());
    }

    #[test]
    fn sleep_semantics() {
        let mut k = wk();
        let t0 = k.clock.tick_count_ms();
        assert_eq!(Sleep(&mut k, nt(), 100).unwrap().value, 0);
        assert!(k.clock.tick_count_ms() >= t0 + 100);
        let err = Sleep(&mut k, nt(), sim_kernel::sync::INFINITE).unwrap_err();
        assert!(err.is_hang());
    }

    #[test]
    fn attach_thread_input() {
        let mut k = wk();
        let me = k.procs.current_tid();
        let other = k.procs.spawn_thread(k.procs.current_pid()).unwrap();
        assert_eq!(AttachThreadInput(&mut k, nt(), me, other, 1).unwrap().value, TRUE);
        assert!(AttachThreadInput(&mut k, nt(), me, me, 1).unwrap().reported_error());
        assert!(AttachThreadInput(&mut k, nt(), me, 0xFFFF, 1).unwrap().reported_error());
    }
}
