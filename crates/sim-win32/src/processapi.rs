//! Processes: creation, termination, exit codes, priority classes.

use sim_kernel::Subsystem;
use crate::errors::{self, ERROR_FILE_NOT_FOUND, ERROR_INVALID_PARAMETER};
use crate::marshal::{
    bad_handle_return, finish_out, read_string, write_out, FALSE, TRUE,
};
use crate::profile::Win32Profile;
use sim_core::SimPtr;
use sim_kernel::objects::{Handle, HandleError, ObjectKind};
use sim_kernel::outcome::{ApiResult, ApiReturn};
use sim_kernel::Kernel;

fn process_pid(k: &Kernel, h: Handle) -> Result<u32, HandleError> {
    if h == Handle::CURRENT_PROCESS {
        return Ok(k.procs.current_pid());
    }
    match k.objects.get(h)? {
        ObjectKind::Process(pid) => Ok(*pid),
        other => Err(HandleError::WrongType {
            actual: other.type_name(),
        }),
    }
}

/// `GetCurrentProcess()` — the pseudo-handle.
///
/// # Errors
///
/// None.
pub fn GetCurrentProcess(k: &mut Kernel, _profile: Win32Profile) -> ApiResult {
    k.charge_call_to(Subsystem::Process);
    Ok(ApiReturn::ok(i64::from(Handle::CURRENT_PROCESS.raw())))
}

/// `GetCurrentProcessId()`.
///
/// # Errors
///
/// None.
pub fn GetCurrentProcessId(k: &mut Kernel, _profile: Win32Profile) -> ApiResult {
    k.charge_call_to(Subsystem::Process);
    Ok(ApiReturn::ok(i64::from(k.procs.current_pid())))
}

/// `CreateProcess(lpApplicationName, lpCommandLine, …,
/// lpProcessInformation)` — 10 parameters on real Win32; the simulation
/// keeps the six that carry robustness behaviour.
///
/// # Errors
///
/// An SEH abort when a non-NULL name/command string or the
/// `PROCESS_INFORMATION` block faults.
pub fn CreateProcess(
    k: &mut Kernel,
    profile: Win32Profile,
    application_name: SimPtr,
    command_line: SimPtr,
    _creation_flags: u32,
    _environment: SimPtr,
    startup_info: SimPtr,
    process_info_out: SimPtr,
) -> ApiResult {
    k.charge_call_to(Subsystem::Process);
    // One of the two name arguments must be present; both are scanned.
    let app = if application_name.is_null() {
        None
    } else {
        Some(read_string(k, application_name)?)
    };
    let cmd = if command_line.is_null() {
        None
    } else {
        Some(read_string(k, command_line)?)
    };
    let Some(image) = app.or(cmd) else {
        return Ok(ApiReturn::err(FALSE, ERROR_INVALID_PARAMETER));
    };
    // Real CreateProcess reads STARTUPINFO.cb first.
    if !startup_info.is_null() {
        let _cb = k
            .space
            .read_u32(startup_info)
            .map_err(crate::marshal::exception)?;
    }
    let exe = image.split_whitespace().next().unwrap_or(&image);
    // The image must exist on the simulated filesystem (the world has a
    // couple of knowable binaries; anything else is ERROR_FILE_NOT_FOUND).
    if !k.fs.exists(exe) {
        return Ok(ApiReturn::err(FALSE, ERROR_FILE_NOT_FOUND));
    }
    let pid = k.procs.spawn_process(k.procs.current_pid(), exe);
    let tid = k.procs.process(pid).expect("spawned").threads[0];
    let ph = k.objects.insert(ObjectKind::Process(pid));
    let th = k.objects.insert(ObjectKind::Thread(tid));
    // PROCESS_INFORMATION { hProcess, hThread, dwProcessId, dwThreadId }.
    let mut info = Vec::with_capacity(16);
    info.extend_from_slice(&ph.raw().to_le_bytes());
    info.extend_from_slice(&th.raw().to_le_bytes());
    info.extend_from_slice(&pid.to_le_bytes());
    info.extend_from_slice(&tid.to_le_bytes());
    let out = write_out(k, profile, "CreateProcess", false, process_info_out, &info)?;
    Ok(finish_out(out, TRUE))
}

/// `OpenProcess(dwDesiredAccess, bInheritHandle, dwProcessId)`.
///
/// # Errors
///
/// None; unknown pids return errors.
pub fn OpenProcess(
    k: &mut Kernel,
    _profile: Win32Profile,
    _desired_access: u32,
    _inherit: u32,
    pid: u32,
) -> ApiResult {
    k.charge_call_to(Subsystem::Process);
    if k.procs.process(pid).is_err() {
        return Ok(ApiReturn::err(0, ERROR_INVALID_PARAMETER));
    }
    let h = k.objects.insert(ObjectKind::Process(pid));
    Ok(ApiReturn::ok(i64::from(h.raw())))
}

/// `TerminateProcess(hProcess, uExitCode)`.
///
/// The pseudo-handle (terminating yourself) is modelled as an error so the
/// harness survives; the paper's harness equally treated self-termination
/// as a test-ending event, not a crash.
///
/// # Errors
///
/// None.
pub fn TerminateProcess(k: &mut Kernel, profile: Win32Profile, h: Handle, exit_code: u32) -> ApiResult {
    k.charge_call_to(Subsystem::Process);
    let pid = match process_pid(k, h) {
        Ok(p) => p,
        Err(e) => return Ok(bad_handle_return(profile, e, TRUE)),
    };
    match k.procs.terminate(pid, exit_code) {
        Ok(()) => Ok(ApiReturn::ok(TRUE)),
        Err(e) => Ok(ApiReturn::err(FALSE, errors::from_process(e))),
    }
}

/// `GetExitCodeProcess(hProcess, lpExitCode)`.
///
/// # Errors
///
/// An SEH abort when the exit-code pointer faults under probing.
pub fn GetExitCodeProcess(k: &mut Kernel, profile: Win32Profile, h: Handle, code_out: SimPtr) -> ApiResult {
    k.charge_call_to(Subsystem::Process);
    let pid = match process_pid(k, h) {
        Ok(p) => p,
        Err(e) => return Ok(bad_handle_return(profile, e, TRUE)),
    };
    let code = match k.procs.process(pid) {
        Ok(p) => match p.state {
            sim_kernel::process::RunState::Exited(c) => c,
            _ => 259, // STILL_ACTIVE
        },
        Err(e) => return Ok(ApiReturn::err(FALSE, errors::from_process(e))),
    };
    let out = write_out(
        k,
        profile,
        "GetExitCodeProcess",
        true,
        code_out,
        &code.to_le_bytes(),
    )?;
    Ok(finish_out(out, TRUE))
}

/// `GetPriorityClass(hProcess)` — `NORMAL_PRIORITY_CLASS` (0x20) default.
///
/// # Errors
///
/// None.
pub fn GetPriorityClass(k: &mut Kernel, profile: Win32Profile, h: Handle) -> ApiResult {
    k.charge_call_to(Subsystem::Process);
    match process_pid(k, h) {
        Ok(pid) => {
            let cls = k
                .scratch
                .get(&format!("win32.prioclass.{pid}"))
                .copied()
                .unwrap_or(0x20);
            Ok(ApiReturn::ok(cls as i64))
        }
        Err(e) => Ok(match crate::marshal::handle_disposition(profile, e) {
            crate::marshal::BadHandle::SilentSuccess => ApiReturn::ok(0x20),
            crate::marshal::BadHandle::ErrorReturn(code) => ApiReturn::err(0, code),
        }),
    }
}

/// `SetPriorityClass(hProcess, dwPriorityClass)`.
///
/// # Errors
///
/// None; unknown class values are robust errors.
pub fn SetPriorityClass(k: &mut Kernel, profile: Win32Profile, h: Handle, class: u32) -> ApiResult {
    k.charge_call_to(Subsystem::Process);
    // IDLE=0x40, NORMAL=0x20, HIGH=0x80, REALTIME=0x100.
    if !matches!(class, 0x20 | 0x40 | 0x80 | 0x100) {
        return Ok(ApiReturn::err(FALSE, ERROR_INVALID_PARAMETER));
    }
    match process_pid(k, h) {
        Ok(pid) => {
            k.scratch
                .insert(format!("win32.prioclass.{pid}"), u64::from(class));
            Ok(ApiReturn::ok(TRUE))
        }
        Err(e) => Ok(bad_handle_return(profile, e, TRUE)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::addr::PrivilegeLevel;
    use sim_core::cstr;
    use sim_kernel::kernel::MachineFlavor;
    use sim_kernel::variant::OsVariant;

    fn nt() -> Win32Profile {
        Win32Profile::for_os(OsVariant::WinNt4)
    }

    fn w98() -> Win32Profile {
        Win32Profile::for_os(OsVariant::Win98)
    }

    fn wk() -> Kernel {
        Kernel::with_flavor(MachineFlavor::Windows)
    }

    fn put(k: &mut Kernel, s: &str) -> SimPtr {
        let p = k.alloc_user(s.len() as u64 + 1, "str");
        cstr::write_cstr(&mut k.space, p, s, PrivilegeLevel::User).unwrap();
        p
    }

    #[test]
    fn create_process_lifecycle() {
        let mut k = wk();
        let image = put(&mut k, "C:\\WINDOWS\\README.TXT"); // an existing "image"
        let pi = k.alloc_user(16, "pi");
        let si = k.alloc_user(68, "si");
        k.space.write_u32(si, 68).unwrap();
        let r = CreateProcess(&mut k, nt(), image, SimPtr::NULL, 0, SimPtr::NULL, si, pi).unwrap();
        assert_eq!(r.value, TRUE);
        let ph = Handle(k.space.read_u32(pi).unwrap());
        let pid = k.space.read_u32(pi.offset(8)).unwrap();
        assert!(k.procs.process(pid).is_ok());
        // Exit-code protocol.
        let code = k.alloc_user(4, "code");
        GetExitCodeProcess(&mut k, nt(), ph, code).unwrap();
        assert_eq!(k.space.read_u32(code).unwrap(), 259);
        assert_eq!(TerminateProcess(&mut k, nt(), ph, 42).unwrap().value, TRUE);
        GetExitCodeProcess(&mut k, nt(), ph, code).unwrap();
        assert_eq!(k.space.read_u32(code).unwrap(), 42);
        // Terminating again: robust error.
        assert!(TerminateProcess(&mut k, nt(), ph, 0).unwrap().reported_error());
    }

    #[test]
    fn create_process_error_paths() {
        let mut k = wk();
        let pi = k.alloc_user(16, "pi");
        // Both names NULL.
        let r = CreateProcess(&mut k, nt(), SimPtr::NULL, SimPtr::NULL, 0, SimPtr::NULL, SimPtr::NULL, pi)
            .unwrap();
        assert_eq!(r.error, Some(ERROR_INVALID_PARAMETER));
        // Missing image.
        let ghost = put(&mut k, "C:\\GHOST.EXE");
        let r = CreateProcess(&mut k, nt(), ghost, SimPtr::NULL, 0, SimPtr::NULL, SimPtr::NULL, pi)
            .unwrap();
        assert_eq!(r.error, Some(ERROR_FILE_NOT_FOUND));
        // Hostile name pointer: abort.
        assert!(CreateProcess(
            &mut k,
            nt(),
            SimPtr::new(0x30),
            SimPtr::NULL,
            0,
            SimPtr::NULL,
            SimPtr::NULL,
            pi
        )
        .is_err());
        // Hostile PROCESS_INFORMATION on NT: abort; on 98: silent.
        let image = put(&mut k, "C:\\WINDOWS\\README.TXT");
        assert!(CreateProcess(
            &mut k,
            nt(),
            image,
            SimPtr::NULL,
            0,
            SimPtr::NULL,
            SimPtr::NULL,
            SimPtr::new(0x30)
        )
        .is_err());
        // 98 writes the PROCESS_INFORMATION block eagerly too
        // (lazy_on_9x = false): also an abort, and the machine survives.
        assert!(CreateProcess(
            &mut k,
            w98(),
            image,
            SimPtr::NULL,
            0,
            SimPtr::NULL,
            SimPtr::NULL,
            SimPtr::new(0x30),
        )
        .is_err());
        assert!(k.is_alive());
    }

    #[test]
    fn open_process_and_priority() {
        let mut k = wk();
        let child = k.procs.spawn_process(k.procs.current_pid(), "child");
        let r = OpenProcess(&mut k, nt(), 0x1F_0FFF, 0, child).unwrap();
        assert!(!r.reported_error());
        let h = Handle(r.value as u32);
        assert_eq!(GetPriorityClass(&mut k, nt(), h).unwrap().value, 0x20);
        assert_eq!(SetPriorityClass(&mut k, nt(), h, 0x80).unwrap().value, TRUE);
        assert_eq!(GetPriorityClass(&mut k, nt(), h).unwrap().value, 0x80);
        assert!(SetPriorityClass(&mut k, nt(), h, 0x33).unwrap().reported_error());
        assert!(OpenProcess(&mut k, nt(), 0, 0, 0xDEAD).unwrap().reported_error());
        // Pseudo-handle accepted.
        assert_eq!(
            GetPriorityClass(&mut k, nt(), Handle::CURRENT_PROCESS).unwrap().value,
            0x20
        );
    }

    #[test]
    fn current_process_identity() {
        let mut k = wk();
        assert_eq!(
            GetCurrentProcess(&mut k, nt()).unwrap().value as u32,
            Handle::CURRENT_PROCESS.raw()
        );
        assert_eq!(
            GetCurrentProcessId(&mut k, nt()).unwrap().value as u32,
            k.procs.current_pid()
        );
    }
}
