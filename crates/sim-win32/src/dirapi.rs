//! File and directory access: create/remove/copy/move, attribute and path
//! queries, and the `FindFirstFile` search family — the paper's
//! *File/Directory Access* grouping.

use sim_kernel::Subsystem;
use crate::errors::{
    self, ERROR_FILE_NOT_FOUND, ERROR_INSUFFICIENT_BUFFER, ERROR_NO_MORE_FILES,
};
use crate::marshal::{bad_handle_return, finish_out, read_string, write_out, FALSE, TRUE};
use crate::profile::Win32Profile;
use sim_core::SimPtr;
use sim_kernel::fs::OpenOptions;
use sim_kernel::objects::{Handle, ObjectKind};
use sim_kernel::outcome::{ApiResult, ApiReturn};
use sim_kernel::Kernel;

/// `INVALID_FILE_ATTRIBUTES`.
pub const INVALID_FILE_ATTRIBUTES: i64 = -1;
/// `FILE_ATTRIBUTE_READONLY`.
pub const FILE_ATTRIBUTE_READONLY: u32 = 0x1;
/// `FILE_ATTRIBUTE_DIRECTORY`.
pub const FILE_ATTRIBUTE_DIRECTORY: u32 = 0x10;
/// `FILE_ATTRIBUTE_NORMAL`.
pub const FILE_ATTRIBUTE_NORMAL: u32 = 0x80;

/// Offset of the filename field in the simulated `WIN32_FIND_DATA`.
pub const FIND_DATA_NAME_OFFSET: u64 = 44;
/// Size of the simulated `WIN32_FIND_DATA` (attributes word + reserved
/// area + 260-byte `cFileName`).
pub const FIND_DATA_SIZE: u64 = FIND_DATA_NAME_OFFSET + 260;

const CWD_KEY: &str = "__WIN32_CWD";

fn cwd(k: &Kernel) -> String {
    k.env.get(CWD_KEY).unwrap_or("C:\\TEMP").to_owned()
}

/// `CreateDirectory(lpPathName, lpSecurityAttributes)`.
///
/// # Errors
///
/// An SEH abort when the path faults.
pub fn CreateDirectory(
    k: &mut Kernel,
    _profile: Win32Profile,
    path: SimPtr,
    _security: SimPtr,
) -> ApiResult {
    k.charge_call_to(Subsystem::Fs);
    let name = read_string(k, path)?;
    match k.fs.mkdir(&name) {
        Ok(()) => Ok(ApiReturn::ok(TRUE)),
        Err(e) => Ok(ApiReturn::err(FALSE, errors::from_fs(e))),
    }
}

/// `CreateDirectoryEx(lpTemplateDirectory, lpNewDirectory, lpSecurity)` —
/// the template's attributes are copied; it must exist.
///
/// # Errors
///
/// An SEH abort when either path faults.
pub fn CreateDirectoryEx(
    k: &mut Kernel,
    profile: Win32Profile,
    template: SimPtr,
    new_dir: SimPtr,
    security: SimPtr,
) -> ApiResult {
    k.charge_call_to(Subsystem::Fs);
    let tmpl = read_string(k, template)?;
    match k.fs.stat(&tmpl) {
        Ok(s) if s.is_dir => {}
        Ok(_) => return Ok(ApiReturn::err(FALSE, errors::ERROR_PATH_NOT_FOUND)),
        Err(e) => return Ok(ApiReturn::err(FALSE, errors::from_fs(e))),
    }
    CreateDirectory(k, profile, new_dir, security)
}

/// `RemoveDirectory(lpPathName)`.
///
/// # Errors
///
/// An SEH abort when the path faults.
pub fn RemoveDirectory(k: &mut Kernel, _profile: Win32Profile, path: SimPtr) -> ApiResult {
    k.charge_call_to(Subsystem::Fs);
    let name = read_string(k, path)?;
    match k.fs.rmdir(&name) {
        Ok(()) => Ok(ApiReturn::ok(TRUE)),
        Err(e) => Ok(ApiReturn::err(FALSE, errors::from_fs(e))),
    }
}

/// `DeleteFile(lpFileName)`.
///
/// # Errors
///
/// An SEH abort when the path faults.
pub fn DeleteFile(k: &mut Kernel, _profile: Win32Profile, path: SimPtr) -> ApiResult {
    k.charge_call_to(Subsystem::Fs);
    let name = read_string(k, path)?;
    match k.fs.unlink(&name) {
        Ok(()) => Ok(ApiReturn::ok(TRUE)),
        Err(e) => Ok(ApiReturn::err(FALSE, errors::from_fs(e))),
    }
}

/// `CopyFile(lpExisting, lpNew, bFailIfExists)`.
///
/// # Errors
///
/// An SEH abort when either path faults.
pub fn CopyFile(
    k: &mut Kernel,
    _profile: Win32Profile,
    existing: SimPtr,
    new: SimPtr,
    fail_if_exists: u32,
) -> ApiResult {
    k.charge_call_to(Subsystem::Fs);
    let from = read_string(k, existing)?;
    let to = read_string(k, new)?;
    let ofd = match k.fs.open(&from, OpenOptions::read_only()) {
        Ok(ofd) => ofd,
        Err(e) => return Ok(ApiReturn::err(FALSE, errors::from_fs(e))),
    };
    let size = k.fs.size_of(ofd).unwrap_or(0);
    let mut content = vec![0u8; size as usize];
    let _ = k.fs.read(ofd, &mut content);
    let _ = k.fs.close(ofd);
    if k.fs.exists(&to) {
        if fail_if_exists != 0 {
            return Ok(ApiReturn::err(FALSE, errors::ERROR_FILE_EXISTS));
        }
        let _ = k.fs.unlink(&to);
    }
    match k.fs.create_file(&to, content) {
        Ok(()) => Ok(ApiReturn::ok(TRUE)),
        Err(e) => Ok(ApiReturn::err(FALSE, errors::from_fs(e))),
    }
}

/// `MoveFile(lpExisting, lpNew)`.
///
/// # Errors
///
/// An SEH abort when either path faults.
pub fn MoveFile(k: &mut Kernel, _profile: Win32Profile, existing: SimPtr, new: SimPtr) -> ApiResult {
    k.charge_call_to(Subsystem::Fs);
    let from = read_string(k, existing)?;
    let to = read_string(k, new)?;
    match k.fs.rename(&from, &to) {
        Ok(()) => Ok(ApiReturn::ok(TRUE)),
        Err(e) => Ok(ApiReturn::err(FALSE, errors::from_fs(e))),
    }
}

/// `MoveFileEx(lpExisting, lpNew, dwFlags)` — `MOVEFILE_REPLACE_EXISTING`
/// (1) is honoured.
///
/// # Errors
///
/// An SEH abort when either path faults.
pub fn MoveFileEx(
    k: &mut Kernel,
    profile: Win32Profile,
    existing: SimPtr,
    new: SimPtr,
    flags: u32,
) -> ApiResult {
    k.charge_call_to(Subsystem::Fs);
    if flags & 1 != 0 {
        let to = read_string(k, new)?;
        if k.fs.exists(&to) {
            let _ = k.fs.unlink(&to);
        }
    }
    MoveFile(k, profile, existing, new)
}

fn write_find_data(
    k: &mut Kernel,
    profile: Win32Profile,
    out: SimPtr,
    name: &str,
    is_dir: bool,
) -> Result<crate::marshal::OutWrite, sim_kernel::ApiAbort> {
    let mut block = vec![0u8; FIND_DATA_SIZE as usize];
    let attrs = if is_dir {
        FILE_ATTRIBUTE_DIRECTORY
    } else {
        FILE_ATTRIBUTE_NORMAL
    };
    block[..4].copy_from_slice(&attrs.to_le_bytes());
    let name_bytes = name.as_bytes();
    let n = name_bytes.len().min(259);
    block[FIND_DATA_NAME_OFFSET as usize..FIND_DATA_NAME_OFFSET as usize + n]
        .copy_from_slice(&name_bytes[..n]);
    write_out(k, profile, "FindFirstFile", false, out, &block)
}

/// `FindFirstFile(lpFileName, lpFindFileData)` — supports a literal path
/// or a trailing `\*` wildcard.
///
/// # Errors
///
/// An SEH abort when the pattern string or the find-data block faults.
pub fn FindFirstFile(
    k: &mut Kernel,
    profile: Win32Profile,
    pattern: SimPtr,
    find_data_out: SimPtr,
) -> ApiResult {
    k.charge_call_to(Subsystem::Fs);
    let pat = read_string(k, pattern)?;
    let invalid = i64::from(Handle::INVALID.raw());
    let (dir, leaf_filter): (String, Option<String>) = match pat.rsplit_once(['\\', '/']) {
        Some((d, leaf)) if leaf.contains('*') => (d.to_owned(), None),
        _ => {
            // Literal file.
            match k.fs.stat(&pat) {
                Ok(s) => {
                    let leaf = pat
                        .rsplit(['\\', '/'])
                        .next()
                        .unwrap_or(&pat)
                        .to_owned();
                    let out = write_find_data(k, profile, find_data_out, &leaf, s.is_dir)?;
                    if let crate::marshal::OutWrite::ErrorReturn(code) = out {
                        return Ok(ApiReturn::err(invalid, code));
                    }
                    let h = k.objects.insert(ObjectKind::FindSearch {
                        entries: Vec::new(),
                        cursor: 0,
                    });
                    return Ok(ApiReturn::ok(i64::from(h.raw())));
                }
                Err(e) => return Ok(ApiReturn::err(invalid, errors::from_fs(e))),
            }
        }
    };
    let _ = leaf_filter;
    let names = match k.fs.list_dir(&dir) {
        Ok(n) => n,
        Err(e) => return Ok(ApiReturn::err(invalid, errors::from_fs(e))),
    };
    if names.is_empty() {
        return Ok(ApiReturn::err(invalid, ERROR_FILE_NOT_FOUND));
    }
    let full_first = format!("{dir}\\{}", names[0]);
    let first_is_dir = k.fs.stat(&full_first).map(|s| s.is_dir).unwrap_or(false);
    let out = write_find_data(k, profile, find_data_out, &names[0], first_is_dir)?;
    if let crate::marshal::OutWrite::ErrorReturn(code) = out {
        return Ok(ApiReturn::err(invalid, code));
    }
    let h = k.objects.insert(ObjectKind::FindSearch {
        entries: names,
        cursor: 1,
    });
    Ok(ApiReturn::ok(i64::from(h.raw())))
}

/// `FindNextFile(hFindFile, lpFindFileData)`.
///
/// # Errors
///
/// An SEH abort when the find-data block faults under probing.
pub fn FindNextFile(
    k: &mut Kernel,
    profile: Win32Profile,
    h: Handle,
    find_data_out: SimPtr,
) -> ApiResult {
    k.charge_call_to(Subsystem::Fs);
    let next = match k.objects.get_mut(h) {
        Ok(ObjectKind::FindSearch { entries, cursor }) => {
            if *cursor >= entries.len() {
                None
            } else {
                let name = entries[*cursor].clone();
                *cursor += 1;
                Some(name)
            }
        }
        Ok(_) => return Ok(ApiReturn::err(FALSE, errors::ERROR_INVALID_HANDLE)),
        Err(e) => return Ok(bad_handle_return(profile, e, TRUE)),
    };
    match next {
        Some(name) => {
            let out = write_find_data(k, profile, find_data_out, &name, false)?;
            Ok(finish_out(out, TRUE))
        }
        None => Ok(ApiReturn::err(FALSE, ERROR_NO_MORE_FILES)),
    }
}

/// `FindClose(hFindFile)`.
///
/// # Errors
///
/// None; bad handles return errors (or 9x silence).
pub fn FindClose(k: &mut Kernel, profile: Win32Profile, h: Handle) -> ApiResult {
    k.charge_call_to(Subsystem::Fs);
    match k.objects.get(h) {
        Ok(ObjectKind::FindSearch { .. }) => {
            let _ = k.objects.close(h);
            Ok(ApiReturn::ok(TRUE))
        }
        Ok(_) => Ok(ApiReturn::err(FALSE, errors::ERROR_INVALID_HANDLE)),
        Err(e) => Ok(bad_handle_return(profile, e, TRUE)),
    }
}

/// `GetFileAttributes(lpFileName)`.
///
/// # Errors
///
/// An SEH abort when the path faults.
pub fn GetFileAttributes(k: &mut Kernel, _profile: Win32Profile, path: SimPtr) -> ApiResult {
    k.charge_call_to(Subsystem::Fs);
    let name = read_string(k, path)?;
    match k.fs.stat(&name) {
        Ok(s) => {
            let mut attrs = 0u32;
            if s.is_dir {
                attrs |= FILE_ATTRIBUTE_DIRECTORY;
            }
            if s.attrs.readonly {
                attrs |= FILE_ATTRIBUTE_READONLY;
            }
            if attrs == 0 {
                attrs = FILE_ATTRIBUTE_NORMAL;
            }
            Ok(ApiReturn::ok(i64::from(attrs)))
        }
        Err(e) => Ok(ApiReturn::err(INVALID_FILE_ATTRIBUTES, errors::from_fs(e))),
    }
}

/// `SetFileAttributes(lpFileName, dwFileAttributes)`.
///
/// # Errors
///
/// An SEH abort when the path faults.
pub fn SetFileAttributes(
    k: &mut Kernel,
    _profile: Win32Profile,
    path: SimPtr,
    attrs: u32,
) -> ApiResult {
    k.charge_call_to(Subsystem::Fs);
    let name = read_string(k, path)?;
    match k.fs.set_readonly(&name, attrs & FILE_ATTRIBUTE_READONLY != 0) {
        Ok(()) => Ok(ApiReturn::ok(TRUE)),
        Err(e) => Ok(ApiReturn::err(FALSE, errors::from_fs(e))),
    }
}

/// Delivers a string result into a `(buffer, size)` pair with the Win32
/// "required length" convention.
fn string_result(
    k: &mut Kernel,
    profile: Win32Profile,
    call: &'static str,
    buffer: SimPtr,
    size: u32,
    value: &str,
) -> ApiResult {
    let needed = value.len() as u32 + 1;
    if u64::from(size) < u64::from(needed) {
        // Documented robust response: report the required size.
        return Ok(ApiReturn::err(i64::from(needed), ERROR_INSUFFICIENT_BUFFER));
    }
    let mut bytes = value.as_bytes().to_vec();
    bytes.push(0);
    let out = write_out(k, profile, call, true, buffer, &bytes)?;
    Ok(finish_out(out, i64::from(value.len() as u32)))
}

/// `GetCurrentDirectory(nBufferLength, lpBuffer)`.
///
/// # Errors
///
/// An SEH abort when the buffer faults under probing.
pub fn GetCurrentDirectory(
    k: &mut Kernel,
    profile: Win32Profile,
    size: u32,
    buffer: SimPtr,
) -> ApiResult {
    k.charge_call_to(Subsystem::Fs);
    let dir = cwd(k);
    string_result(k, profile, "GetCurrentDirectory", buffer, size, &dir)
}

/// `SetCurrentDirectory(lpPathName)`.
///
/// # Errors
///
/// An SEH abort when the path faults.
pub fn SetCurrentDirectory(k: &mut Kernel, _profile: Win32Profile, path: SimPtr) -> ApiResult {
    k.charge_call_to(Subsystem::Fs);
    let name = read_string(k, path)?;
    match k.fs.stat(&name) {
        Ok(s) if s.is_dir => {
            let _ = k.env.set(CWD_KEY, &name);
            Ok(ApiReturn::ok(TRUE))
        }
        Ok(_) => Ok(ApiReturn::err(FALSE, errors::ERROR_PATH_NOT_FOUND)),
        Err(e) => Ok(ApiReturn::err(FALSE, errors::from_fs(e))),
    }
}

/// `GetFullPathName(lpFileName, nBufferLength, lpBuffer, lpFilePart)`.
///
/// # Errors
///
/// An SEH abort when the filename or buffer faults.
pub fn GetFullPathName(
    k: &mut Kernel,
    profile: Win32Profile,
    path: SimPtr,
    size: u32,
    buffer: SimPtr,
    file_part_out: SimPtr,
) -> ApiResult {
    k.charge_call_to(Subsystem::Fs);
    let name = read_string(k, path)?;
    let full = if name.starts_with('\\') || name.starts_with('/') || name.get(1..2) == Some(":") {
        name.clone()
    } else {
        format!("{}\\{}", cwd(k), name)
    };
    let r = string_result(k, profile, "GetFullPathName", buffer, size, &full)?;
    if r.error.is_none() && !file_part_out.is_null() {
        let leaf_off = full.rfind(['\\', '/']).map(|i| i + 1).unwrap_or(0);
        let leaf_ptr = buffer.offset(leaf_off as u64);
        let out = write_out(
            k,
            profile,
            "GetFullPathName",
            true,
            file_part_out,
            &(leaf_ptr.addr() as u32).to_le_bytes(),
        )?;
        return Ok(finish_out(out, r.value));
    }
    Ok(r)
}

/// `GetTempPath(nBufferLength, lpBuffer)`.
///
/// # Errors
///
/// An SEH abort when the buffer faults under probing.
pub fn GetTempPath(k: &mut Kernel, profile: Win32Profile, size: u32, buffer: SimPtr) -> ApiResult {
    k.charge_call_to(Subsystem::Fs);
    string_result(k, profile, "GetTempPath", buffer, size, "C:\\TEMP\\")
}

/// `GetTempFileName(lpPathName, lpPrefixString, uUnique, lpTempFileName)` —
/// creates the file when `uUnique` is 0.
///
/// # Errors
///
/// An SEH abort when any of the three string pointers fault.
pub fn GetTempFileName(
    k: &mut Kernel,
    profile: Win32Profile,
    path: SimPtr,
    prefix: SimPtr,
    unique: u32,
    out_name: SimPtr,
) -> ApiResult {
    k.charge_call_to(Subsystem::Fs);
    let dir = read_string(k, path)?;
    let pre = read_string(k, prefix)?;
    if !k.fs.exists(&dir) {
        return Ok(ApiReturn::err(0, errors::ERROR_PATH_NOT_FOUND));
    }
    let n = if unique == 0 {
        match k.scratch.get_mut("win32.tempfile") {
            Some(c) => {
                *c += 1;
                *c
            }
            None => {
                k.scratch.insert("win32.tempfile".to_owned(), 1);
                1
            }
        }
    } else {
        u64::from(unique)
    };
    let pre3: String = pre.chars().take(3).collect();
    let name = format!("{dir}\\{pre3}{n:04X}.TMP");
    if unique == 0 && !k.fs.exists(&name) {
        let _ = k.fs.create_file(&name, Vec::new());
    }
    let mut bytes = name.into_bytes();
    bytes.push(0);
    let out = write_out(k, profile, "GetTempFileName", false, out_name, &bytes)?;
    Ok(finish_out(out, n as i64 & 0xFFFF))
}

/// `SearchPath(lpPath, lpFileName, lpExtension, nBufferLength, lpBuffer,
/// lpFilePart)`.
///
/// # Errors
///
/// An SEH abort when the filename or buffer faults.
pub fn SearchPath(
    k: &mut Kernel,
    profile: Win32Profile,
    search_path: SimPtr,
    file_name: SimPtr,
    _extension: SimPtr,
    size: u32,
    buffer: SimPtr,
    _file_part_out: SimPtr,
) -> ApiResult {
    k.charge_call_to(Subsystem::Fs);
    let name = read_string(k, file_name)?;
    let cwd_dir;
    let searched;
    let dirs: Vec<&str> = if search_path.is_null() {
        cwd_dir = cwd(k);
        vec![cwd_dir.as_str(), "C:\\WINDOWS", "C:\\WINDOWS\\SYSTEM"]
    } else {
        searched = read_string(k, search_path)?;
        searched.split(';').collect()
    };
    let mut candidate = String::with_capacity(64);
    for d in dirs {
        candidate.clear();
        candidate.push_str(d);
        candidate.push('\\');
        candidate.push_str(&name);
        if k.fs.exists(&candidate) {
            return string_result(k, profile, "SearchPath", buffer, size, &candidate);
        }
    }
    Ok(ApiReturn::err(0, ERROR_FILE_NOT_FOUND))
}

/// `GetDriveType(lpRootPathName)` — `DRIVE_FIXED` (3) for the simulated
/// volume, `DRIVE_NO_ROOT_DIR` (1) otherwise. NULL means "current root"
/// and is legal.
///
/// # Errors
///
/// An SEH abort when a non-NULL root path faults.
pub fn GetDriveType(k: &mut Kernel, _profile: Win32Profile, root: SimPtr) -> ApiResult {
    k.charge_call_to(Subsystem::Fs);
    if root.is_null() {
        return Ok(ApiReturn::ok(3));
    }
    let name = read_string(k, root)?;
    let upper = name.to_ascii_uppercase();
    if upper.starts_with("C:") || upper.starts_with('\\') || upper.starts_with('/') {
        Ok(ApiReturn::ok(3))
    } else {
        Ok(ApiReturn::ok(1))
    }
}

/// `GetDiskFreeSpace(lpRoot, lpSectorsPerCluster, lpBytesPerSector,
/// lpFreeClusters, lpTotalClusters)`.
///
/// # Errors
///
/// An SEH abort when the root path or an out-pointer faults under probing.
pub fn GetDiskFreeSpace(
    k: &mut Kernel,
    profile: Win32Profile,
    root: SimPtr,
    sectors_per_cluster: SimPtr,
    bytes_per_sector: SimPtr,
    free_clusters: SimPtr,
    total_clusters: SimPtr,
) -> ApiResult {
    k.charge_call_to(Subsystem::Fs);
    if !root.is_null() {
        let _ = read_string(k, root)?;
    }
    for (ptr, value) in [
        (sectors_per_cluster, 8u32),
        (bytes_per_sector, 512),
        (free_clusters, 0x10_0000),
        (total_clusters, 0x20_0000),
    ] {
        let out = write_out(
            k,
            profile,
            "GetDiskFreeSpace",
            true,
            ptr,
            &value.to_le_bytes(),
        )?;
        if let crate::marshal::OutWrite::ErrorReturn(code) = out {
            return Ok(ApiReturn::err(FALSE, code));
        }
    }
    Ok(ApiReturn::ok(TRUE))
}

/// `GetLogicalDrives()` — bit mask of present drives (C: only).
///
/// # Errors
///
/// None.
pub fn GetLogicalDrives(k: &mut Kernel, _profile: Win32Profile) -> ApiResult {
    k.charge_call_to(Subsystem::Fs);
    Ok(ApiReturn::ok(0b100)) // drive C:
}

/// `GetShortPathName(lpszLongPath, lpszShortPath, cchBuffer)`.
///
/// # Errors
///
/// An SEH abort when either path buffer faults.
pub fn GetShortPathName(
    k: &mut Kernel,
    profile: Win32Profile,
    long_path: SimPtr,
    short_out: SimPtr,
    size: u32,
) -> ApiResult {
    k.charge_call_to(Subsystem::Fs);
    let name = read_string(k, long_path)?;
    if !k.fs.exists(&name) {
        return Ok(ApiReturn::err(0, ERROR_FILE_NOT_FOUND));
    }
    // The simulated filesystem has no long-name aliasing: identity mapping.
    string_result(k, profile, "GetShortPathName", short_out, size, &name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::addr::PrivilegeLevel;
    use sim_core::cstr;
    use sim_kernel::kernel::MachineFlavor;
    use sim_kernel::variant::OsVariant;

    fn nt() -> Win32Profile {
        Win32Profile::for_os(OsVariant::WinNt4)
    }

    fn w98() -> Win32Profile {
        Win32Profile::for_os(OsVariant::Win98)
    }

    fn wk() -> Kernel {
        Kernel::with_flavor(MachineFlavor::Windows)
    }

    fn put(k: &mut Kernel, s: &str) -> SimPtr {
        let p = k.alloc_user(s.len() as u64 + 1, "str");
        cstr::write_cstr(&mut k.space, p, s, PrivilegeLevel::User).unwrap();
        p
    }

    #[test]
    fn directory_lifecycle() {
        let mut k = wk();
        let d = put(&mut k, "C:\\TEMP\\newdir");
        assert_eq!(CreateDirectory(&mut k, nt(), d, SimPtr::NULL).unwrap().value, TRUE);
        assert!(k.fs.exists("C:\\TEMP\\newdir"));
        // Creating again: ERROR_ALREADY_EXISTS.
        assert_eq!(
            CreateDirectory(&mut k, nt(), d, SimPtr::NULL).unwrap().error,
            Some(errors::ERROR_ALREADY_EXISTS)
        );
        assert_eq!(RemoveDirectory(&mut k, nt(), d).unwrap().value, TRUE);
        assert!(!k.fs.exists("C:\\TEMP\\newdir"));
        assert!(CreateDirectory(&mut k, nt(), SimPtr::NULL, SimPtr::NULL).is_err());
    }

    #[test]
    fn create_directory_ex_requires_template() {
        let mut k = wk();
        let bad_tmpl = put(&mut k, "C:\\TEMP\\missing");
        let newd = put(&mut k, "C:\\TEMP\\made");
        assert!(CreateDirectoryEx(&mut k, nt(), bad_tmpl, newd, SimPtr::NULL)
            .unwrap()
            .reported_error());
        let tmpl = put(&mut k, "C:\\WINDOWS");
        assert_eq!(
            CreateDirectoryEx(&mut k, nt(), tmpl, newd, SimPtr::NULL).unwrap().value,
            TRUE
        );
    }

    #[test]
    fn delete_copy_move() {
        let mut k = wk();
        k.fs.create_file("C:\\TEMP\\a.txt", b"data".to_vec()).unwrap();
        let a = put(&mut k, "C:\\TEMP\\a.txt");
        let b = put(&mut k, "C:\\TEMP\\b.txt");
        assert_eq!(CopyFile(&mut k, nt(), a, b, 1).unwrap().value, TRUE);
        assert!(k.fs.exists("C:\\TEMP\\b.txt"));
        // fail-if-exists honoured.
        assert!(CopyFile(&mut k, nt(), a, b, 1).unwrap().reported_error());
        assert_eq!(CopyFile(&mut k, nt(), a, b, 0).unwrap().value, TRUE);
        let c = put(&mut k, "C:\\TEMP\\c.txt");
        assert_eq!(MoveFile(&mut k, nt(), b, c).unwrap().value, TRUE);
        assert!(!k.fs.exists("C:\\TEMP\\b.txt"));
        // MoveFileEx with replace flag.
        assert_eq!(MoveFileEx(&mut k, nt(), a, c, 1).unwrap().value, TRUE);
        assert_eq!(DeleteFile(&mut k, nt(), c).unwrap().value, TRUE);
        assert!(DeleteFile(&mut k, nt(), c).unwrap().reported_error());
    }

    #[test]
    fn find_first_next_close() {
        let mut k = wk();
        k.fs.create_file("C:\\TEMP\\f1", vec![]).unwrap();
        k.fs.create_file("C:\\TEMP\\f2", vec![]).unwrap();
        let pat = put(&mut k, "C:\\TEMP\\*");
        let data = k.alloc_user(FIND_DATA_SIZE, "find");
        let r = FindFirstFile(&mut k, nt(), pat, data).unwrap();
        assert!(!r.reported_error());
        let h = Handle(r.value as u32);
        let first = cstr::read_cstr(
            &k.space,
            data.offset(FIND_DATA_NAME_OFFSET),
            PrivilegeLevel::User,
        )
        .unwrap();
        assert_eq!(first, b"f1");
        assert_eq!(FindNextFile(&mut k, nt(), h, data).unwrap().value, TRUE);
        let second = cstr::read_cstr(
            &k.space,
            data.offset(FIND_DATA_NAME_OFFSET),
            PrivilegeLevel::User,
        )
        .unwrap();
        assert_eq!(second, b"f2");
        let r = FindNextFile(&mut k, nt(), h, data).unwrap();
        assert_eq!(r.error, Some(ERROR_NO_MORE_FILES));
        assert_eq!(FindClose(&mut k, nt(), h).unwrap().value, TRUE);
        assert!(FindClose(&mut k, nt(), h).unwrap().reported_error());
        // Hostile find-data pointer aborts on NT.
        let pat2 = put(&mut k, "C:\\TEMP\\*");
        assert!(FindFirstFile(&mut k, nt(), pat2, SimPtr::NULL).is_err());
    }

    #[test]
    fn attributes() {
        let mut k = wk();
        k.fs.create_file("C:\\TEMP\\att.txt", vec![]).unwrap();
        let p = put(&mut k, "C:\\TEMP\\att.txt");
        assert_eq!(
            GetFileAttributes(&mut k, nt(), p).unwrap().value,
            i64::from(FILE_ATTRIBUTE_NORMAL)
        );
        SetFileAttributes(&mut k, nt(), p, FILE_ATTRIBUTE_READONLY).unwrap();
        assert_eq!(
            GetFileAttributes(&mut k, nt(), p).unwrap().value,
            i64::from(FILE_ATTRIBUTE_READONLY)
        );
        let d = put(&mut k, "C:\\WINDOWS");
        assert_eq!(
            GetFileAttributes(&mut k, nt(), d).unwrap().value & i64::from(FILE_ATTRIBUTE_DIRECTORY),
            i64::from(FILE_ATTRIBUTE_DIRECTORY)
        );
        let missing = put(&mut k, "C:\\TEMP\\ghost");
        let r = GetFileAttributes(&mut k, nt(), missing).unwrap();
        assert_eq!(r.value, INVALID_FILE_ATTRIBUTES);
        assert!(r.reported_error());
    }

    #[test]
    fn current_directory() {
        let mut k = wk();
        let buf = k.alloc_user(64, "cwd");
        let r = GetCurrentDirectory(&mut k, nt(), 64, buf).unwrap();
        assert!(r.value > 0);
        let d = put(&mut k, "C:\\WINDOWS");
        assert_eq!(SetCurrentDirectory(&mut k, nt(), d).unwrap().value, TRUE);
        GetCurrentDirectory(&mut k, nt(), 64, buf).unwrap();
        assert_eq!(
            cstr::read_cstr(&k.space, buf, PrivilegeLevel::User).unwrap(),
            b"C:\\WINDOWS"
        );
        // Too-small buffer: robust required-size report.
        let r = GetCurrentDirectory(&mut k, nt(), 3, buf).unwrap();
        assert_eq!(r.error, Some(ERROR_INSUFFICIENT_BUFFER));
        // Missing target directory.
        let ghost = put(&mut k, "C:\\GHOST");
        assert!(SetCurrentDirectory(&mut k, nt(), ghost).unwrap().reported_error());
    }

    #[test]
    fn full_path_and_temp() {
        let mut k = wk();
        let rel = put(&mut k, "leaf.txt");
        let buf = k.alloc_user(128, "full");
        let r = GetFullPathName(&mut k, nt(), rel, 128, buf, SimPtr::NULL).unwrap();
        assert!(r.value > 0);
        let full = cstr::read_cstr(&k.space, buf, PrivilegeLevel::User).unwrap();
        assert!(full.ends_with(b"\\leaf.txt"));

        let tbuf = k.alloc_user(32, "tmp");
        let r = GetTempPath(&mut k, nt(), 32, tbuf).unwrap();
        assert!(r.value > 0);
        assert_eq!(
            cstr::read_cstr(&k.space, tbuf, PrivilegeLevel::User).unwrap(),
            b"C:\\TEMP\\"
        );

        let dir = put(&mut k, "C:\\TEMP");
        let pre = put(&mut k, "bal");
        let nbuf = k.alloc_user(64, "name");
        let r = GetTempFileName(&mut k, nt(), dir, pre, 0, nbuf).unwrap();
        assert!(r.value > 0);
        let name = cstr::read_cstr(&k.space, nbuf, PrivilegeLevel::User).unwrap();
        assert!(String::from_utf8_lossy(&name).contains("bal"));
        // The file was created.
        assert!(k.fs.exists(std::str::from_utf8(&name).unwrap()));
    }

    #[test]
    fn search_path_and_drives() {
        let mut k = wk();
        let file = put(&mut k, "README.TXT");
        let buf = k.alloc_user(128, "found");
        let r = SearchPath(&mut k, nt(), SimPtr::NULL, file, SimPtr::NULL, 128, buf, SimPtr::NULL)
            .unwrap();
        assert!(r.value > 0, "README.TXT should be found in C:\\WINDOWS");
        let ghost = put(&mut k, "GHOST.EXE");
        assert!(SearchPath(
            &mut k,
            nt(),
            SimPtr::NULL,
            ghost,
            SimPtr::NULL,
            128,
            buf,
            SimPtr::NULL
        )
        .unwrap()
        .reported_error());
        assert_eq!(GetLogicalDrives(&mut k, nt()).unwrap().value, 4);
        let root = put(&mut k, "C:\\");
        assert_eq!(GetDriveType(&mut k, nt(), root).unwrap().value, 3);
        assert_eq!(GetDriveType(&mut k, nt(), SimPtr::NULL).unwrap().value, 3);
    }

    #[test]
    fn disk_free_space_out_pointers() {
        let mut k = wk();
        let root = put(&mut k, "C:\\");
        let a = k.alloc_user(4, "a");
        let b = k.alloc_user(4, "b");
        let c = k.alloc_user(4, "c");
        let d = k.alloc_user(4, "d");
        assert_eq!(
            GetDiskFreeSpace(&mut k, nt(), root, a, b, c, d).unwrap().value,
            TRUE
        );
        assert_eq!(k.space.read_u32(b).unwrap(), 512);
        // NT: hostile out-pointer aborts; 98: silent success.
        assert!(GetDiskFreeSpace(&mut k, nt(), root, SimPtr::NULL, b, c, d).is_err());
        let r = GetDiskFreeSpace(&mut k, w98(), root, SimPtr::NULL, b, c, d).unwrap();
        assert_eq!(r.value, TRUE);
        assert!(!r.reported_error());
    }

    #[test]
    fn short_path_name() {
        let mut k = wk();
        let p = put(&mut k, "C:\\WINDOWS\\README.TXT");
        let buf = k.alloc_user(64, "short");
        let r = GetShortPathName(&mut k, nt(), p, buf, 64).unwrap();
        assert!(r.value > 0);
        let ghost = put(&mut k, "C:\\GHOST.TXT");
        assert!(GetShortPathName(&mut k, nt(), ghost, buf, 64)
            .unwrap()
            .reported_error());
    }
}
