//! Heap management: the `Heap*` family plus the legacy `GlobalAlloc` /
//! `LocalAlloc` calls — the other half of the *Memory Management*
//! grouping.
//!
//! Table 3 entry implemented here: `HeapCreate` is a deterministic
//! Catastrophic failure on Windows 95 — an absurd initial-size parameter
//! overflows the 95 kernel's arena setup arithmetic and corrupts system
//! state before any validation runs.

use sim_kernel::Subsystem;
use crate::errors::{self, ERROR_INVALID_PARAMETER, ERROR_NOT_ENOUGH_MEMORY};
use crate::marshal::{bad_handle_return, BadHandle, handle_disposition, FALSE, TRUE};
use crate::profile::Win32Profile;
use sim_core::SimPtr;
use sim_kernel::heap::HeapId;
use sim_kernel::objects::{Handle, ObjectKind};
use sim_kernel::outcome::{ApiResult, ApiReturn};
use sim_kernel::Kernel;

/// Initial-size threshold beyond which the Windows 95 arena arithmetic
/// overflows (the deterministic Table 3 `HeapCreate` crash).
const W95_HEAP_OVERFLOW: u64 = 0x7FFF_0000;

fn heap_id(k: &Kernel, h: Handle) -> Result<HeapId, sim_kernel::objects::HandleError> {
    match k.objects.get(h)? {
        ObjectKind::Heap(id) => Ok(*id),
        other => Err(sim_kernel::objects::HandleError::WrongType {
            actual: other.type_name(),
        }),
    }
}

/// `GetProcessHeap()` — returns (lazily creating) the handle for the
/// process default heap.
///
/// # Errors
///
/// None.
pub fn GetProcessHeap(k: &mut Kernel, _profile: Win32Profile) -> ApiResult {
    k.charge_call_to(Subsystem::Heap);
    if let Some(&raw) = k.scratch.get("win32.process_heap") {
        return Ok(ApiReturn::ok(raw as i64));
    }
    let h = k.objects.insert(ObjectKind::Heap(k.default_heap));
    k.scratch
        .insert("win32.process_heap".to_owned(), u64::from(h.raw()));
    Ok(ApiReturn::ok(i64::from(h.raw())))
}

/// `HeapCreate(flOptions, dwInitialSize, dwMaximumSize)`.
///
/// # Errors
///
/// None on return-path; on Windows 95 an absurd initial size is
/// Catastrophic (Table 3).
pub fn HeapCreate(
    k: &mut Kernel,
    profile: Win32Profile,
    _fl_options: u32,
    initial_size: u64,
    maximum_size: u64,
) -> ApiResult {
    k.charge_call_to(Subsystem::Heap);
    if initial_size >= W95_HEAP_OVERFLOW && profile.vulnerability_fires_on("HeapCreate", k) {
        k.crash.panic(
            "HeapCreate",
            "arena setup arithmetic overflow corrupted kernel memory",
            None,
        );
        return Ok(ApiReturn::ok(0x0BAD_0000));
    }
    if maximum_size != 0 && initial_size > maximum_size {
        return Ok(ApiReturn::err(0, ERROR_INVALID_PARAMETER));
    }
    if initial_size >= W95_HEAP_OVERFLOW {
        // Robust variants reject the absurd request.
        return Ok(ApiReturn::err(0, ERROR_NOT_ENOUGH_MEMORY));
    }
    match k.heaps.create(initial_size, maximum_size) {
        Ok(id) => {
            let h = k.objects.insert(ObjectKind::Heap(id));
            Ok(ApiReturn::ok(i64::from(h.raw())))
        }
        Err(e) => Ok(ApiReturn::err(0, errors::from_heap(e))),
    }
}

/// `HeapDestroy(hHeap)`.
///
/// # Errors
///
/// None; bad handles return errors (or 9x silence).
pub fn HeapDestroy(k: &mut Kernel, profile: Win32Profile, h: Handle) -> ApiResult {
    k.charge_call_to(Subsystem::Heap);
    match heap_id(k, h) {
        Ok(id) => {
            let Kernel { heaps, space, .. } = k;
            let _ = heaps.destroy(id, space);
            let _ = k.objects.close(h);
            Ok(ApiReturn::ok(TRUE))
        }
        Err(e) => Ok(bad_handle_return(profile, e, TRUE)),
    }
}

/// `HeapAlloc(hHeap, dwFlags, dwBytes)`.
///
/// On the 9x family a garbage heap handle is quietly serviced from the
/// process heap (Silent); NT validates it.
///
/// # Errors
///
/// None.
pub fn HeapAlloc(k: &mut Kernel, profile: Win32Profile, h: Handle, _flags: u32, bytes: u64) -> ApiResult {
    k.charge_call_to(Subsystem::Heap);
    let id = match heap_id(k, h) {
        Ok(id) => id,
        Err(e) => match handle_disposition(profile, e) {
            BadHandle::SilentSuccess => k.default_heap,
            BadHandle::ErrorReturn(code) => return Ok(ApiReturn::err(0, code)),
        },
    };
    let Kernel { heaps, space, .. } = k;
    match heaps.alloc(id, bytes, space) {
        Ok(p) => Ok(ApiReturn::ok(p.addr() as i64)),
        Err(e) => Ok(ApiReturn::err(0, errors::from_heap(e))),
    }
}

/// `HeapFree(hHeap, dwFlags, lpMem)`.
///
/// # Errors
///
/// None; foreign pointers are validated to `ERROR_INVALID_PARAMETER`
/// (NT) or silently ignored (9x).
pub fn HeapFree(
    k: &mut Kernel,
    profile: Win32Profile,
    h: Handle,
    _flags: u32,
    mem: SimPtr,
) -> ApiResult {
    k.charge_call_to(Subsystem::Heap);
    let id = match heap_id(k, h) {
        Ok(id) => id,
        Err(e) => return Ok(bad_handle_return(profile, e, TRUE)),
    };
    let Kernel { heaps, space, .. } = k;
    match heaps.free(id, mem, space) {
        Ok(()) => Ok(ApiReturn::ok(TRUE)),
        Err(e) => {
            if profile.validates_handles() {
                Ok(ApiReturn::err(FALSE, errors::from_heap(e)))
            } else {
                Ok(ApiReturn::ok(TRUE)) // 9x: quiet no-op
            }
        }
    }
}

/// `HeapReAlloc(hHeap, dwFlags, lpMem, dwBytes)`.
///
/// # Errors
///
/// None.
pub fn HeapReAlloc(
    k: &mut Kernel,
    profile: Win32Profile,
    h: Handle,
    _flags: u32,
    mem: SimPtr,
    bytes: u64,
) -> ApiResult {
    k.charge_call_to(Subsystem::Heap);
    let id = match heap_id(k, h) {
        Ok(id) => id,
        Err(e) => return Ok(bad_handle_return(profile, e, 0)),
    };
    let Kernel { heaps, space, .. } = k;
    match heaps.realloc(id, mem, bytes, space) {
        Ok(p) => Ok(ApiReturn::ok(p.addr() as i64)),
        Err(e) => Ok(ApiReturn::err(0, errors::from_heap(e))),
    }
}

/// `HeapSize(hHeap, dwFlags, lpMem)`.
///
/// # Errors
///
/// None; failures return `(SIZE_T)-1`.
pub fn HeapSize(
    k: &mut Kernel,
    profile: Win32Profile,
    h: Handle,
    _flags: u32,
    mem: SimPtr,
) -> ApiResult {
    k.charge_call_to(Subsystem::Heap);
    let id = match heap_id(k, h) {
        Ok(id) => id,
        Err(e) => {
            return Ok(match handle_disposition(profile, e) {
                BadHandle::SilentSuccess => ApiReturn::ok(0),
                BadHandle::ErrorReturn(code) => ApiReturn::err(-1, code),
            })
        }
    };
    match k.heaps.size_of(id, mem) {
        Ok(s) => Ok(ApiReturn::ok(s as i64)),
        Err(e) => Ok(ApiReturn::err(-1, errors::from_heap(e))),
    }
}

/// `HeapValidate(hHeap, dwFlags, lpMem)` — NULL `lpMem` validates the
/// whole heap.
///
/// # Errors
///
/// None.
pub fn HeapValidate(
    k: &mut Kernel,
    profile: Win32Profile,
    h: Handle,
    _flags: u32,
    mem: SimPtr,
) -> ApiResult {
    k.charge_call_to(Subsystem::Heap);
    let id = match heap_id(k, h) {
        Ok(id) => id,
        Err(e) => return Ok(bad_handle_return(profile, e, TRUE)),
    };
    if mem.is_null() {
        return Ok(ApiReturn::ok(TRUE));
    }
    Ok(ApiReturn::ok(i64::from(k.heaps.size_of(id, mem).is_ok())))
}

/// `HeapCompact(hHeap, dwFlags)` — returns the largest committable block.
///
/// # Errors
///
/// None.
pub fn HeapCompact(k: &mut Kernel, profile: Win32Profile, h: Handle, _flags: u32) -> ApiResult {
    k.charge_call_to(Subsystem::Heap);
    match heap_id(k, h) {
        Ok(_) => Ok(ApiReturn::ok(0x10000)),
        Err(e) => Ok(bad_handle_return(profile, e, 0x10000)),
    }
}

fn legacy_alloc(k: &mut Kernel, bytes: u64) -> ApiResult {
    let heap = k.default_heap;
    let Kernel { heaps, space, .. } = k;
    match heaps.alloc(heap, bytes, space) {
        Ok(p) => Ok(ApiReturn::ok(p.addr() as i64)),
        Err(e) => Ok(ApiReturn::err(0, errors::from_heap(e))),
    }
}

fn legacy_free(k: &mut Kernel, profile: Win32Profile, mem: SimPtr) -> ApiResult {
    let heap = k.default_heap;
    let Kernel { heaps, space, .. } = k;
    match heaps.free(heap, mem, space) {
        Ok(()) => Ok(ApiReturn::ok(0)),
        Err(e) => {
            if profile.validates_handles() {
                // Failure convention: returns the pointer itself.
                Ok(ApiReturn::err(mem.addr() as i64, errors::from_heap(e)))
            } else {
                Ok(ApiReturn::ok(0)) // 9x: quiet
            }
        }
    }
}

/// `GlobalAlloc(uFlags, dwBytes)` — serviced from the process heap, as on
/// real 32-bit Windows.
///
/// # Errors
///
/// None.
pub fn GlobalAlloc(k: &mut Kernel, _profile: Win32Profile, _flags: u32, bytes: u64) -> ApiResult {
    k.charge_call_to(Subsystem::Heap);
    legacy_alloc(k, bytes)
}

/// `GlobalFree(hMem)`.
///
/// # Errors
///
/// None.
pub fn GlobalFree(k: &mut Kernel, profile: Win32Profile, mem: SimPtr) -> ApiResult {
    k.charge_call_to(Subsystem::Heap);
    legacy_free(k, profile, mem)
}

/// `GlobalReAlloc(hMem, dwBytes, uFlags)`.
///
/// # Errors
///
/// None.
pub fn GlobalReAlloc(
    k: &mut Kernel,
    _profile: Win32Profile,
    mem: SimPtr,
    bytes: u64,
    _flags: u32,
) -> ApiResult {
    k.charge_call_to(Subsystem::Heap);
    let heap = k.default_heap;
    let Kernel { heaps, space, .. } = k;
    match heaps.realloc(heap, mem, bytes, space) {
        Ok(p) => Ok(ApiReturn::ok(p.addr() as i64)),
        Err(e) => Ok(ApiReturn::err(0, errors::from_heap(e))),
    }
}

/// `GlobalSize(hMem)`.
///
/// # Errors
///
/// None; unknown blocks report 0 with an error code.
pub fn GlobalSize(k: &mut Kernel, _profile: Win32Profile, mem: SimPtr) -> ApiResult {
    k.charge_call_to(Subsystem::Heap);
    match k.heaps.size_of(k.default_heap, mem) {
        Ok(s) => Ok(ApiReturn::ok(s as i64)),
        Err(e) => Ok(ApiReturn::err(0, errors::from_heap(e))),
    }
}

/// `GlobalLock(hMem)` — fixed memory: returns the pointer itself when the
/// block is live, NULL otherwise.
///
/// # Errors
///
/// None.
pub fn GlobalLock(k: &mut Kernel, _profile: Win32Profile, mem: SimPtr) -> ApiResult {
    k.charge_call_to(Subsystem::Heap);
    if k.heaps.size_of(k.default_heap, mem).is_ok() {
        Ok(ApiReturn::ok(mem.addr() as i64))
    } else {
        Ok(ApiReturn::err(0, ERROR_INVALID_PARAMETER))
    }
}

/// `GlobalUnlock(hMem)`.
///
/// # Errors
///
/// None.
pub fn GlobalUnlock(k: &mut Kernel, _profile: Win32Profile, mem: SimPtr) -> ApiResult {
    k.charge_call_to(Subsystem::Heap);
    if k.heaps.size_of(k.default_heap, mem).is_ok() {
        Ok(ApiReturn::ok(FALSE)) // lock count reached zero
    } else {
        Ok(ApiReturn::err(FALSE, ERROR_INVALID_PARAMETER))
    }
}

/// `LocalAlloc(uFlags, uBytes)`.
///
/// # Errors
///
/// None.
pub fn LocalAlloc(k: &mut Kernel, _profile: Win32Profile, _flags: u32, bytes: u64) -> ApiResult {
    k.charge_call_to(Subsystem::Heap);
    legacy_alloc(k, bytes)
}

/// `LocalFree(hMem)`.
///
/// # Errors
///
/// None.
pub fn LocalFree(k: &mut Kernel, profile: Win32Profile, mem: SimPtr) -> ApiResult {
    k.charge_call_to(Subsystem::Heap);
    legacy_free(k, profile, mem)
}

/// `LocalReAlloc(hMem, uBytes, uFlags)`.
///
/// # Errors
///
/// None.
pub fn LocalReAlloc(
    k: &mut Kernel,
    profile: Win32Profile,
    mem: SimPtr,
    bytes: u64,
    flags: u32,
) -> ApiResult {
    GlobalReAlloc(k, profile, mem, bytes, flags)
}

/// `LocalSize(hMem)`.
///
/// # Errors
///
/// None.
pub fn LocalSize(k: &mut Kernel, profile: Win32Profile, mem: SimPtr) -> ApiResult {
    GlobalSize(k, profile, mem)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_kernel::kernel::MachineFlavor;
    use sim_kernel::variant::OsVariant;

    fn nt() -> Win32Profile {
        Win32Profile::for_os(OsVariant::WinNt4)
    }

    fn w95() -> Win32Profile {
        Win32Profile::for_os(OsVariant::Win95)
    }

    fn w98() -> Win32Profile {
        Win32Profile::for_os(OsVariant::Win98)
    }

    fn wk() -> Kernel {
        Kernel::with_flavor(MachineFlavor::Windows)
    }

    #[test]
    fn heap_lifecycle() {
        let mut k = wk();
        let r = HeapCreate(&mut k, nt(), 0, 0x1000, 0).unwrap();
        assert!(!r.reported_error());
        let h = Handle(r.value as u32);
        let p = HeapAlloc(&mut k, nt(), h, 0, 64).unwrap();
        assert!(p.value != 0);
        let mem = SimPtr::new(p.value as u64);
        assert_eq!(HeapSize(&mut k, nt(), h, 0, mem).unwrap().value, 64);
        assert_eq!(HeapValidate(&mut k, nt(), h, 0, mem).unwrap().value, TRUE);
        assert_eq!(
            HeapValidate(&mut k, nt(), h, 0, SimPtr::new(0x77)).unwrap().value,
            0
        );
        let q = HeapReAlloc(&mut k, nt(), h, 0, mem, 128).unwrap();
        assert!(q.value != 0);
        assert_eq!(
            HeapFree(&mut k, nt(), h, 0, SimPtr::new(q.value as u64)).unwrap().value,
            TRUE
        );
        assert_eq!(HeapDestroy(&mut k, nt(), h).unwrap().value, TRUE);
        assert!(HeapAlloc(&mut k, nt(), h, 0, 8).unwrap().reported_error());
    }

    #[test]
    fn heap_create_crashes_win95_only() {
        let mut k = wk();
        let _ = HeapCreate(&mut k, w95(), 0, u64::from(u32::MAX), 0).unwrap();
        assert!(!k.is_alive());
        assert_eq!(k.crash.info().unwrap().call, "HeapCreate");

        // 98 and NT reject the absurd size robustly.
        for p in [w98(), nt()] {
            let mut k2 = wk();
            let r = HeapCreate(&mut k2, p, 0, u64::from(u32::MAX), 0).unwrap();
            assert!(r.reported_error());
            assert!(k2.is_alive());
        }
    }

    #[test]
    fn heap_create_parameter_validation() {
        let mut k = wk();
        // max < initial: invalid parameter.
        assert_eq!(
            HeapCreate(&mut k, nt(), 0, 0x2000, 0x1000).unwrap().error,
            Some(ERROR_INVALID_PARAMETER)
        );
    }

    #[test]
    fn bad_heap_handle_split() {
        let mut k = wk();
        // NT: validated error.
        let r = HeapAlloc(&mut k, nt(), Handle(0xDEAD), 0, 32).unwrap();
        assert_eq!(r.value, 0);
        assert!(r.reported_error());
        // 98: silently serviced from the process heap.
        let r = HeapAlloc(&mut k, w98(), Handle(0xDEAD), 0, 32).unwrap();
        assert!(r.value != 0);
        assert!(!r.reported_error());
    }

    #[test]
    fn heap_free_foreign_pointer_split() {
        let mut k = wk();
        let hr = HeapCreate(&mut k, nt(), 0, 0, 0).unwrap();
        let h = Handle(hr.value as u32);
        let r = HeapFree(&mut k, nt(), h, 0, SimPtr::new(0x4242)).unwrap();
        assert_eq!(r.value, FALSE);
        assert!(r.reported_error());
        let r = HeapFree(&mut k, w98(), h, 0, SimPtr::new(0x4242)).unwrap();
        assert_eq!(r.value, TRUE);
        assert!(!r.reported_error());
    }

    #[test]
    fn process_heap_is_stable() {
        let mut k = wk();
        let a = GetProcessHeap(&mut k, nt()).unwrap().value;
        let b = GetProcessHeap(&mut k, nt()).unwrap().value;
        assert_eq!(a, b);
        let h = Handle(a as u32);
        let p = HeapAlloc(&mut k, nt(), h, 0, 16).unwrap();
        assert!(p.value != 0);
    }

    #[test]
    fn global_local_family() {
        let mut k = wk();
        let r = GlobalAlloc(&mut k, nt(), 0, 100).unwrap();
        let mem = SimPtr::new(r.value as u64);
        assert_eq!(GlobalSize(&mut k, nt(), mem).unwrap().value, 100);
        assert_eq!(GlobalLock(&mut k, nt(), mem).unwrap().value, r.value);
        assert_eq!(GlobalUnlock(&mut k, nt(), mem).unwrap().value, FALSE);
        let r2 = GlobalReAlloc(&mut k, nt(), mem, 200, 0).unwrap();
        assert!(r2.value != 0);
        let mem2 = SimPtr::new(r2.value as u64);
        assert_eq!(GlobalFree(&mut k, nt(), mem2).unwrap().value, 0);
        // Freeing garbage: NT reports, 98 is silent.
        assert!(GlobalFree(&mut k, nt(), SimPtr::new(0x7777)).unwrap().reported_error());
        assert!(!GlobalFree(&mut k, w98(), SimPtr::new(0x7777)).unwrap().reported_error());
        // Local aliases.
        let r = LocalAlloc(&mut k, nt(), 0, 50).unwrap();
        let lm = SimPtr::new(r.value as u64);
        assert_eq!(LocalSize(&mut k, nt(), lm).unwrap().value, 50);
        assert_eq!(LocalFree(&mut k, nt(), lm).unwrap().value, 0);
        assert!(GlobalLock(&mut k, nt(), SimPtr::new(0x5555)).unwrap().reported_error());
    }
}
