//! # sim-win32 — the simulated Win32 API
//!
//! Implements the Win32 system calls of the paper's catalog over the
//! simulated kernel, with **per-variant robustness profiles** for Windows
//! 95, 98, 98 SE, NT 4.0, 2000 and CE 2.11.
//!
//! The behavioural model (see [`profile`]) captures the paper's three
//! families:
//!
//! * **NT family** — `kernel32` eagerly probes pointer parameters in user
//!   mode, so hostile pointers die with `EXCEPTION_ACCESS_VIOLATION`
//!   (Abort: the *highest* Abort rates in Table 1, but no crashes) and bad
//!   handles are validated to `ERROR_INVALID_HANDLE` (few Silent failures).
//! * **9x family** — validation is lazy: bad handles are quietly accepted
//!   (`TRUE` with no error — the Silent failures of Figure 2) and a set of
//!   calls passes unvalidated pointers into kernel-mode code, where a wild
//!   write *kills the machine* (the Catastrophic entries of Table 3,
//!   including the one-line `GetThreadContext(GetCurrentThread(), NULL)`
//!   crash of Listing 1).
//! * **CE** — validates handles and returns errors for many bad
//!   out-pointers (Abort rates below NT's), but trusts several parameters
//!   in kernel mode: ten system calls can crash the device.
//!
//! Every entry point has the same shape as the C-library layer:
//! `fn Call(k: &mut Kernel, profile: Win32Profile, raw args…) -> ApiResult`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![allow(non_snake_case)] // entry points carry their Win32 names
#![allow(clippy::too_many_arguments)] // signatures mirror the real Win32 arity

pub mod dirapi;
pub mod envapi;
pub mod errors;
pub mod fileapi;
pub mod handleapi;
pub mod heapapi;
pub mod marshal;
pub mod memoryapi;
pub mod processapi;
pub mod profile;
pub mod syncapi;
pub mod threadapi;
pub mod timeapi;

pub use profile::Win32Profile;
