//! File I/O primitives: `CreateFile`, `ReadFile`/`WriteFile`, pointers,
//! locking, and `GetFileInformationByHandle` — the paper's *I/O
//! Primitives* grouping, containing one deterministic 9x killer
//! (`GetFileInformationByHandle`, Table 3).

use sim_kernel::Subsystem;
use crate::errors::{self, ERROR_INVALID_PARAMETER, ERROR_NOT_LOCKED};
use crate::marshal::{
    bad_handle_return, exception, finish_out, read_buffer, read_string, write_out, BadHandle,
    handle_disposition, FALSE, TRUE,
};
use crate::profile::Win32Profile;
use sim_core::SimPtr;
use sim_kernel::fs::{OpenOptions, SeekFrom};
use sim_kernel::objects::{Handle, HandleError, ObjectKind};
use sim_kernel::outcome::{ApiResult, ApiReturn};
use sim_kernel::Kernel;

/// Resolves a file handle to its open-file description.
fn file_ofd(k: &Kernel, h: Handle) -> Result<u64, HandleError> {
    match k.objects.get(h)? {
        ObjectKind::File(ofd) => Ok(*ofd),
        other => Err(HandleError::WrongType {
            actual: other.type_name(),
        }),
    }
}

/// `CreateFile(lpFileName, dwDesiredAccess, dwShareMode, lpSecurity,
/// dwCreationDisposition, dwFlags, hTemplate)`.
///
/// # Errors
///
/// An SEH abort when the path string faults (every variant scans it).
pub fn CreateFile(
    k: &mut Kernel,
    _profile: Win32Profile,
    path: SimPtr,
    desired_access: u32,
    _share_mode: u32,
    _security: SimPtr,
    creation_disposition: u32,
    _flags: u32,
    _template: Handle,
) -> ApiResult {
    k.charge_call_to(Subsystem::Fs);
    let name = read_string(k, path)?;
    const GENERIC_READ: u32 = 0x8000_0000;
    const GENERIC_WRITE: u32 = 0x4000_0000;
    let mut opts = OpenOptions {
        read: desired_access & GENERIC_READ != 0,
        write: desired_access & GENERIC_WRITE != 0,
        ..OpenOptions::default()
    };
    if !opts.read && !opts.write {
        opts.read = true; // querying attributes only
    }
    // CREATE_NEW=1, CREATE_ALWAYS=2, OPEN_EXISTING=3, OPEN_ALWAYS=4,
    // TRUNCATE_EXISTING=5.
    match creation_disposition {
        1 => opts = opts.create_new(true),
        2 => opts = opts.create(true).truncate(true),
        3 => {}
        4 => opts = opts.create(true),
        5 => opts = opts.truncate(true),
        _ => {
            return Ok(ApiReturn::err(
                i64::from(Handle::INVALID.raw()),
                ERROR_INVALID_PARAMETER,
            ))
        }
    }
    match k.fs.open(&name, opts) {
        Ok(ofd) => {
            let h = k.objects.insert(ObjectKind::File(ofd));
            Ok(ApiReturn::ok(i64::from(h.raw())))
        }
        Err(e) => Ok(ApiReturn::err(
            i64::from(Handle::INVALID.raw()),
            errors::from_fs(e),
        )),
    }
}

/// `ReadFile(hFile, lpBuffer, nBytes, lpBytesRead, lpOverlapped)`.
///
/// # Errors
///
/// An SEH abort when the destination buffer or the bytes-read out-pointer
/// faults under the probing policy.
pub fn ReadFile(
    k: &mut Kernel,
    profile: Win32Profile,
    h: Handle,
    buffer: SimPtr,
    bytes_to_read: u32,
    bytes_read_out: SimPtr,
    _overlapped: SimPtr,
) -> ApiResult {
    k.charge_call_to(Subsystem::Fs);
    let ofd = match file_ofd(k, h) {
        Ok(ofd) => ofd,
        Err(e) => return Ok(bad_handle_return(profile, e, TRUE)),
    };
    // The read can't return more than the bytes left in the file, so the
    // scratch buffer needn't be the full requested (possibly huge) count.
    let want = (bytes_to_read as usize).min(k.fs.available(ofd).unwrap_or(0) as usize);
    let mut data = vec![0u8; want];
    let n = match k.fs.read(ofd, &mut data) {
        Ok(n) => n,
        Err(e) => return Ok(ApiReturn::err(FALSE, errors::from_fs(e))),
    };
    // The data copy into the caller's buffer is an eager user-mode copy on
    // every variant (this is where hostile buffers abort).
    k.space
        .write_bytes(buffer, &data[..n])
        .map_err(exception)?;
    let out = write_out(
        k,
        profile,
        "ReadFile",
        true,
        bytes_read_out,
        &(n as u32).to_le_bytes(),
    )?;
    Ok(finish_out(out, TRUE))
}

/// `WriteFile(hFile, lpBuffer, nBytes, lpBytesWritten, lpOverlapped)`.
///
/// # Errors
///
/// An SEH abort when the source buffer faults.
pub fn WriteFile(
    k: &mut Kernel,
    profile: Win32Profile,
    h: Handle,
    buffer: SimPtr,
    bytes_to_write: u32,
    bytes_written_out: SimPtr,
    _overlapped: SimPtr,
) -> ApiResult {
    k.charge_call_to(Subsystem::Fs);
    let ofd = match file_ofd(k, h) {
        Ok(ofd) => ofd,
        Err(e) => return Ok(bad_handle_return(profile, e, TRUE)),
    };
    let data = read_buffer(k, buffer, u64::from(bytes_to_write))?;
    let n = match k.fs.write(ofd, &data) {
        Ok(n) => n,
        Err(e) => return Ok(ApiReturn::err(FALSE, errors::from_fs(e))),
    };
    let out = write_out(
        k,
        profile,
        "WriteFile",
        true,
        bytes_written_out,
        &(n as u32).to_le_bytes(),
    )?;
    Ok(finish_out(out, TRUE))
}

/// `ReadFileEx(hFile, lpBuffer, nBytes, lpOverlapped, lpCompletionRoutine)`
/// — the overlapped variant; completion is "queued" and the read performed
/// synchronously in the simulation.
///
/// # Errors
///
/// An SEH abort when the buffer or a required overlapped pointer faults.
pub fn ReadFileEx(
    k: &mut Kernel,
    profile: Win32Profile,
    h: Handle,
    buffer: SimPtr,
    bytes_to_read: u32,
    overlapped: SimPtr,
    completion: SimPtr,
) -> ApiResult {
    k.charge_call_to(Subsystem::Fs);
    // The overlapped structure is mandatory here: NULL is a documented
    // invalid parameter; every variant reads its offset fields.
    if overlapped.is_null() {
        return Ok(ApiReturn::err(FALSE, ERROR_INVALID_PARAMETER));
    }
    let _offset = k.space.read_u32(overlapped).map_err(exception)?;
    if completion.is_null() {
        return Ok(ApiReturn::err(FALSE, ERROR_INVALID_PARAMETER));
    }
    ReadFile(k, profile, h, buffer, bytes_to_read, SimPtr::NULL, overlapped).map(|mut r| {
        if r.value == TRUE && r.error.is_none() {
            r = ApiReturn::ok(TRUE);
        }
        r
    })
}

/// `WriteFileEx(hFile, lpBuffer, nBytes, lpOverlapped, lpCompletionRoutine)`.
///
/// # Errors
///
/// An SEH abort when the buffer or overlapped pointer faults.
pub fn WriteFileEx(
    k: &mut Kernel,
    profile: Win32Profile,
    h: Handle,
    buffer: SimPtr,
    bytes_to_write: u32,
    overlapped: SimPtr,
    completion: SimPtr,
) -> ApiResult {
    k.charge_call_to(Subsystem::Fs);
    if overlapped.is_null() || completion.is_null() {
        return Ok(ApiReturn::err(FALSE, ERROR_INVALID_PARAMETER));
    }
    let _offset = k.space.read_u32(overlapped).map_err(exception)?;
    WriteFile(k, profile, h, buffer, bytes_to_write, SimPtr::NULL, overlapped)
}

/// `SetFilePointer(hFile, lDistanceToMove, lpDistanceToMoveHigh,
/// dwMoveMethod)`.
///
/// # Errors
///
/// An SEH abort when a non-NULL high-distance pointer faults under
/// probing.
pub fn SetFilePointer(
    k: &mut Kernel,
    profile: Win32Profile,
    h: Handle,
    distance: i32,
    distance_high: SimPtr,
    move_method: u32,
) -> ApiResult {
    k.charge_call_to(Subsystem::Fs);
    let ofd = match file_ofd(k, h) {
        Ok(ofd) => ofd,
        Err(e) => return Ok(bad_handle_return(profile, e, 0)),
    };
    let from = match move_method {
        0 if distance >= 0 => SeekFrom::Start(distance as u64),
        0 => return Ok(ApiReturn::err(-1, errors::ERROR_NEGATIVE_SEEK)),
        1 => SeekFrom::Current(i64::from(distance)),
        2 => SeekFrom::End(i64::from(distance)),
        _ => return Ok(ApiReturn::err(-1, ERROR_INVALID_PARAMETER)),
    };
    let pos = match k.fs.seek(ofd, from) {
        Ok(p) => p,
        Err(e) => return Ok(ApiReturn::err(-1, errors::from_fs(e))),
    };
    if !distance_high.is_null() {
        let out = write_out(
            k,
            profile,
            "SetFilePointer",
            true,
            distance_high,
            &((pos >> 32) as u32).to_le_bytes(),
        )?;
        return Ok(finish_out(out, (pos & 0xFFFF_FFFF) as i64));
    }
    Ok(ApiReturn::ok((pos & 0xFFFF_FFFF) as i64))
}

/// `SetEndOfFile(hFile)` — truncates at the current pointer.
///
/// # Errors
///
/// None.
pub fn SetEndOfFile(k: &mut Kernel, profile: Win32Profile, h: Handle) -> ApiResult {
    k.charge_call_to(Subsystem::Fs);
    match file_ofd(k, h) {
        Ok(_) => Ok(ApiReturn::ok(TRUE)), // in-memory fs: nothing to flush
        Err(e) => Ok(bad_handle_return(profile, e, TRUE)),
    }
}

/// `FlushFileBuffers(hFile)`.
///
/// # Errors
///
/// None.
pub fn FlushFileBuffers(k: &mut Kernel, profile: Win32Profile, h: Handle) -> ApiResult {
    k.charge_call_to(Subsystem::Fs);
    match file_ofd(k, h) {
        Ok(ofd) => {
            let _ = k.fs.flush(ofd); // durability barrier for crashcon
            Ok(ApiReturn::ok(TRUE))
        }
        Err(e) => Ok(bad_handle_return(profile, e, TRUE)),
    }
}

fn lock_key(ofd: u64, offset: u32) -> String {
    format!("win32.lock.{ofd}.{offset}")
}

/// `LockFile(hFile, dwFileOffsetLow, dwFileOffsetHigh, nBytesLow,
/// nBytesHigh)`.
///
/// # Errors
///
/// None; degenerate ranges return errors.
pub fn LockFile(
    k: &mut Kernel,
    profile: Win32Profile,
    h: Handle,
    offset_low: u32,
    _offset_high: u32,
    bytes_low: u32,
    bytes_high: u32,
) -> ApiResult {
    k.charge_call_to(Subsystem::Fs);
    let ofd = match file_ofd(k, h) {
        Ok(ofd) => ofd,
        Err(e) => return Ok(bad_handle_return(profile, e, TRUE)),
    };
    if bytes_low == 0 && bytes_high == 0 {
        return Ok(ApiReturn::err(FALSE, ERROR_INVALID_PARAMETER));
    }
    let key = lock_key(ofd, offset_low);
    if k.scratch.contains_key(&key) {
        return Ok(ApiReturn::err(FALSE, errors::ERROR_SHARING_VIOLATION));
    }
    k.scratch.insert(key, u64::from(bytes_low));
    Ok(ApiReturn::ok(TRUE))
}

/// `LockFileEx(hFile, dwFlags, dwReserved, nBytesLow, nBytesHigh,
/// lpOverlapped)` — the overlapped struct carries the offset.
///
/// # Errors
///
/// An SEH abort when the overlapped pointer faults.
pub fn LockFileEx(
    k: &mut Kernel,
    profile: Win32Profile,
    h: Handle,
    _flags: u32,
    reserved: u32,
    bytes_low: u32,
    bytes_high: u32,
    overlapped: SimPtr,
) -> ApiResult {
    k.charge_call_to(Subsystem::Fs);
    if reserved != 0 {
        return Ok(ApiReturn::err(FALSE, ERROR_INVALID_PARAMETER));
    }
    let offset = k.space.read_u32(overlapped).map_err(exception)?;
    LockFile(k, profile, h, offset, 0, bytes_low, bytes_high)
}

/// `UnlockFile(hFile, dwFileOffsetLow, dwFileOffsetHigh, nBytesLow,
/// nBytesHigh)`.
///
/// # Errors
///
/// None; unlocking an unlocked range reports `ERROR_NOT_LOCKED`.
pub fn UnlockFile(
    k: &mut Kernel,
    profile: Win32Profile,
    h: Handle,
    offset_low: u32,
    _offset_high: u32,
    _bytes_low: u32,
    _bytes_high: u32,
) -> ApiResult {
    k.charge_call_to(Subsystem::Fs);
    let ofd = match file_ofd(k, h) {
        Ok(ofd) => ofd,
        Err(e) => return Ok(bad_handle_return(profile, e, TRUE)),
    };
    match k.scratch.remove(&lock_key(ofd, offset_low)) {
        Some(_) => Ok(ApiReturn::ok(TRUE)),
        None => Ok(ApiReturn::err(FALSE, ERROR_NOT_LOCKED)),
    }
}

/// `UnlockFileEx(hFile, dwReserved, nBytesLow, nBytesHigh, lpOverlapped)`.
///
/// # Errors
///
/// An SEH abort when the overlapped pointer faults.
pub fn UnlockFileEx(
    k: &mut Kernel,
    profile: Win32Profile,
    h: Handle,
    reserved: u32,
    bytes_low: u32,
    bytes_high: u32,
    overlapped: SimPtr,
) -> ApiResult {
    k.charge_call_to(Subsystem::Fs);
    if reserved != 0 {
        return Ok(ApiReturn::err(FALSE, ERROR_INVALID_PARAMETER));
    }
    let offset = k.space.read_u32(overlapped).map_err(exception)?;
    UnlockFile(k, profile, h, offset, 0, bytes_low, bytes_high)
}

/// `GetFileSize(hFile, lpFileSizeHigh)`.
///
/// # Errors
///
/// An SEH abort when a non-NULL high-size pointer faults under probing.
pub fn GetFileSize(
    k: &mut Kernel,
    profile: Win32Profile,
    h: Handle,
    size_high_out: SimPtr,
) -> ApiResult {
    k.charge_call_to(Subsystem::Fs);
    let ofd = match file_ofd(k, h) {
        Ok(ofd) => ofd,
        Err(e) => {
            // INVALID_FILE_SIZE (0xFFFFFFFF) on error; 9x returns a
            // plausible size silently.
            return Ok(match handle_disposition(profile, e) {
                BadHandle::SilentSuccess => ApiReturn::ok(0),
                BadHandle::ErrorReturn(code) => ApiReturn::err(0xFFFF_FFFF, code),
            });
        }
    };
    let size = match k.fs.size_of(ofd) {
        Ok(s) => s,
        Err(e) => return Ok(ApiReturn::err(0xFFFF_FFFF, errors::from_fs(e))),
    };
    if !size_high_out.is_null() {
        let out = write_out(
            k,
            profile,
            "GetFileSize",
            true,
            size_high_out,
            &((size >> 32) as u32).to_le_bytes(),
        )?;
        return Ok(finish_out(out, (size & 0xFFFF_FFFF) as i64));
    }
    Ok(ApiReturn::ok((size & 0xFFFF_FFFF) as i64))
}

/// `GetFileInformationByHandle(hFile, lpFileInformation)`.
///
/// **Table 3**: on Windows 95/98/98 SE the 52-byte
/// `BY_HANDLE_FILE_INFORMATION` block is written by kernel code with no
/// probing — a hostile pointer is a deterministic whole-system crash.
///
/// # Errors
///
/// An SEH abort on NT/CE when the information pointer faults.
pub fn GetFileInformationByHandle(
    k: &mut Kernel,
    profile: Win32Profile,
    h: Handle,
    info_out: SimPtr,
) -> ApiResult {
    k.charge_call_to(Subsystem::Fs);
    let ofd = match file_ofd(k, h) {
        Ok(ofd) => ofd,
        Err(e) => return Ok(bad_handle_return(profile, e, TRUE)),
    };
    let stat = match k.fs.fstat(ofd) {
        Ok(s) => s,
        Err(e) => return Ok(ApiReturn::err(FALSE, errors::from_fs(e))),
    };
    // BY_HANDLE_FILE_INFORMATION: 13 DWORDs.
    let mut info = Vec::with_capacity(52);
    info.extend_from_slice(&u32::from(stat.attrs.readonly).to_le_bytes()); // attributes
    for _ in 0..6 {
        info.extend_from_slice(&0u32.to_le_bytes()); // times (3 × FILETIME)
    }
    info.extend_from_slice(&0u32.to_le_bytes()); // volume serial
    info.extend_from_slice(&((stat.size >> 32) as u32).to_le_bytes());
    info.extend_from_slice(&((stat.size & 0xFFFF_FFFF) as u32).to_le_bytes());
    info.extend_from_slice(&1u32.to_le_bytes()); // link count
    info.extend_from_slice(&0u32.to_le_bytes()); // index high
    info.extend_from_slice(&(stat.node_id as u32).to_le_bytes()); // index low
    let out = write_out(
        k,
        profile,
        "GetFileInformationByHandle",
        false,
        info_out,
        &info,
    )?;
    Ok(finish_out(out, TRUE))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::cstr;
    use sim_core::addr::PrivilegeLevel;
    use sim_kernel::kernel::MachineFlavor;
    use sim_kernel::variant::OsVariant;

    fn nt() -> Win32Profile {
        Win32Profile::for_os(OsVariant::WinNt4)
    }

    fn w95() -> Win32Profile {
        Win32Profile::for_os(OsVariant::Win95)
    }

    fn w98() -> Win32Profile {
        Win32Profile::for_os(OsVariant::Win98)
    }

    fn wk() -> Kernel {
        Kernel::with_flavor(MachineFlavor::Windows)
    }

    fn put(k: &mut Kernel, s: &str) -> SimPtr {
        let p = k.alloc_user(s.len() as u64 + 1, "str");
        cstr::write_cstr(&mut k.space, p, s, PrivilegeLevel::User).unwrap();
        p
    }

    const GENERIC_READ: u32 = 0x8000_0000;
    const GENERIC_WRITE: u32 = 0x4000_0000;

    fn create(k: &mut Kernel, p: Win32Profile, path: &str) -> Handle {
        let name = put(k, path);
        let r = CreateFile(
            k,
            p,
            name,
            GENERIC_READ | GENERIC_WRITE,
            0,
            SimPtr::NULL,
            2, // CREATE_ALWAYS
            0,
            Handle::NULL,
        )
        .unwrap();
        assert!(!r.reported_error(), "CreateFile failed: {:?}", r.error);
        Handle(r.value as u32)
    }

    #[test]
    fn create_read_write_roundtrip() {
        let mut k = wk();
        let h = create(&mut k, nt(), "C:\\TEMP\\io.bin");
        let data = put(&mut k, "0123456789");
        let written = k.alloc_user(4, "nw");
        let r = WriteFile(&mut k, nt(), h, data, 10, written, SimPtr::NULL).unwrap();
        assert_eq!(r.value, TRUE);
        assert_eq!(k.space.read_u32(written).unwrap(), 10);
        assert_eq!(
            SetFilePointer(&mut k, nt(), h, 0, SimPtr::NULL, 0).unwrap().value,
            0
        );
        let buf = k.alloc_user(16, "buf");
        let read = k.alloc_user(4, "nr");
        let r = ReadFile(&mut k, nt(), h, buf, 10, read, SimPtr::NULL).unwrap();
        assert_eq!(r.value, TRUE);
        assert_eq!(k.space.read_u32(read).unwrap(), 10);
        assert_eq!(k.space.read_bytes(buf, 10).unwrap(), b"0123456789");
    }

    #[test]
    fn create_file_error_paths() {
        let mut k = wk();
        let missing = put(&mut k, "C:\\TEMP\\missing.txt");
        let r = CreateFile(
            &mut k, nt(), missing, GENERIC_READ, 0, SimPtr::NULL, 3, 0, Handle::NULL,
        )
        .unwrap();
        assert_eq!(r.error, Some(errors::ERROR_FILE_NOT_FOUND));
        let bad_disp = put(&mut k, "C:\\TEMP\\x");
        let r = CreateFile(
            &mut k, nt(), bad_disp, GENERIC_READ, 0, SimPtr::NULL, 99, 0, Handle::NULL,
        )
        .unwrap();
        assert_eq!(r.error, Some(ERROR_INVALID_PARAMETER));
        assert!(CreateFile(
            &mut k, nt(), SimPtr::NULL, GENERIC_READ, 0, SimPtr::NULL, 3, 0, Handle::NULL
        )
        .is_err());
    }

    #[test]
    fn read_into_hostile_buffer_aborts_everywhere() {
        let mut k = wk();
        let h = create(&mut k, nt(), "C:\\TEMP\\r.bin");
        let data = put(&mut k, "abc");
        let nw = k.alloc_user(4, "nw");
        WriteFile(&mut k, nt(), h, data, 3, nw, SimPtr::NULL).unwrap();
        SetFilePointer(&mut k, nt(), h, 0, SimPtr::NULL, 0).unwrap();
        for p in [nt(), w98()] {
            assert!(ReadFile(&mut k, p, h, SimPtr::NULL, 3, SimPtr::NULL, SimPtr::NULL).is_err());
        }
    }

    #[test]
    fn bytes_read_out_pointer_splits_nt_vs_9x() {
        let mut k = wk();
        let h = create(&mut k, nt(), "C:\\TEMP\\s.bin");
        let buf = k.alloc_user(4, "buf");
        // NT: bad out-pointer aborts.
        assert!(ReadFile(&mut k, nt(), h, buf, 0, SimPtr::new(0x14), SimPtr::NULL).is_err());
        // 98: silently skipped, success reported.
        let r = ReadFile(&mut k, w98(), h, buf, 0, SimPtr::new(0x14), SimPtr::NULL).unwrap();
        assert_eq!(r.value, TRUE);
        assert!(!r.reported_error());
        assert!(k.is_alive());
    }

    #[test]
    fn get_file_information_crashes_9x_deterministically() {
        let mut k = wk();
        let h = create(&mut k, w95(), "C:\\TEMP\\i.bin");
        // Hostile info pointer: Win95 dies, no residue needed.
        let _ = GetFileInformationByHandle(&mut k, w95(), h, SimPtr::new(0x2000)).unwrap();
        assert!(!k.is_alive());
        assert_eq!(k.crash.info().unwrap().call, "GetFileInformationByHandle");

        // NT: plain abort.
        let mut k2 = wk();
        let h2 = create(&mut k2, nt(), "C:\\TEMP\\i.bin");
        assert!(GetFileInformationByHandle(&mut k2, nt(), h2, SimPtr::new(0x2000)).is_err());
        assert!(k2.is_alive());

        // Valid pointer on 95: works fine.
        let mut k3 = wk();
        let h3 = create(&mut k3, w95(), "C:\\TEMP\\i.bin");
        let info = k3.alloc_user(52, "info");
        let r = GetFileInformationByHandle(&mut k3, w95(), h3, info).unwrap();
        assert_eq!(r.value, TRUE);
        assert!(k3.is_alive());
    }

    #[test]
    fn set_file_pointer_semantics() {
        let mut k = wk();
        let h = create(&mut k, nt(), "C:\\TEMP\\p.bin");
        let data = put(&mut k, "0123456789");
        let nw = k.alloc_user(4, "nw");
        WriteFile(&mut k, nt(), h, data, 10, nw, SimPtr::NULL).unwrap();
        assert_eq!(
            SetFilePointer(&mut k, nt(), h, -3, SimPtr::NULL, 2).unwrap().value,
            7
        );
        assert_eq!(
            SetFilePointer(&mut k, nt(), h, -2, SimPtr::NULL, 1).unwrap().value,
            5
        );
        assert!(SetFilePointer(&mut k, nt(), h, -1, SimPtr::NULL, 0)
            .unwrap()
            .reported_error());
        assert!(SetFilePointer(&mut k, nt(), h, 0, SimPtr::NULL, 7)
            .unwrap()
            .reported_error());
        // High-distance out-pointer probing.
        assert!(SetFilePointer(&mut k, nt(), h, 0, SimPtr::new(0x8), 0).is_err());
    }

    #[test]
    fn locking_protocol() {
        let mut k = wk();
        let h = create(&mut k, nt(), "C:\\TEMP\\l.bin");
        assert_eq!(LockFile(&mut k, nt(), h, 0, 0, 10, 0).unwrap().value, TRUE);
        // Double lock: sharing violation.
        assert!(LockFile(&mut k, nt(), h, 0, 0, 10, 0).unwrap().reported_error());
        // Zero-length lock: invalid parameter.
        assert!(LockFile(&mut k, nt(), h, 4, 0, 0, 0).unwrap().reported_error());
        assert_eq!(UnlockFile(&mut k, nt(), h, 0, 0, 10, 0).unwrap().value, TRUE);
        let r = UnlockFile(&mut k, nt(), h, 0, 0, 10, 0).unwrap();
        assert_eq!(r.error, Some(ERROR_NOT_LOCKED));
    }

    #[test]
    fn lock_ex_reads_overlapped() {
        let mut k = wk();
        let h = create(&mut k, nt(), "C:\\TEMP\\le.bin");
        assert!(LockFileEx(&mut k, nt(), h, 0, 0, 4, 0, SimPtr::NULL).is_err());
        let ov = k.alloc_user(20, "overlapped");
        assert_eq!(
            LockFileEx(&mut k, nt(), h, 0, 0, 4, 0, ov).unwrap().value,
            TRUE
        );
        assert_eq!(
            UnlockFileEx(&mut k, nt(), h, 0, 4, 0, ov).unwrap().value,
            TRUE
        );
        assert!(LockFileEx(&mut k, nt(), h, 0, 7, 4, 0, ov).unwrap().reported_error());
    }

    #[test]
    fn file_size_and_eof_helpers() {
        let mut k = wk();
        let h = create(&mut k, nt(), "C:\\TEMP\\z.bin");
        let data = put(&mut k, "xyz");
        let nw = k.alloc_user(4, "nw");
        WriteFile(&mut k, nt(), h, data, 3, nw, SimPtr::NULL).unwrap();
        assert_eq!(GetFileSize(&mut k, nt(), h, SimPtr::NULL).unwrap().value, 3);
        // Bad handle: NT error with INVALID_FILE_SIZE, 9x silent zero.
        let r = GetFileSize(&mut k, nt(), Handle(0x123), SimPtr::NULL).unwrap();
        assert_eq!(r.value, 0xFFFF_FFFF);
        assert!(r.reported_error());
        let r = GetFileSize(&mut k, w98(), Handle(0x123), SimPtr::NULL).unwrap();
        assert!(!r.reported_error());
        assert_eq!(SetEndOfFile(&mut k, nt(), h).unwrap().value, TRUE);
        assert_eq!(FlushFileBuffers(&mut k, nt(), h).unwrap().value, TRUE);
    }

    #[test]
    fn ex_variants_validate_parameters() {
        let mut k = wk();
        let h = create(&mut k, nt(), "C:\\TEMP\\ex.bin");
        let buf = k.alloc_user(8, "buf");
        let r = ReadFileEx(&mut k, nt(), h, buf, 4, SimPtr::NULL, SimPtr::new(0x5000)).unwrap();
        assert_eq!(r.error, Some(ERROR_INVALID_PARAMETER));
        let ov = k.alloc_user(20, "ov");
        let r = ReadFileEx(&mut k, nt(), h, buf, 4, ov, SimPtr::NULL).unwrap();
        assert_eq!(r.error, Some(ERROR_INVALID_PARAMETER));
    }
}
