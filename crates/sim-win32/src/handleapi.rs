//! Handle management: `CloseHandle`, `DuplicateHandle`, standard handles.
//!
//! `DuplicateHandle` is a Table 3 entry: on the 9x family, duplicating a
//! garbage source handle under harness-accumulated state walks a corrupt
//! handle table in kernel mode and kills the machine (`*DuplicateHandle`).

use crate::errors::{self, ERROR_INVALID_HANDLE};
use crate::marshal::{
    bad_handle_return, finish_out, write_out, BadHandle, handle_disposition, FALSE, TRUE,
};
use crate::profile::Win32Profile;
use sim_core::SimPtr;
use sim_kernel::objects::Handle;
use sim_kernel::outcome::{ApiResult, ApiReturn};
use sim_kernel::Kernel;

/// `CloseHandle(hObject)`.
///
/// NT/CE validate and report `ERROR_INVALID_HANDLE`; 9x quietly returns
/// `TRUE` for garbage handles — one of the highest-volume Silent failures
/// in the reproduction, exactly as estimated in the paper's Figure 2.
///
/// # Errors
///
/// None; bad handles never abort this call on any variant.
pub fn CloseHandle(k: &mut Kernel, profile: Win32Profile, h: Handle) -> ApiResult {
    k.charge_call();
    match k.objects.close(h) {
        Ok(()) => Ok(ApiReturn::ok(TRUE)),
        Err(e) => Ok(bad_handle_return(profile, e, TRUE)),
    }
}

/// `DuplicateHandle(hSrcProc, hSrc, hDstProc, lpDst, access, inherit, opts)`.
///
/// # Errors
///
/// An SEH abort when `lpDst` faults under the probing policy. On 9x with
/// residue, a garbage `hSrc` is Catastrophic (Table 3 `*DuplicateHandle`).
pub fn DuplicateHandle(
    k: &mut Kernel,
    profile: Win32Profile,
    src_process: Handle,
    src: Handle,
    dst_process: Handle,
    dst_out: SimPtr,
    _desired_access: u32,
    inherit: u32,
    _options: u32,
) -> ApiResult {
    k.charge_call();
    // Process-handle arguments accept the pseudo-handle.
    for ph in [src_process, dst_process] {
        if !ph.is_pseudo() && k.objects.get(ph).is_err() {
            let e = k.objects.get(ph).unwrap_err();
            return Ok(bad_handle_return(profile, e, TRUE));
        }
    }
    let dup = match k.objects.duplicate(src) {
        Ok(h) => h,
        Err(e) => {
            if profile.vulnerability_fires_on("DuplicateHandle", k) {
                k.crash.panic(
                    "DuplicateHandle",
                    "kernel handle-table walk through garbage source handle",
                    None,
                );
                return Ok(ApiReturn::ok(TRUE));
            }
            return Ok(bad_handle_return(profile, e, TRUE));
        }
    };
    if inherit != 0 {
        let _ = k.objects.set_inheritable(dup, true);
    }
    let out = write_out(
        k,
        profile,
        "DuplicateHandle",
        true,
        dst_out,
        &dup.raw().to_le_bytes(),
    )?;
    Ok(finish_out(out, TRUE))
}

/// `GetStdHandle(nStdHandle)` — `STD_INPUT_HANDLE` (−10),
/// `STD_OUTPUT_HANDLE` (−11), `STD_ERROR_HANDLE` (−12).
///
/// # Errors
///
/// None; out-of-range selectors return `INVALID_HANDLE_VALUE` robustly.
pub fn GetStdHandle(k: &mut Kernel, _profile: Win32Profile, n_std: i32) -> ApiResult {
    k.charge_call();
    let idx = match n_std {
        -10 => 0,
        -11 => 1,
        -12 => 2,
        _ => {
            return Ok(ApiReturn::err(
                i64::from(Handle::INVALID.raw()),
                errors::ERROR_INVALID_PARAMETER,
            ))
        }
    };
    Ok(ApiReturn::ok(i64::from(k.std_handles[idx].raw())))
}

/// `SetStdHandle(nStdHandle, hHandle)`.
///
/// # Errors
///
/// None; bad selectors and handles return errors (or 9x silence).
pub fn SetStdHandle(k: &mut Kernel, profile: Win32Profile, n_std: i32, h: Handle) -> ApiResult {
    k.charge_call();
    let idx = match n_std {
        -10 => 0,
        -11 => 1,
        -12 => 2,
        _ => return Ok(ApiReturn::err(FALSE, errors::ERROR_INVALID_PARAMETER)),
    };
    if k.objects.get(h).is_err() {
        let e = k.objects.get(h).unwrap_err();
        match handle_disposition(profile, e) {
            BadHandle::SilentSuccess => {
                // 9x stores the garbage handle without looking at it.
                k.std_handles[idx] = h;
                return Ok(ApiReturn::ok(TRUE));
            }
            BadHandle::ErrorReturn(code) => return Ok(ApiReturn::err(FALSE, code)),
        }
    }
    k.std_handles[idx] = h;
    Ok(ApiReturn::ok(TRUE))
}

/// `GetHandleInformation(hObject, lpdwFlags)`.
///
/// # Errors
///
/// An SEH abort when `lpdwFlags` faults under the probing policy.
pub fn GetHandleInformation(
    k: &mut Kernel,
    profile: Win32Profile,
    h: Handle,
    flags_out: SimPtr,
) -> ApiResult {
    k.charge_call();
    if let Err(e) = k.objects.get(h) {
        return Ok(bad_handle_return(profile, e, TRUE));
    }
    let out = write_out(
        k,
        profile,
        "GetHandleInformation",
        true,
        flags_out,
        &0u32.to_le_bytes(),
    )?;
    Ok(finish_out(out, TRUE))
}

/// `SetHandleInformation(hObject, dwMask, dwFlags)`.
///
/// # Errors
///
/// None; bad handles return errors (or 9x silence).
pub fn SetHandleInformation(
    k: &mut Kernel,
    profile: Win32Profile,
    h: Handle,
    mask: u32,
    flags: u32,
) -> ApiResult {
    k.charge_call();
    const HANDLE_FLAG_INHERIT: u32 = 1;
    match k.objects.set_inheritable(h, mask & flags & HANDLE_FLAG_INHERIT != 0) {
        Ok(()) => Ok(ApiReturn::ok(TRUE)),
        Err(e) => Ok(bad_handle_return(profile, e, TRUE)),
    }
}

/// `GetFileType(hFile)` — `FILE_TYPE_DISK` (1), `FILE_TYPE_CHAR` (2),
/// `FILE_TYPE_UNKNOWN` (0).
///
/// # Errors
///
/// None.
pub fn GetFileType(k: &mut Kernel, profile: Win32Profile, h: Handle) -> ApiResult {
    k.charge_call();
    use sim_kernel::objects::ObjectKind;
    match k.objects.get(h) {
        Ok(ObjectKind::File(_)) => Ok(ApiReturn::ok(1)),
        Ok(ObjectKind::ConsoleStream { .. }) => Ok(ApiReturn::ok(2)),
        Ok(_) => Ok(ApiReturn::err(0, ERROR_INVALID_HANDLE)),
        Err(e) => {
            // The "unknown" return makes the silent path observable: 9x
            // reports FILE_TYPE_DISK for garbage.
            match handle_disposition(profile, e) {
                BadHandle::SilentSuccess => Ok(ApiReturn::ok(1)),
                BadHandle::ErrorReturn(code) => Ok(ApiReturn::err(0, code)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_kernel::objects::ObjectKind;
    use sim_kernel::sync::SyncState;
    use sim_kernel::variant::OsVariant;

    fn nt() -> Win32Profile {
        Win32Profile::for_os(OsVariant::WinNt4)
    }

    fn w98() -> Win32Profile {
        Win32Profile::for_os(OsVariant::Win98)
    }

    fn event(k: &mut Kernel) -> Handle {
        k.objects.insert(ObjectKind::Event(SyncState::event(false, false)))
    }

    #[test]
    fn close_handle_split() {
        let mut k = Kernel::new();
        let h = event(&mut k);
        assert_eq!(CloseHandle(&mut k, nt(), h).unwrap().value, TRUE);
        // Closed handle: NT reports, 98 silently succeeds.
        let r = CloseHandle(&mut k, nt(), h).unwrap();
        assert_eq!(r.value, FALSE);
        assert_eq!(r.error, Some(ERROR_INVALID_HANDLE));
        let r = CloseHandle(&mut k, w98(), h).unwrap();
        assert_eq!(r.value, TRUE);
        assert!(!r.reported_error());
        // Garbage values.
        let r = CloseHandle(&mut k, nt(), Handle(0xABCD)).unwrap();
        assert!(r.reported_error());
        let r = CloseHandle(&mut k, w98(), Handle(0xABCD)).unwrap();
        assert!(!r.reported_error());
    }

    #[test]
    fn duplicate_handle_happy_path() {
        let mut k = Kernel::new();
        let h = event(&mut k);
        let out = k.alloc_user(4, "dup");
        let r = DuplicateHandle(
            &mut k,
            nt(),
            Handle::CURRENT_PROCESS,
            h,
            Handle::CURRENT_PROCESS,
            out,
            0,
            0,
            0,
        )
        .unwrap();
        assert_eq!(r.value, TRUE);
        let dup = Handle(k.space.read_u32(out).unwrap());
        assert!(k.objects.get(dup).is_ok());
    }

    #[test]
    fn duplicate_handle_crashes_9x_with_residue() {
        let mut k = Kernel::new();
        k.residue = 5;
        let out = k.alloc_user(4, "dup");
        let _ = DuplicateHandle(
            &mut k,
            w98(),
            Handle::CURRENT_PROCESS,
            Handle(0x7777),
            Handle::CURRENT_PROCESS,
            out,
            0,
            0,
            0,
        )
        .unwrap();
        assert!(!k.is_alive());

        // No residue: silent success instead.
        let mut k2 = Kernel::new();
        let out2 = k2.alloc_user(4, "dup");
        let r = DuplicateHandle(
            &mut k2,
            w98(),
            Handle::CURRENT_PROCESS,
            Handle(0x7777),
            Handle::CURRENT_PROCESS,
            out2,
            0,
            0,
            0,
        )
        .unwrap();
        assert_eq!(r.value, TRUE);
        assert!(k2.is_alive());

        // NT with residue: robust error.
        let mut k3 = Kernel::new();
        k3.residue = 5;
        let out3 = k3.alloc_user(4, "dup");
        let r = DuplicateHandle(
            &mut k3,
            nt(),
            Handle::CURRENT_PROCESS,
            Handle(0x7777),
            Handle::CURRENT_PROCESS,
            out3,
            0,
            0,
            0,
        )
        .unwrap();
        assert!(r.reported_error());
        assert!(k3.is_alive());
    }

    #[test]
    fn duplicate_handle_bad_out_pointer_aborts_nt() {
        let mut k = Kernel::new();
        let h = event(&mut k);
        assert!(DuplicateHandle(
            &mut k,
            nt(),
            Handle::CURRENT_PROCESS,
            h,
            Handle::CURRENT_PROCESS,
            SimPtr::NULL,
            0,
            0,
            0
        )
        .is_err());
    }

    #[test]
    fn std_handles() {
        let mut k = Kernel::new();
        let r = GetStdHandle(&mut k, nt(), -11).unwrap();
        assert_eq!(r.value as u32, k.std_handles[1].raw());
        assert!(GetStdHandle(&mut k, nt(), 42).unwrap().reported_error());
        let h = event(&mut k);
        assert_eq!(SetStdHandle(&mut k, nt(), -10, h).unwrap().value, TRUE);
        assert_eq!(k.std_handles[0], h);
        assert!(SetStdHandle(&mut k, nt(), 0, h).unwrap().reported_error());
        // 9x accepts garbage silently.
        assert_eq!(
            SetStdHandle(&mut k, w98(), -12, Handle(0x9999)).unwrap().value,
            TRUE
        );
    }

    #[test]
    fn handle_information() {
        let mut k = Kernel::new();
        let h = event(&mut k);
        let out = k.alloc_user(4, "flags");
        assert_eq!(
            GetHandleInformation(&mut k, nt(), h, out).unwrap().value,
            TRUE
        );
        assert!(GetHandleInformation(&mut k, nt(), h, SimPtr::NULL).is_err());
        assert_eq!(
            SetHandleInformation(&mut k, nt(), h, 1, 1).unwrap().value,
            TRUE
        );
        assert!(SetHandleInformation(&mut k, nt(), Handle(0xF00), 1, 1)
            .unwrap()
            .reported_error());
    }

    #[test]
    fn file_type() {
        let mut k = Kernel::new();
        let std_out = k.std_handles[1];
        assert_eq!(GetFileType(&mut k, nt(), std_out).unwrap().value, 2);
        let e = event(&mut k);
        assert!(GetFileType(&mut k, nt(), e).unwrap().reported_error());
        // Garbage: NT error, 98 claims a disk file silently.
        assert!(GetFileType(&mut k, nt(), Handle(0x8888)).unwrap().reported_error());
        let r = GetFileType(&mut k, w98(), Handle(0x8888)).unwrap();
        assert_eq!(r.value, 1);
        assert!(!r.reported_error());
    }
}
