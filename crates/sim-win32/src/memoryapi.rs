//! Virtual memory, cross-process memory and file mappings — half of the
//! paper's *Memory Management* grouping.
//!
//! Table 3 entries implemented here: `VirtualAlloc` (deterministic
//! Catastrophic on Windows CE — the CE kernel manipulates page tables at an
//! unvalidated caller-supplied address) and `ReadProcessMemory`
//! (interference-dependent Catastrophic on Windows 95 and CE — the kernel
//! copies into the destination buffer with no probing).

use sim_kernel::Subsystem;
use crate::errors::{self, ERROR_INVALID_PARAMETER};
use crate::marshal::{
    bad_handle_return, exception, finish_out, kernel_write, read_buffer, write_out, OutWrite,
    FALSE, TRUE,
};
use crate::profile::Win32Profile;
use sim_core::addr::PrivilegeLevel;
use sim_core::memory::Protection;
use sim_core::{AccessKind, SimPtr};
use sim_kernel::objects::{Handle, ObjectKind};
use sim_kernel::outcome::{ApiResult, ApiReturn};
use sim_kernel::Kernel;

fn protection_from_fl(fl_protect: u32) -> Option<Protection> {
    // PAGE_NOACCESS=0x01, PAGE_READONLY=0x02, PAGE_READWRITE=0x04,
    // PAGE_EXECUTE=0x10, PAGE_EXECUTE_READ=0x20, PAGE_EXECUTE_READWRITE=0x40.
    match fl_protect {
        0x01 => Some(Protection::NONE),
        0x02 => Some(Protection::READ),
        0x04 => Some(Protection::READ_WRITE),
        0x10 | 0x20 => Some(Protection::READ_EXECUTE),
        0x40 => Some(Protection::READ_WRITE_EXECUTE),
        _ => None,
    }
}

/// `VirtualAlloc(lpAddress, dwSize, flAllocationType, flProtect)`.
///
/// **Table 3**: on Windows CE, a bogus non-NULL `lpAddress` is handed to
/// kernel page-table code unvalidated — a deterministic whole-system
/// crash.
///
/// # Errors
///
/// None on desktop variants; hostile parameters produce error returns.
pub fn VirtualAlloc(
    k: &mut Kernel,
    profile: Win32Profile,
    address: SimPtr,
    size: u64,
    _allocation_type: u32,
    fl_protect: u32,
) -> ApiResult {
    k.charge_call_to(Subsystem::Heap);
    let Some(prot) = protection_from_fl(fl_protect) else {
        return Ok(ApiReturn::err(0, ERROR_INVALID_PARAMETER));
    };
    if size == 0 {
        return Ok(ApiReturn::err(0, ERROR_INVALID_PARAMETER));
    }
    if address.is_null() {
        return match k.space.map(size, prot, "VirtualAlloc") {
            Ok(p) => Ok(ApiReturn::ok(p.addr() as i64)),
            Err(_) => Ok(ApiReturn::err(0, errors::ERROR_NOT_ENOUGH_MEMORY)),
        };
    }
    // Explicit placement. The CE kernel touches its page structures at the
    // caller's address before validating it.
    if profile.vulnerability_fires_on("VirtualAlloc", k)
        && k.space.region_containing(address).is_none()
    {
        k.crash.panic(
            "VirtualAlloc",
            "CE kernel page-table update at unvalidated caller address",
            None,
        );
        return Ok(ApiReturn::ok(address.addr() as i64));
    }
    match k.space.map_at(address, size, prot, "VirtualAlloc@") {
        Ok(()) => Ok(ApiReturn::ok(address.addr() as i64)),
        Err(_) => Ok(ApiReturn::err(0, ERROR_INVALID_PARAMETER)),
    }
}

/// `VirtualFree(lpAddress, dwSize, dwFreeType)` — `MEM_RELEASE` (0x8000)
/// requires `dwSize == 0`.
///
/// # Errors
///
/// None; misuse returns errors.
pub fn VirtualFree(
    k: &mut Kernel,
    _profile: Win32Profile,
    address: SimPtr,
    size: u64,
    free_type: u32,
) -> ApiResult {
    k.charge_call_to(Subsystem::Heap);
    const MEM_RELEASE: u32 = 0x8000;
    if free_type & MEM_RELEASE != 0 && size != 0 {
        return Ok(ApiReturn::err(FALSE, ERROR_INVALID_PARAMETER));
    }
    match k.space.unmap(address) {
        Ok(()) => Ok(ApiReturn::ok(TRUE)),
        Err(_) => Ok(ApiReturn::err(FALSE, ERROR_INVALID_PARAMETER)),
    }
}

/// `VirtualProtect(lpAddress, dwSize, flNewProtect, lpflOldProtect)`.
///
/// # Errors
///
/// An SEH abort when the old-protection out-pointer faults under probing.
pub fn VirtualProtect(
    k: &mut Kernel,
    profile: Win32Profile,
    address: SimPtr,
    _size: u64,
    fl_new: u32,
    old_out: SimPtr,
) -> ApiResult {
    k.charge_call_to(Subsystem::Heap);
    let Some(prot) = protection_from_fl(fl_new) else {
        return Ok(ApiReturn::err(FALSE, ERROR_INVALID_PARAMETER));
    };
    let Some((base, _, old_prot, _)) = k.space.region_containing(address) else {
        return Ok(ApiReturn::err(FALSE, ERROR_INVALID_PARAMETER));
    };
    let old_fl: u32 = if old_prot.can_write() {
        0x04
    } else if old_prot.can_read() {
        0x02
    } else {
        0x01
    };
    // Real VirtualProtect requires a writable lpflOldProtect *before*
    // changing anything.
    let out = write_out(
        k,
        profile,
        "VirtualProtect",
        true,
        old_out,
        &old_fl.to_le_bytes(),
    )?;
    if let OutWrite::ErrorReturn(code) = out {
        return Ok(ApiReturn::err(FALSE, code));
    }
    match k.space.protect(base, prot) {
        Ok(()) => Ok(ApiReturn::ok(TRUE)),
        Err(_) => Ok(ApiReturn::err(FALSE, ERROR_INVALID_PARAMETER)),
    }
}

/// `VirtualQuery(lpAddress, lpBuffer, dwLength)` — fills a 28-byte
/// `MEMORY_BASIC_INFORMATION`.
///
/// # Errors
///
/// An SEH abort when the information buffer faults under probing.
pub fn VirtualQuery(
    k: &mut Kernel,
    profile: Win32Profile,
    address: SimPtr,
    buffer: SimPtr,
    length: u64,
) -> ApiResult {
    k.charge_call_to(Subsystem::Heap);
    if length < 28 {
        return Ok(ApiReturn::ok(0));
    }
    let (base, len, prot, state) = match k.space.region_containing(address) {
        Some((b, l, p, _)) => (b.addr() as u32, l as u32, p, 0x1000u32), // MEM_COMMIT
        None => (address.addr() as u32 & !0xFFF, 0x1000, Protection::NONE, 0x1_0000), // MEM_FREE
    };
    let prot_fl: u32 = if prot.can_write() {
        0x04
    } else if prot.can_read() {
        0x02
    } else {
        0x01
    };
    let mut info = Vec::with_capacity(28);
    info.extend_from_slice(&base.to_le_bytes()); // BaseAddress
    info.extend_from_slice(&base.to_le_bytes()); // AllocationBase
    info.extend_from_slice(&prot_fl.to_le_bytes()); // AllocationProtect
    info.extend_from_slice(&len.to_le_bytes()); // RegionSize
    info.extend_from_slice(&state.to_le_bytes()); // State
    info.extend_from_slice(&prot_fl.to_le_bytes()); // Protect
    info.extend_from_slice(&0u32.to_le_bytes()); // Type
    let out = write_out(k, profile, "VirtualQuery", false, buffer, &info)?;
    Ok(finish_out(out, 28))
}

/// `IsBadReadPtr(lp, ucb)` — returns nonzero when the range is *not*
/// readable. Robust by definition: it never faults, it answers.
///
/// # Errors
///
/// None.
pub fn IsBadReadPtr(k: &mut Kernel, _profile: Win32Profile, lp: SimPtr, ucb: u64) -> ApiResult {
    k.charge_call_to(Subsystem::Heap);
    if ucb == 0 {
        return Ok(ApiReturn::ok(0));
    }
    let bad = k
        .space
        .check_access(lp, ucb, 1, AccessKind::Read, PrivilegeLevel::User)
        .is_err();
    Ok(ApiReturn::ok(i64::from(bad)))
}

/// `IsBadWritePtr(lp, ucb)`.
///
/// # Errors
///
/// None.
pub fn IsBadWritePtr(k: &mut Kernel, _profile: Win32Profile, lp: SimPtr, ucb: u64) -> ApiResult {
    k.charge_call_to(Subsystem::Heap);
    if ucb == 0 {
        return Ok(ApiReturn::ok(0));
    }
    let bad = k
        .space
        .check_access(lp, ucb, 1, AccessKind::Write, PrivilegeLevel::User)
        .is_err();
    Ok(ApiReturn::ok(i64::from(bad)))
}

/// `IsBadStringPtr(lpsz, ucchMax)` — scans for a terminator, bounded.
///
/// # Errors
///
/// None.
pub fn IsBadStringPtr(k: &mut Kernel, _profile: Win32Profile, lpsz: SimPtr, max: u64) -> ApiResult {
    k.charge_call_to(Subsystem::Heap);
    let mut cursor = lpsz;
    for _ in 0..max {
        match k.space.read_u8(cursor) {
            Ok(0) => return Ok(ApiReturn::ok(0)),
            Ok(_) => cursor = cursor.offset(1),
            Err(_) => return Ok(ApiReturn::ok(1)),
        }
    }
    Ok(ApiReturn::ok(0))
}

/// `ReadProcessMemory(hProcess, lpBaseAddress, lpBuffer, nSize,
/// lpNumberOfBytesRead)`.
///
/// **Table 3**: on Windows 95 and CE (with harness residue), the kernel
/// copies into `lpBuffer` with no probing — Catastrophic.
///
/// # Errors
///
/// An SEH abort when the source address faults under user probing (NT),
/// or the buffer faults.
pub fn ReadProcessMemory(
    k: &mut Kernel,
    profile: Win32Profile,
    process: Handle,
    base: SimPtr,
    buffer: SimPtr,
    size: u64,
    bytes_read_out: SimPtr,
) -> ApiResult {
    k.charge_call_to(Subsystem::Heap);
    if !process.is_pseudo() && k.objects.get(process).is_err() {
        let e = k.objects.get(process).unwrap_err();
        return Ok(bad_handle_return(profile, e, TRUE));
    }
    // Read the source range (the target process is ourselves in the
    // simulation). An unreadable source is a robust error on NT.
    let data = match k.space.read_bytes_at(base, size, PrivilegeLevel::User) {
        Ok(d) => d,
        Err(_) => return Ok(ApiReturn::err(FALSE, errors::ERROR_NOACCESS)),
    };
    if profile.vulnerability_fires_on("ReadProcessMemory", k) {
        let out = kernel_write(k, "ReadProcessMemory", buffer, &data);
        return Ok(finish_out(out, TRUE));
    }
    k.space.write_bytes(buffer, &data).map_err(exception)?;
    if !bytes_read_out.is_null() {
        let out = write_out(
            k,
            profile,
            "ReadProcessMemory",
            true,
            bytes_read_out,
            &(size as u32).to_le_bytes(),
        )?;
        return Ok(finish_out(out, TRUE));
    }
    Ok(ApiReturn::ok(TRUE))
}

/// `WriteProcessMemory(hProcess, lpBaseAddress, lpBuffer, nSize,
/// lpNumberOfBytesWritten)`.
///
/// # Errors
///
/// An SEH abort when the source buffer faults.
pub fn WriteProcessMemory(
    k: &mut Kernel,
    profile: Win32Profile,
    process: Handle,
    base: SimPtr,
    buffer: SimPtr,
    size: u64,
    bytes_written_out: SimPtr,
) -> ApiResult {
    k.charge_call_to(Subsystem::Heap);
    if !process.is_pseudo() && k.objects.get(process).is_err() {
        let e = k.objects.get(process).unwrap_err();
        return Ok(bad_handle_return(profile, e, TRUE));
    }
    let data = read_buffer(k, buffer, size)?;
    if k.space.write_bytes(base, &data).is_err() {
        return Ok(ApiReturn::err(FALSE, errors::ERROR_NOACCESS));
    }
    if !bytes_written_out.is_null() {
        let out = write_out(
            k,
            profile,
            "WriteProcessMemory",
            true,
            bytes_written_out,
            &(size as u32).to_le_bytes(),
        )?;
        return Ok(finish_out(out, TRUE));
    }
    Ok(ApiReturn::ok(TRUE))
}

/// `CreateFileMapping(hFile, lpSecurity, flProtect, dwMaxHigh, dwMaxLow,
/// lpName)` — `INVALID_HANDLE_VALUE` means a pagefile-backed mapping and
/// is legal.
///
/// # Errors
///
/// An SEH abort when a non-NULL name pointer faults.
pub fn CreateFileMapping(
    k: &mut Kernel,
    profile: Win32Profile,
    file: Handle,
    _security: SimPtr,
    fl_protect: u32,
    max_high: u32,
    max_low: u32,
    name: SimPtr,
) -> ApiResult {
    k.charge_call_to(Subsystem::Heap);
    if !name.is_null() {
        let _ = crate::marshal::read_string(k, name)?;
    }
    if protection_from_fl(fl_protect).is_none() {
        return Ok(ApiReturn::err(0, ERROR_INVALID_PARAMETER));
    }
    let backing = if file == Handle::INVALID {
        if max_high == 0 && max_low == 0 {
            return Ok(ApiReturn::err(0, ERROR_INVALID_PARAMETER));
        }
        None
    } else {
        match k.objects.get(file) {
            Ok(ObjectKind::File(ofd)) => Some(*ofd),
            Ok(_) => return Ok(ApiReturn::err(0, errors::ERROR_INVALID_HANDLE)),
            Err(e) => return Ok(bad_handle_return(profile, e, 1)),
        }
    };
    let len = (u64::from(max_high) << 32) | u64::from(max_low);
    let h = k.objects.insert(ObjectKind::FileMapping { file: backing, len });
    Ok(ApiReturn::ok(i64::from(h.raw())))
}

/// `MapViewOfFile(hFileMappingObject, dwDesiredAccess, dwOffsetHigh,
/// dwOffsetLow, dwNumberOfBytesToMap)`.
///
/// # Errors
///
/// None; bad handles return errors (or 9x silence).
pub fn MapViewOfFile(
    k: &mut Kernel,
    profile: Win32Profile,
    mapping: Handle,
    _desired_access: u32,
    _offset_high: u32,
    offset_low: u32,
    bytes_to_map: u64,
) -> ApiResult {
    k.charge_call_to(Subsystem::Heap);
    let (backing, len) = match k.objects.get(mapping) {
        Ok(ObjectKind::FileMapping { file, len }) => (*file, *len),
        Ok(_) => return Ok(ApiReturn::err(0, errors::ERROR_INVALID_HANDLE)),
        Err(e) => {
            return Ok(match crate::marshal::handle_disposition(profile, e) {
                crate::marshal::BadHandle::SilentSuccess => ApiReturn::ok(0x0BAD_0000),
                crate::marshal::BadHandle::ErrorReturn(code) => ApiReturn::err(0, code),
            })
        }
    };
    let view_len = if bytes_to_map == 0 {
        len.max(0x1000)
    } else {
        bytes_to_map
    };
    let view = match k.space.map(view_len, Protection::READ_WRITE, "MapViewOfFile") {
        Ok(p) => p,
        Err(_) => return Ok(ApiReturn::err(0, errors::ERROR_NOT_ENOUGH_MEMORY)),
    };
    if let Some(ofd) = backing {
        // Populate the view with the file contents from the offset.
        let _ = k.fs.seek(ofd, sim_kernel::fs::SeekFrom::Start(u64::from(offset_low)));
        let mut data = vec![0u8; view_len as usize];
        if let Ok(n) = k.fs.read(ofd, &mut data) {
            let _ = k.space.write_bytes(view, &data[..n]);
        }
    }
    Ok(ApiReturn::ok(view.addr() as i64))
}

/// `UnmapViewOfFile(lpBaseAddress)`.
///
/// # Errors
///
/// None; a bad base address returns an error.
pub fn UnmapViewOfFile(k: &mut Kernel, _profile: Win32Profile, base: SimPtr) -> ApiResult {
    k.charge_call_to(Subsystem::Heap);
    match k.space.unmap(base) {
        Ok(()) => Ok(ApiReturn::ok(TRUE)),
        Err(_) => Ok(ApiReturn::err(FALSE, ERROR_INVALID_PARAMETER)),
    }
}

/// `FlushViewOfFile(lpBaseAddress, dwNumberOfBytesToFlush)`.
///
/// # Errors
///
/// None.
pub fn FlushViewOfFile(
    k: &mut Kernel,
    _profile: Win32Profile,
    base: SimPtr,
    _bytes: u64,
) -> ApiResult {
    k.charge_call_to(Subsystem::Heap);
    if k.space.region_containing(base).is_none() {
        return Ok(ApiReturn::err(FALSE, ERROR_INVALID_PARAMETER));
    }
    Ok(ApiReturn::ok(TRUE))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_kernel::kernel::MachineFlavor;
    use sim_kernel::variant::OsVariant;

    fn nt() -> Win32Profile {
        Win32Profile::for_os(OsVariant::WinNt4)
    }

    fn w95() -> Win32Profile {
        Win32Profile::for_os(OsVariant::Win95)
    }

    fn ce() -> Win32Profile {
        Win32Profile::for_os(OsVariant::WinCe)
    }

    #[test]
    fn virtual_alloc_free_roundtrip() {
        let mut k = Kernel::with_flavor(MachineFlavor::Windows);
        let r = VirtualAlloc(&mut k, nt(), SimPtr::NULL, 0x1000, 0x1000, 0x04).unwrap();
        assert!(r.value != 0);
        let p = SimPtr::new(r.value as u64);
        k.space.write_u8(p, 1).unwrap();
        assert_eq!(VirtualFree(&mut k, nt(), p, 0, 0x8000).unwrap().value, TRUE);
        assert!(VirtualFree(&mut k, nt(), p, 0, 0x8000).unwrap().reported_error());
        // Bad protect flag and zero size are robust errors.
        assert!(VirtualAlloc(&mut k, nt(), SimPtr::NULL, 0x1000, 0, 0x99)
            .unwrap()
            .reported_error());
        assert!(VirtualAlloc(&mut k, nt(), SimPtr::NULL, 0, 0, 0x04)
            .unwrap()
            .reported_error());
    }

    #[test]
    fn virtual_alloc_crashes_ce_on_bogus_address() {
        let mut k = Kernel::with_flavor(MachineFlavor::WindowsStrictAlign);
        let _ = VirtualAlloc(&mut k, ce(), SimPtr::new(0x1234_5678), 0x1000, 0x1000, 0x04).unwrap();
        assert!(!k.is_alive());
        // NT: robust error for an unusable placement.
        let mut k2 = Kernel::with_flavor(MachineFlavor::Windows);
        let r = VirtualAlloc(&mut k2, nt(), SimPtr::new(0x3), 0x1000, 0x1000, 0x04).unwrap();
        assert!(r.reported_error() || r.value != 0);
        assert!(k2.is_alive());
    }

    #[test]
    fn virtual_protect_and_query() {
        let mut k = Kernel::with_flavor(MachineFlavor::Windows);
        let r = VirtualAlloc(&mut k, nt(), SimPtr::NULL, 64, 0x1000, 0x04).unwrap();
        let p = SimPtr::new(r.value as u64);
        let old = k.alloc_user(4, "old");
        assert_eq!(
            VirtualProtect(&mut k, nt(), p, 64, 0x02, old).unwrap().value,
            TRUE
        );
        assert_eq!(k.space.read_u32(old).unwrap(), 0x04);
        assert!(k.space.write_u8(p, 1).is_err()); // now read-only
        // Hostile old-protect pointer aborts on NT before mutating.
        assert!(VirtualProtect(&mut k, nt(), p, 64, 0x04, SimPtr::NULL).is_err());

        let info = k.alloc_user(28, "mbi");
        assert_eq!(VirtualQuery(&mut k, nt(), p, info, 28).unwrap().value, 28);
        assert_eq!(k.space.read_u32(info).unwrap() as u64, p.addr());
        // Short buffer: robust zero.
        assert_eq!(VirtualQuery(&mut k, nt(), p, info, 10).unwrap().value, 0);
    }

    #[test]
    fn is_bad_ptr_family() {
        let mut k = Kernel::with_flavor(MachineFlavor::Windows);
        let good = k.alloc_user(16, "buf");
        assert_eq!(IsBadReadPtr(&mut k, nt(), good, 16).unwrap().value, 0);
        assert_eq!(IsBadReadPtr(&mut k, nt(), SimPtr::NULL, 1).unwrap().value, 1);
        assert_eq!(IsBadWritePtr(&mut k, nt(), good, 16).unwrap().value, 0);
        assert_eq!(
            IsBadWritePtr(&mut k, nt(), SimPtr::INVALID, 4).unwrap().value,
            1
        );
        // Zero length is never bad.
        assert_eq!(IsBadReadPtr(&mut k, nt(), SimPtr::NULL, 0).unwrap().value, 0);
        sim_core::cstr::write_cstr(&mut k.space, good, "ok", PrivilegeLevel::User).unwrap();
        assert_eq!(IsBadStringPtr(&mut k, nt(), good, 16).unwrap().value, 0);
        assert_eq!(IsBadStringPtr(&mut k, nt(), SimPtr::NULL, 16).unwrap().value, 1);
    }

    #[test]
    fn read_process_memory_crash_matrix() {
        // Win95 + residue + hostile buffer → Catastrophic.
        let mut k = Kernel::with_flavor(MachineFlavor::Windows);
        k.residue = 5;
        let src = k.alloc_user(16, "src");
        let _ = ReadProcessMemory(
            &mut k,
            w95(),
            Handle::CURRENT_PROCESS,
            src,
            SimPtr::new(0x40),
            8,
            SimPtr::NULL,
        )
        .unwrap();
        assert!(!k.is_alive());

        // Win95 without residue → plain abort.
        let mut k2 = Kernel::with_flavor(MachineFlavor::Windows);
        let src2 = k2.alloc_user(16, "src");
        assert!(ReadProcessMemory(
            &mut k2,
            w95(),
            Handle::CURRENT_PROCESS,
            src2,
            SimPtr::new(0x40),
            8,
            SimPtr::NULL
        )
        .is_err());
        assert!(k2.is_alive());

        // NT: abort, never crash.
        let mut k3 = Kernel::with_flavor(MachineFlavor::Windows);
        k3.residue = 9;
        let src3 = k3.alloc_user(16, "src");
        assert!(ReadProcessMemory(
            &mut k3,
            nt(),
            Handle::CURRENT_PROCESS,
            src3,
            SimPtr::new(0x40),
            8,
            SimPtr::NULL
        )
        .is_err());
        assert!(k3.is_alive());

        // Unreadable source: robust ERROR_NOACCESS.
        let buf = k3.alloc_user(16, "dst");
        let r = ReadProcessMemory(
            &mut k3,
            nt(),
            Handle::CURRENT_PROCESS,
            SimPtr::new(0x99),
            buf,
            8,
            SimPtr::NULL,
        )
        .unwrap();
        assert_eq!(r.error, Some(errors::ERROR_NOACCESS));
    }

    #[test]
    fn write_process_memory() {
        let mut k = Kernel::with_flavor(MachineFlavor::Windows);
        let dst = k.alloc_user(8, "dst");
        let src = k.alloc_user(8, "src");
        k.space.write_bytes(src, b"payload!").unwrap();
        let r = WriteProcessMemory(
            &mut k,
            nt(),
            Handle::CURRENT_PROCESS,
            dst,
            src,
            8,
            SimPtr::NULL,
        )
        .unwrap();
        assert_eq!(r.value, TRUE);
        assert_eq!(k.space.read_bytes(dst, 8).unwrap(), b"payload!");
        // Hostile source buffer aborts; hostile target is a robust error.
        assert!(WriteProcessMemory(
            &mut k,
            nt(),
            Handle::CURRENT_PROCESS,
            dst,
            SimPtr::NULL,
            8,
            SimPtr::NULL
        )
        .is_err());
        let r = WriteProcessMemory(
            &mut k,
            nt(),
            Handle::CURRENT_PROCESS,
            SimPtr::new(0x44),
            src,
            8,
            SimPtr::NULL,
        )
        .unwrap();
        assert_eq!(r.error, Some(errors::ERROR_NOACCESS));
    }

    #[test]
    fn file_mapping_lifecycle() {
        let mut k = Kernel::with_flavor(MachineFlavor::Windows);
        k.fs.create_file("C:\\TEMP\\map.bin", b"mapped contents".to_vec())
            .unwrap();
        let ofd = k
            .fs
            .open("C:\\TEMP\\map.bin", sim_kernel::fs::OpenOptions::read_only())
            .unwrap();
        let fh = k.objects.insert(ObjectKind::File(ofd));
        let r = CreateFileMapping(&mut k, nt(), fh, SimPtr::NULL, 0x02, 0, 0, SimPtr::NULL).unwrap();
        assert!(!r.reported_error());
        let mh = Handle(r.value as u32);
        let r = MapViewOfFile(&mut k, nt(), mh, 4, 0, 0, 15).unwrap();
        let view = SimPtr::new(r.value as u64);
        assert_eq!(k.space.read_bytes(view, 6).unwrap(), b"mapped");
        assert_eq!(FlushViewOfFile(&mut k, nt(), view, 0).unwrap().value, TRUE);
        assert_eq!(UnmapViewOfFile(&mut k, nt(), view).unwrap().value, TRUE);
        assert!(UnmapViewOfFile(&mut k, nt(), view).unwrap().reported_error());
        // Pagefile-backed mapping with zero size: invalid parameter.
        let r = CreateFileMapping(
            &mut k,
            nt(),
            Handle::INVALID,
            SimPtr::NULL,
            0x02,
            0,
            0,
            SimPtr::NULL,
        )
        .unwrap();
        assert_eq!(r.error, Some(ERROR_INVALID_PARAMETER));
        // Pagefile-backed with a size works.
        let r = CreateFileMapping(
            &mut k,
            nt(),
            Handle::INVALID,
            SimPtr::NULL,
            0x02,
            0,
            0x1000,
            SimPtr::NULL,
        )
        .unwrap();
        assert!(!r.reported_error());
    }
}
