//! Time: tick counts, system time, and the `FILETIME`/`SYSTEMTIME`
//! conversion calls (grouped by the paper under *File/Directory Access*).
//!
//! Table 3 entry implemented here: `FileTimeToSystemTime` is a
//! deterministic Catastrophic failure on Windows 95 — the conversion runs
//! through a 16-bit thunk that writes the result `SYSTEMTIME` with no
//! probing of the caller's pointer.

use sim_kernel::Subsystem;
use crate::errors::ERROR_INVALID_PARAMETER;
use crate::marshal::{exception, finish_out, kernel_write, write_out, FALSE, TRUE};
use crate::profile::Win32Profile;
use sim_core::SimPtr;
use sim_kernel::clock::{filetime_to_systemtime, systemtime_to_filetime, FileTime, SystemTime};
use sim_kernel::outcome::{ApiResult, ApiReturn};
use sim_kernel::Kernel;

fn systemtime_bytes(st: &SystemTime) -> [u8; 16] {
    let mut out = [0u8; 16];
    for (i, v) in [
        st.year,
        st.month,
        st.day_of_week,
        st.day,
        st.hour,
        st.minute,
        st.second,
        st.milliseconds,
    ]
    .into_iter()
    .enumerate()
    {
        out[i * 2..i * 2 + 2].copy_from_slice(&v.to_le_bytes());
    }
    out
}

fn read_systemtime(k: &Kernel, ptr: SimPtr) -> Result<SystemTime, sim_core::Fault> {
    let mut f = [0u16; 8];
    for (i, slot) in f.iter_mut().enumerate() {
        *slot = k.space.read_u16(ptr.offset(i as u64 * 2))?;
    }
    Ok(SystemTime {
        year: f[0],
        month: f[1],
        day_of_week: f[2],
        day: f[3],
        hour: f[4],
        minute: f[5],
        second: f[6],
        milliseconds: f[7],
    })
}

/// `GetTickCount()`.
///
/// # Errors
///
/// None.
pub fn GetTickCount(k: &mut Kernel, _profile: Win32Profile) -> ApiResult {
    k.charge_call_to(Subsystem::Time);
    Ok(ApiReturn::ok(k.clock.tick_count_ms() as i64))
}

/// `GetSystemTime(lpSystemTime)`.
///
/// # Errors
///
/// An SEH abort when the block faults under probing.
pub fn GetSystemTime(k: &mut Kernel, profile: Win32Profile, st_out: SimPtr) -> ApiResult {
    k.charge_call_to(Subsystem::Time);
    let st = filetime_to_systemtime(k.clock.filetime()).expect("clock is in range");
    let out = write_out(k, profile, "GetSystemTime", true, st_out, &systemtime_bytes(&st))?;
    Ok(finish_out(out, 0))
}

/// `GetLocalTime(lpSystemTime)` — the simulated machine runs in UTC.
///
/// # Errors
///
/// An SEH abort when the block faults under probing.
pub fn GetLocalTime(k: &mut Kernel, profile: Win32Profile, st_out: SimPtr) -> ApiResult {
    k.charge_call_to(Subsystem::Time);
    let st = filetime_to_systemtime(k.clock.filetime()).expect("clock is in range");
    let out = write_out(k, profile, "GetLocalTime", true, st_out, &systemtime_bytes(&st))?;
    Ok(finish_out(out, 0))
}

/// `SetSystemTime(lpSystemTime)` — validated; the simulated clock cannot
/// move backwards, so valid requests are accepted and ignored (the
/// reproducible-campaign choice).
///
/// # Errors
///
/// An SEH abort when the block faults.
pub fn SetSystemTime(k: &mut Kernel, _profile: Win32Profile, st_in: SimPtr) -> ApiResult {
    k.charge_call_to(Subsystem::Time);
    let st = read_systemtime(k, st_in).map_err(exception)?;
    if !st.is_valid() {
        return Ok(ApiReturn::err(FALSE, ERROR_INVALID_PARAMETER));
    }
    Ok(ApiReturn::ok(TRUE))
}

/// `GetSystemTimeAsFileTime(lpSystemTimeAsFileTime)`.
///
/// # Errors
///
/// An SEH abort when the out-pointer faults under probing.
pub fn GetSystemTimeAsFileTime(k: &mut Kernel, profile: Win32Profile, ft_out: SimPtr) -> ApiResult {
    k.charge_call_to(Subsystem::Time);
    let ft = k.clock.filetime();
    let (lo, hi) = ft.to_parts();
    let mut bytes = [0u8; 8];
    bytes[..4].copy_from_slice(&lo.to_le_bytes());
    bytes[4..].copy_from_slice(&hi.to_le_bytes());
    let out = write_out(k, profile, "GetSystemTimeAsFileTime", true, ft_out, &bytes)?;
    Ok(finish_out(out, 0))
}

fn read_filetime(k: &Kernel, ptr: SimPtr) -> Result<FileTime, sim_core::Fault> {
    let lo = k.space.read_u32(ptr)?;
    let hi = k.space.read_u32(ptr.offset(4))?;
    Ok(FileTime::from_parts(lo, hi))
}

/// `FileTimeToSystemTime(lpFileTime, lpSystemTime)`.
///
/// **Table 3**: deterministic Catastrophic on Windows 95 — the result is
/// written through the caller's pointer by a 16-bit thunk with no probing.
/// Out-of-range tick values are robust errors on the other variants.
///
/// # Errors
///
/// An SEH abort when the input faults, or (NT/98 families) when the output
/// pointer faults under probing.
pub fn FileTimeToSystemTime(
    k: &mut Kernel,
    profile: Win32Profile,
    ft_in: SimPtr,
    st_out: SimPtr,
) -> ApiResult {
    k.charge_call_to(Subsystem::Time);
    let ft = read_filetime(k, ft_in).map_err(exception)?;
    let Some(st) = filetime_to_systemtime(ft) else {
        return Ok(ApiReturn::err(FALSE, ERROR_INVALID_PARAMETER));
    };
    let bytes = systemtime_bytes(&st);
    let out = if profile.vulnerability_fires_on("FileTimeToSystemTime", k) {
        kernel_write(k, "FileTimeToSystemTime", st_out, &bytes)
    } else {
        write_out(k, profile, "FileTimeToSystemTime", false, st_out, &bytes)?
    };
    Ok(finish_out(out, TRUE))
}

/// `SystemTimeToFileTime(lpSystemTime, lpFileTime)`.
///
/// # Errors
///
/// An SEH abort when either pointer faults; invalid fields are robust
/// errors.
pub fn SystemTimeToFileTime(
    k: &mut Kernel,
    profile: Win32Profile,
    st_in: SimPtr,
    ft_out: SimPtr,
) -> ApiResult {
    k.charge_call_to(Subsystem::Time);
    let st = read_systemtime(k, st_in).map_err(exception)?;
    let Some(ft) = systemtime_to_filetime(&st) else {
        return Ok(ApiReturn::err(FALSE, ERROR_INVALID_PARAMETER));
    };
    let (lo, hi) = ft.to_parts();
    let mut bytes = [0u8; 8];
    bytes[..4].copy_from_slice(&lo.to_le_bytes());
    bytes[4..].copy_from_slice(&hi.to_le_bytes());
    let out = write_out(k, profile, "SystemTimeToFileTime", false, ft_out, &bytes)?;
    Ok(finish_out(out, TRUE))
}

/// `FileTimeToLocalFileTime(lpFileTime, lpLocalFileTime)` — UTC machine:
/// identity plus the pointer hazards.
///
/// # Errors
///
/// An SEH abort when either pointer faults.
pub fn FileTimeToLocalFileTime(
    k: &mut Kernel,
    profile: Win32Profile,
    ft_in: SimPtr,
    ft_out: SimPtr,
) -> ApiResult {
    k.charge_call_to(Subsystem::Time);
    let ft = read_filetime(k, ft_in).map_err(exception)?;
    let (lo, hi) = ft.to_parts();
    let mut bytes = [0u8; 8];
    bytes[..4].copy_from_slice(&lo.to_le_bytes());
    bytes[4..].copy_from_slice(&hi.to_le_bytes());
    let out = write_out(k, profile, "FileTimeToLocalFileTime", true, ft_out, &bytes)?;
    Ok(finish_out(out, TRUE))
}

/// `LocalFileTimeToFileTime(lpLocalFileTime, lpFileTime)`.
///
/// # Errors
///
/// An SEH abort when either pointer faults.
pub fn LocalFileTimeToFileTime(
    k: &mut Kernel,
    profile: Win32Profile,
    ft_in: SimPtr,
    ft_out: SimPtr,
) -> ApiResult {
    FileTimeToLocalFileTime(k, profile, ft_in, ft_out)
}

/// `CompareFileTime(lpFileTime1, lpFileTime2)` — −1/0/+1.
///
/// # Errors
///
/// An SEH abort when either pointer faults.
pub fn CompareFileTime(k: &mut Kernel, _profile: Win32Profile, a: SimPtr, b: SimPtr) -> ApiResult {
    k.charge_call_to(Subsystem::Time);
    let fa = read_filetime(k, a).map_err(exception)?;
    let fb = read_filetime(k, b).map_err(exception)?;
    Ok(ApiReturn::ok(match fa.cmp(&fb) {
        std::cmp::Ordering::Less => -1,
        std::cmp::Ordering::Equal => 0,
        std::cmp::Ordering::Greater => 1,
    }))
}

/// `GetTimeZoneInformation(lpTimeZoneInformation)` — fills a 172-byte
/// block; returns `TIME_ZONE_ID_UNKNOWN` (0).
///
/// # Errors
///
/// An SEH abort when the block faults under probing.
pub fn GetTimeZoneInformation(k: &mut Kernel, profile: Win32Profile, tz_out: SimPtr) -> ApiResult {
    k.charge_call_to(Subsystem::Time);
    let block = vec![0u8; 172];
    let out = write_out(k, profile, "GetTimeZoneInformation", true, tz_out, &block)?;
    Ok(finish_out(out, 0))
}

/// `DosDateTimeToFileTime(wFatDate, wFatTime, lpFileTime)`.
///
/// # Errors
///
/// An SEH abort when the out-pointer faults; impossible FAT fields are
/// robust errors.
pub fn DosDateTimeToFileTime(
    k: &mut Kernel,
    profile: Win32Profile,
    fat_date: u16,
    fat_time: u16,
    ft_out: SimPtr,
) -> ApiResult {
    k.charge_call_to(Subsystem::Time);
    let day = u32::from(fat_date & 0x1F);
    let month = u32::from((fat_date >> 5) & 0x0F);
    let year = 1980 + u32::from(fat_date >> 9);
    let secs2 = u32::from(fat_time & 0x1F) * 2;
    let minute = u32::from((fat_time >> 5) & 0x3F);
    let hour = u32::from(fat_time >> 11);
    let st = SystemTime {
        year: year as u16,
        month: month as u16,
        day: day as u16,
        hour: hour as u16,
        minute: minute as u16,
        second: secs2 as u16,
        ..SystemTime::default()
    };
    let Some(ft) = systemtime_to_filetime(&st) else {
        return Ok(ApiReturn::err(FALSE, ERROR_INVALID_PARAMETER));
    };
    let (lo, hi) = ft.to_parts();
    let mut bytes = [0u8; 8];
    bytes[..4].copy_from_slice(&lo.to_le_bytes());
    bytes[4..].copy_from_slice(&hi.to_le_bytes());
    let out = write_out(k, profile, "DosDateTimeToFileTime", false, ft_out, &bytes)?;
    Ok(finish_out(out, TRUE))
}

/// `FileTimeToDosDateTime(lpFileTime, lpFatDate, lpFatTime)`.
///
/// # Errors
///
/// An SEH abort when any pointer faults; out-of-FAT-range times (before
/// 1980) are robust errors.
pub fn FileTimeToDosDateTime(
    k: &mut Kernel,
    profile: Win32Profile,
    ft_in: SimPtr,
    fat_date_out: SimPtr,
    fat_time_out: SimPtr,
) -> ApiResult {
    k.charge_call_to(Subsystem::Time);
    let ft = read_filetime(k, ft_in).map_err(exception)?;
    let Some(st) = filetime_to_systemtime(ft) else {
        return Ok(ApiReturn::err(FALSE, ERROR_INVALID_PARAMETER));
    };
    if st.year < 1980 || st.year > 2107 {
        return Ok(ApiReturn::err(FALSE, ERROR_INVALID_PARAMETER));
    }
    let fat_date =
        ((st.year - 1980) << 9) | (st.month << 5) | st.day;
    let fat_time = (st.hour << 11) | (st.minute << 5) | (st.second / 2);
    let out = write_out(
        k,
        profile,
        "FileTimeToDosDateTime",
        false,
        fat_date_out,
        &fat_date.to_le_bytes(),
    )?;
    if let crate::marshal::OutWrite::ErrorReturn(code) = out {
        return Ok(ApiReturn::err(FALSE, code));
    }
    let out = write_out(
        k,
        profile,
        "FileTimeToDosDateTime",
        false,
        fat_time_out,
        &fat_time.to_le_bytes(),
    )?;
    Ok(finish_out(out, TRUE))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_kernel::kernel::MachineFlavor;
    use sim_kernel::variant::OsVariant;

    fn nt() -> Win32Profile {
        Win32Profile::for_os(OsVariant::WinNt4)
    }

    fn w95() -> Win32Profile {
        Win32Profile::for_os(OsVariant::Win95)
    }

    fn w98() -> Win32Profile {
        Win32Profile::for_os(OsVariant::Win98)
    }

    fn wk() -> Kernel {
        Kernel::with_flavor(MachineFlavor::Windows)
    }

    #[test]
    fn tick_count_advances() {
        let mut k = wk();
        let a = GetTickCount(&mut k, nt()).unwrap().value;
        let b = GetTickCount(&mut k, nt()).unwrap().value;
        assert!(b > a);
    }

    #[test]
    fn system_time_is_y2k() {
        let mut k = wk();
        let st = k.alloc_user(16, "st");
        GetSystemTime(&mut k, nt(), st).unwrap();
        assert_eq!(k.space.read_u16(st).unwrap(), 2000); // year
        assert_eq!(k.space.read_u16(st.offset(2)).unwrap(), 1); // month
        GetLocalTime(&mut k, nt(), st).unwrap();
        assert_eq!(k.space.read_u16(st).unwrap(), 2000);
        // Hostile pointer: NT aborts, 98 silently skips.
        assert!(GetSystemTime(&mut k, nt(), SimPtr::NULL).is_err());
        assert!(!GetSystemTime(&mut k, w98(), SimPtr::NULL).unwrap().reported_error());
    }

    #[test]
    fn filetime_to_systemtime_crash_matrix() {
        // Win95 + hostile output pointer: deterministic Catastrophic.
        let mut k = wk();
        let ft = k.alloc_user(8, "ft");
        GetSystemTimeAsFileTime(&mut k, w95(), ft).unwrap();
        let _ = FileTimeToSystemTime(&mut k, w95(), ft, SimPtr::new(0x40)).unwrap();
        assert!(!k.is_alive());
        assert_eq!(k.crash.info().unwrap().call, "FileTimeToSystemTime");

        // 98: eager probe → abort; NT: abort. Both alive.
        for p in [w98(), nt()] {
            let mut k2 = wk();
            let ft2 = k2.alloc_user(8, "ft");
            GetSystemTimeAsFileTime(&mut k2, p, ft2).unwrap();
            assert!(FileTimeToSystemTime(&mut k2, p, ft2, SimPtr::new(0x40)).is_err());
            assert!(k2.is_alive());
        }

        // Valid pointers on 95: fine.
        let mut k3 = wk();
        let ft3 = k3.alloc_user(8, "ft");
        GetSystemTimeAsFileTime(&mut k3, w95(), ft3).unwrap();
        let st3 = k3.alloc_user(16, "st");
        assert_eq!(
            FileTimeToSystemTime(&mut k3, w95(), ft3, st3).unwrap().value,
            TRUE
        );
        assert!(k3.is_alive());
        assert_eq!(k3.space.read_u16(st3).unwrap(), 2000);
    }

    #[test]
    fn filetime_systemtime_roundtrip_and_validation() {
        let mut k = wk();
        let st = k.alloc_user(16, "st");
        GetSystemTime(&mut k, nt(), st).unwrap();
        let ft = k.alloc_user(8, "ft");
        assert_eq!(SystemTimeToFileTime(&mut k, nt(), st, ft).unwrap().value, TRUE);
        let st2 = k.alloc_user(16, "st2");
        assert_eq!(FileTimeToSystemTime(&mut k, nt(), ft, st2).unwrap().value, TRUE);
        assert_eq!(k.space.read_u16(st2).unwrap(), 2000);
        // Invalid SYSTEMTIME fields: robust error.
        k.space.write_u16(st, 0xFFFF).unwrap(); // absurd year
        assert!(SystemTimeToFileTime(&mut k, nt(), st, ft).unwrap().reported_error());
        // Out-of-range FILETIME: robust error.
        k.space.write_u32(ft, u32::MAX).unwrap();
        k.space.write_u32(ft.offset(4), u32::MAX).unwrap();
        assert!(FileTimeToSystemTime(&mut k, nt(), ft, st2).unwrap().reported_error());
        // SetSystemTime validates.
        GetSystemTime(&mut k, nt(), st).unwrap();
        assert_eq!(SetSystemTime(&mut k, nt(), st).unwrap().value, TRUE);
        k.space.write_u16(st.offset(2), 13).unwrap(); // month 13
        assert!(SetSystemTime(&mut k, nt(), st).unwrap().reported_error());
    }

    #[test]
    fn compare_and_local_filetime() {
        let mut k = wk();
        let a = k.alloc_user(8, "a");
        let b = k.alloc_user(8, "b");
        GetSystemTimeAsFileTime(&mut k, nt(), a).unwrap();
        k.clock.advance_ms(5000);
        GetSystemTimeAsFileTime(&mut k, nt(), b).unwrap();
        assert_eq!(CompareFileTime(&mut k, nt(), a, b).unwrap().value, -1);
        assert_eq!(CompareFileTime(&mut k, nt(), b, a).unwrap().value, 1);
        assert_eq!(CompareFileTime(&mut k, nt(), a, a).unwrap().value, 0);
        assert!(CompareFileTime(&mut k, nt(), a, SimPtr::NULL).is_err());
        let local = k.alloc_user(8, "local");
        assert_eq!(
            FileTimeToLocalFileTime(&mut k, nt(), a, local).unwrap().value,
            TRUE
        );
        assert_eq!(
            LocalFileTimeToFileTime(&mut k, nt(), local, b).unwrap().value,
            TRUE
        );
    }

    #[test]
    fn dos_date_time_conversions() {
        let mut k = wk();
        let ft = k.alloc_user(8, "ft");
        // 2000-06-25 09:30:14 in FAT encoding.
        let fat_date: u16 = ((2000 - 1980) << 9) | (6 << 5) | 25;
        let fat_time: u16 = (9 << 11) | (30 << 5) | (14 / 2);
        assert_eq!(
            DosDateTimeToFileTime(&mut k, nt(), fat_date, fat_time, ft).unwrap().value,
            TRUE
        );
        let d_out = k.alloc_user(2, "fd");
        let t_out = k.alloc_user(2, "ft2");
        assert_eq!(
            FileTimeToDosDateTime(&mut k, nt(), ft, d_out, t_out).unwrap().value,
            TRUE
        );
        assert_eq!(k.space.read_u16(d_out).unwrap(), fat_date);
        assert_eq!(k.space.read_u16(t_out).unwrap(), fat_time);
        // Impossible FAT fields (month 0): robust error.
        assert!(DosDateTimeToFileTime(&mut k, nt(), (20 << 9) | 25, 0, ft)
            .unwrap()
            .reported_error());
        // Pre-1980 FILETIME cannot be represented.
        k.space.write_u32(ft, 0).unwrap();
        k.space.write_u32(ft.offset(4), 0).unwrap();
        assert!(FileTimeToDosDateTime(&mut k, nt(), ft, d_out, t_out)
            .unwrap()
            .reported_error());
        assert!(GetTimeZoneInformation(&mut k, nt(), SimPtr::NULL).is_err());
        let tz = k.alloc_user(172, "tz");
        assert_eq!(GetTimeZoneInformation(&mut k, nt(), tz).unwrap().value, 0);
    }
}
