//! Shared argument-marshaling helpers for the Win32 entry points.
//!
//! These encapsulate the three per-variant behaviours every call composes:
//! reading hostile in-pointers (user-mode probe → Abort), writing results
//! through hostile out-pointers (the [`OutPolicy`] split), and resolving
//! hostile handles (NT/CE validate, 9x silently accepts).

use crate::errors::{self, ERROR_NOACCESS};
use crate::profile::{OutPolicy, Win32Profile};
use sim_core::addr::PrivilegeLevel;
use sim_core::cstr;
use sim_core::fault::Fault;
use sim_core::{AccessKind, SimPtr};
use sim_kernel::objects::HandleError;
use sim_kernel::outcome::{ApiAbort, ApiReturn};
use sim_kernel::Kernel;

/// Win32 `TRUE`.
pub const TRUE: i64 = 1;
/// Win32 `FALSE`.
pub const FALSE: i64 = 0;

/// Converts a machine fault into the SEH exception the paper's harness
/// intercepted.
#[must_use]
pub fn exception(fault: Fault) -> ApiAbort {
    ApiAbort::exception_from_fault(fault)
}

/// Reads a NUL-terminated path/string argument with user-mode probing
/// (every variant dereferences string parameters eagerly).
///
/// # Errors
///
/// An SEH abort when the scan faults.
pub fn read_string(k: &Kernel, ptr: SimPtr) -> Result<String, ApiAbort> {
    let bytes = cstr::read_cstr(&k.space, ptr, PrivilegeLevel::User).map_err(exception)?;
    // In-place when the bytes are valid UTF-8 (nearly always); the lossy
    // re-encode only runs for actual garbage.
    Ok(String::from_utf8(bytes)
        .unwrap_or_else(|e| String::from_utf8_lossy(e.as_bytes()).into_owned()))
}

/// Reads `len` raw bytes from a caller buffer with user-mode probing.
///
/// # Errors
///
/// An SEH abort when the access faults.
pub fn read_buffer(k: &Kernel, ptr: SimPtr, len: u64) -> Result<Vec<u8>, ApiAbort> {
    k.space
        .read_bytes_at(ptr, len, PrivilegeLevel::User)
        .map_err(exception)
}

/// Outcome of an out-pointer delivery attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OutWrite {
    /// The bytes landed; proceed normally.
    Written,
    /// 9x lazily skipped the write; the call must report success anyway
    /// (the Silent failure).
    SilentlySkipped,
    /// The pointer was rejected; the call must return `FALSE` with this
    /// error code (the robust response).
    ErrorReturn(u32),
    /// The kernel-mode write killed the machine; the call's return value
    /// is meaningless.
    Crashed,
}

/// Delivers `bytes` through a caller-supplied out-pointer under the
/// variant's policy for `call`.
///
/// When the Table 3 vulnerability for `call` fires (variant + residue), the
/// write happens at kernel privilege and a hostile pointer crashes the
/// machine. Otherwise the `lazy_on_9x` flag selects between the probing
/// and silent-skip conventions (see
/// [`Win32Profile::default_out_policy`]).
///
/// # Errors
///
/// An SEH abort under [`OutPolicy::UserProbe`] when the write faults.
pub fn write_out(
    k: &mut Kernel,
    profile: Win32Profile,
    call: &'static str,
    lazy_on_9x: bool,
    ptr: SimPtr,
    bytes: &[u8],
) -> Result<OutWrite, ApiAbort> {
    if profile.vulnerability_fires_on(call, k) {
        return Ok(kernel_write(k, call, ptr, bytes));
    }
    match profile.default_out_policy(lazy_on_9x) {
        OutPolicy::UserProbe => {
            k.space
                .write_bytes_at(ptr, bytes, PrivilegeLevel::User)
                .map_err(exception)?;
            Ok(OutWrite::Written)
        }
        OutPolicy::SilentSkip => {
            match k.space.write_bytes_at(ptr, bytes, PrivilegeLevel::User) {
                Ok(()) => Ok(OutWrite::Written),
                Err(_) => Ok(OutWrite::SilentlySkipped),
            }
        }
        OutPolicy::ValidateError => {
            if k.space
                .check_access(
                    ptr,
                    bytes.len() as u64,
                    1,
                    AccessKind::Write,
                    PrivilegeLevel::User,
                )
                .is_err()
            {
                return Ok(OutWrite::ErrorReturn(ERROR_NOACCESS));
            }
            k.space
                .write_bytes_at(ptr, bytes, PrivilegeLevel::User)
                .map_err(exception)?;
            Ok(OutWrite::Written)
        }
        OutPolicy::KernelWrite => Ok(kernel_write(k, call, ptr, bytes)),
    }
}

/// Performs a kernel-privilege write with no probing: the Table 3 crash
/// mechanism.
pub fn kernel_write(k: &mut Kernel, call: &'static str, ptr: SimPtr, bytes: &[u8]) -> OutWrite {
    match k
        .space
        .write_bytes_at(ptr, bytes, PrivilegeLevel::Kernel)
    {
        Ok(()) => OutWrite::Written,
        Err(fault) => {
            k.crash.panic(
                call,
                "kernel-mode write through unvalidated user pointer",
                Some(fault),
            );
            OutWrite::Crashed
        }
    }
}

/// Performs a kernel-privilege read with no probing (the crash mechanism
/// for calls that *read* unvalidated pointers in kernel mode, e.g.
/// `MsgWaitForMultipleObjects`' handle array).
pub fn kernel_read(k: &mut Kernel, call: &'static str, ptr: SimPtr, len: u64) -> Option<Vec<u8>> {
    match k.space.read_bytes_at(ptr, len, PrivilegeLevel::Kernel) {
        Ok(bytes) => Some(bytes),
        Err(fault) => {
            k.crash.panic(
                call,
                "kernel-mode read through unvalidated user pointer",
                Some(fault),
            );
            None
        }
    }
}

/// Converts an [`OutWrite`] into the call's final result when the out-write
/// was the last step. `ok` is the success return value.
#[must_use]
pub fn finish_out(outcome: OutWrite, ok: i64) -> ApiReturn {
    match outcome {
        OutWrite::Written | OutWrite::SilentlySkipped | OutWrite::Crashed => ApiReturn::ok(ok),
        OutWrite::ErrorReturn(code) => ApiReturn::err(FALSE, code),
    }
}

/// What a call should do about a bad handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BadHandle {
    /// 9x: pretend everything worked (Silent failure).
    SilentSuccess,
    /// NT/CE: return `FALSE` with this error code (robust).
    ErrorReturn(u32),
}

/// The variant's disposition for a failed handle lookup.
#[must_use]
pub fn handle_disposition(profile: Win32Profile, e: HandleError) -> BadHandle {
    if profile.validates_handles() {
        BadHandle::ErrorReturn(errors::from_handle(e))
    } else {
        BadHandle::SilentSuccess
    }
}

/// Shorthand: the `ApiReturn` for a bad handle where success would have
/// returned `ok_value`.
#[must_use]
pub fn bad_handle_return(profile: Win32Profile, e: HandleError, ok_value: i64) -> ApiReturn {
    match handle_disposition(profile, e) {
        BadHandle::SilentSuccess => ApiReturn::ok(ok_value),
        BadHandle::ErrorReturn(code) => ApiReturn::err(FALSE, code),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_kernel::variant::OsVariant;

    fn nt() -> Win32Profile {
        Win32Profile::for_os(OsVariant::WinNt4)
    }

    fn w98() -> Win32Profile {
        Win32Profile::for_os(OsVariant::Win98)
    }

    fn ce() -> Win32Profile {
        Win32Profile::for_os(OsVariant::WinCe)
    }

    #[test]
    fn write_out_probes_on_nt() {
        let mut k = Kernel::new();
        let err = write_out(&mut k, nt(), "SomeCall", true, SimPtr::NULL, &[1, 2]).unwrap_err();
        assert!(matches!(err, ApiAbort::Exception { .. }));
        let good = k.alloc_user(8, "out");
        assert_eq!(
            write_out(&mut k, nt(), "SomeCall", true, good, &[1, 2]).unwrap(),
            OutWrite::Written
        );
    }

    #[test]
    fn write_out_silently_skips_on_9x_lazy() {
        let mut k = Kernel::new();
        assert_eq!(
            write_out(&mut k, w98(), "SomeCall", true, SimPtr::NULL, &[1]).unwrap(),
            OutWrite::SilentlySkipped
        );
        // Eager 9x paths still abort.
        assert!(write_out(&mut k, w98(), "SomeCall", false, SimPtr::NULL, &[1]).is_err());
    }

    #[test]
    fn write_out_validates_on_ce() {
        let mut k = Kernel::new();
        assert_eq!(
            write_out(&mut k, ce(), "SomeCall", true, SimPtr::NULL, &[1]).unwrap(),
            OutWrite::ErrorReturn(ERROR_NOACCESS)
        );
    }

    #[test]
    fn vulnerable_call_crashes_through_kernel_write() {
        let mut k = Kernel::new();
        // GetThreadContext is deterministic on 98: hostile pointer kills it.
        let out = write_out(
            &mut k,
            w98(),
            "GetThreadContext",
            true,
            SimPtr::NULL,
            &[0; 64],
        )
        .unwrap();
        assert_eq!(out, OutWrite::Crashed);
        assert!(!k.is_alive());
    }

    #[test]
    fn vulnerable_call_with_valid_pointer_succeeds() {
        let mut k = Kernel::new();
        let good = k.alloc_user(64, "ctx");
        let out = write_out(&mut k, w98(), "GetThreadContext", true, good, &[7; 64]).unwrap();
        assert_eq!(out, OutWrite::Written);
        assert!(k.is_alive());
        assert_eq!(k.space.read_u8(good).unwrap(), 7);
    }

    #[test]
    fn kernel_read_crash() {
        let mut k = Kernel::new();
        assert!(kernel_read(&mut k, "MsgWaitForMultipleObjects", SimPtr::new(0x40), 16).is_none());
        assert!(!k.is_alive());
    }

    #[test]
    fn handle_dispositions() {
        let e = HandleError::Closed;
        assert_eq!(
            handle_disposition(nt(), e),
            BadHandle::ErrorReturn(errors::ERROR_INVALID_HANDLE)
        );
        assert_eq!(handle_disposition(w98(), e), BadHandle::SilentSuccess);
        assert_eq!(
            handle_disposition(ce(), e),
            BadHandle::ErrorReturn(errors::ERROR_INVALID_HANDLE)
        );
        let r = bad_handle_return(w98(), e, TRUE);
        assert_eq!(r.value, TRUE);
        assert!(!r.reported_error());
    }

    #[test]
    fn read_string_probes() {
        let mut k = Kernel::new();
        assert!(read_string(&k, SimPtr::NULL).is_err());
        let p = k.alloc_user(8, "s");
        cstr::write_cstr(&mut k.space, p, "hi", PrivilegeLevel::User).unwrap();
        assert_eq!(read_string(&k, p).unwrap(), "hi");
    }

    #[test]
    fn finish_out_conversion() {
        assert_eq!(finish_out(OutWrite::Written, TRUE).value, TRUE);
        assert_eq!(finish_out(OutWrite::SilentlySkipped, TRUE).value, TRUE);
        let e = finish_out(OutWrite::ErrorReturn(5), TRUE);
        assert_eq!(e.value, FALSE);
        assert_eq!(e.error, Some(5));
    }
}
