//! Win32 error codes (`GetLastError` values) and mappings from kernel
//! subsystem errors.

use sim_kernel::env::EnvError;
use sim_kernel::fs::FsError;
use sim_kernel::heap::HeapError;
use sim_kernel::objects::HandleError;
use sim_kernel::process::ProcessError;

/// `ERROR_SUCCESS`.
pub const ERROR_SUCCESS: u32 = 0;
/// `ERROR_INVALID_FUNCTION`.
pub const ERROR_INVALID_FUNCTION: u32 = 1;
/// `ERROR_FILE_NOT_FOUND`.
pub const ERROR_FILE_NOT_FOUND: u32 = 2;
/// `ERROR_PATH_NOT_FOUND`.
pub const ERROR_PATH_NOT_FOUND: u32 = 3;
/// `ERROR_TOO_MANY_OPEN_FILES`.
pub const ERROR_TOO_MANY_OPEN_FILES: u32 = 4;
/// `ERROR_ACCESS_DENIED`.
pub const ERROR_ACCESS_DENIED: u32 = 5;
/// `ERROR_INVALID_HANDLE`.
pub const ERROR_INVALID_HANDLE: u32 = 6;
/// `ERROR_NOT_ENOUGH_MEMORY`.
pub const ERROR_NOT_ENOUGH_MEMORY: u32 = 8;
/// `ERROR_INVALID_DATA`.
pub const ERROR_INVALID_DATA: u32 = 13;
/// `ERROR_OUTOFMEMORY`.
pub const ERROR_OUTOFMEMORY: u32 = 14;
/// `ERROR_NO_MORE_FILES`.
pub const ERROR_NO_MORE_FILES: u32 = 18;
/// `ERROR_SHARING_VIOLATION`.
pub const ERROR_SHARING_VIOLATION: u32 = 32;
/// `ERROR_HANDLE_EOF`.
pub const ERROR_HANDLE_EOF: u32 = 38;
/// `ERROR_NOT_SUPPORTED`.
pub const ERROR_NOT_SUPPORTED: u32 = 50;
/// `ERROR_FILE_EXISTS`.
pub const ERROR_FILE_EXISTS: u32 = 80;
/// `ERROR_INVALID_PARAMETER`.
pub const ERROR_INVALID_PARAMETER: u32 = 87;
/// `ERROR_INSUFFICIENT_BUFFER`.
pub const ERROR_INSUFFICIENT_BUFFER: u32 = 122;
/// `ERROR_INVALID_NAME`.
pub const ERROR_INVALID_NAME: u32 = 123;
/// `ERROR_NEGATIVE_SEEK`.
pub const ERROR_NEGATIVE_SEEK: u32 = 131;
/// `ERROR_DIR_NOT_EMPTY`.
pub const ERROR_DIR_NOT_EMPTY: u32 = 145;
/// `ERROR_NOT_LOCKED`.
pub const ERROR_NOT_LOCKED: u32 = 158;
/// `ERROR_ALREADY_EXISTS`.
pub const ERROR_ALREADY_EXISTS: u32 = 183;
/// `ERROR_ENVVAR_NOT_FOUND`.
pub const ERROR_ENVVAR_NOT_FOUND: u32 = 203;
/// `WAIT_TIMEOUT` (also returned as a wait status).
pub const WAIT_TIMEOUT: u32 = 258;
/// `ERROR_NOACCESS` — the NT kernel's "invalid access to memory location".
pub const ERROR_NOACCESS: u32 = 998;

/// Maps a filesystem error to `GetLastError` vocabulary.
#[must_use]
pub fn from_fs(e: FsError) -> u32 {
    match e {
        FsError::NotFound => ERROR_FILE_NOT_FOUND,
        FsError::NotADirectory => ERROR_PATH_NOT_FOUND,
        FsError::IsADirectory => ERROR_ACCESS_DENIED,
        FsError::Exists => ERROR_ALREADY_EXISTS,
        FsError::AccessDenied => ERROR_ACCESS_DENIED,
        FsError::BadDescriptor | FsError::BadAccessMode => ERROR_INVALID_HANDLE,
        FsError::InvalidPath => ERROR_INVALID_NAME,
        FsError::NotEmpty => ERROR_DIR_NOT_EMPTY,
        FsError::InvalidSeek => ERROR_NEGATIVE_SEEK,
        FsError::SharingViolation => ERROR_SHARING_VIOLATION,
        FsError::TooManyOpen => ERROR_TOO_MANY_OPEN_FILES,
    }
}

/// Maps a handle-table error to `GetLastError` vocabulary.
#[must_use]
pub fn from_handle(e: HandleError) -> u32 {
    match e {
        HandleError::Null
        | HandleError::InvalidSentinel
        | HandleError::NeverAllocated
        | HandleError::Closed => ERROR_INVALID_HANDLE,
        HandleError::WrongType { .. } => ERROR_INVALID_FUNCTION,
    }
}

/// Maps a heap error to `GetLastError` vocabulary.
#[must_use]
pub fn from_heap(e: HeapError) -> u32 {
    match e {
        HeapError::NoHeap => ERROR_INVALID_HANDLE,
        HeapError::OutOfMemory => ERROR_NOT_ENOUGH_MEMORY,
        HeapError::NotAllocated | HeapError::InvalidArgument => ERROR_INVALID_PARAMETER,
    }
}

/// Maps a process-table error to `GetLastError` vocabulary.
#[must_use]
pub fn from_process(e: ProcessError) -> u32 {
    match e {
        ProcessError::NoProcess | ProcessError::NoThread | ProcessError::AlreadyExited => {
            ERROR_INVALID_HANDLE
        }
        ProcessError::NoChildren => ERROR_INVALID_PARAMETER,
        ProcessError::InvalidArgument => ERROR_INVALID_PARAMETER,
    }
}

/// Maps an environment error to `GetLastError` vocabulary.
#[must_use]
pub fn from_env(e: EnvError) -> u32 {
    match e {
        EnvError::NotFound => ERROR_ENVVAR_NOT_FOUND,
        EnvError::InvalidName => ERROR_INVALID_PARAMETER,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fs_mapping() {
        assert_eq!(from_fs(FsError::NotFound), ERROR_FILE_NOT_FOUND);
        assert_eq!(from_fs(FsError::Exists), ERROR_ALREADY_EXISTS);
        assert_eq!(from_fs(FsError::BadDescriptor), ERROR_INVALID_HANDLE);
    }

    #[test]
    fn handle_mapping() {
        assert_eq!(from_handle(HandleError::Null), ERROR_INVALID_HANDLE);
        assert_eq!(
            from_handle(HandleError::WrongType { actual: "event" }),
            ERROR_INVALID_FUNCTION
        );
    }

    #[test]
    fn misc_mappings() {
        assert_eq!(from_heap(HeapError::OutOfMemory), ERROR_NOT_ENOUGH_MEMORY);
        assert_eq!(from_process(ProcessError::NoThread), ERROR_INVALID_HANDLE);
        assert_eq!(from_env(EnvError::NotFound), ERROR_ENVVAR_NOT_FOUND);
    }
}
