//! Per-variant Win32 robustness profiles.
//!
//! Like the C-library profiles, everything here is a *validation policy* or
//! a *documented vulnerability*, never a failure rate. The three big knobs:
//!
//! 1. **Handle validation** — the NT family and CE check handles and
//!    report `ERROR_INVALID_HANDLE`; the 9x family quietly accepts garbage
//!    handles and reports success (the dominant source of the paper's
//!    estimated Silent failures, Figure 2).
//! 2. **Out-pointer marshaling** — how a call delivers results through a
//!    caller-supplied pointer (see [`OutPolicy`]): NT probes in user mode
//!    (hostile pointer ⇒ Abort), 9x either skips the write silently or, for
//!    the Table 3 functions, writes at kernel privilege (hostile pointer ⇒
//!    Catastrophic), CE probes and returns an error (robust).
//! 3. **The Table 3 vulnerability list** — exactly which call crashes which
//!    variant, and whether the crash needs harness-accumulated residue
//!    (the paper's `*` marks).

use serde::{Deserialize, Serialize};
use sim_kernel::variant::OsVariant;

/// Residue threshold for interference-dependent (`*`) vulnerabilities.
pub use sim_libc::profile::RESIDUE_THRESHOLD;

/// How a call writes results through a caller-supplied out-pointer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OutPolicy {
    /// Probe/copy in user mode: a hostile pointer raises
    /// `EXCEPTION_ACCESS_VIOLATION` — an **Abort** (the NT family, and the
    /// 9x family for calls implemented in 32-bit user code).
    UserProbe,
    /// Skip the write when the pointer is bad, report success anyway — a
    /// **Silent** failure (9x lazy paths).
    SilentSkip,
    /// Validate first and fail with `ERROR_NOACCESS` — the robust response
    /// (CE's out-parameter convention in this model).
    ValidateError,
    /// Write at kernel privilege with no probing: a hostile pointer is a
    /// kernel-mode wild write — **Catastrophic** (the Table 3 calls on
    /// their vulnerable variants).
    KernelWrite,
}

/// A Table 3 vulnerability: which variant, and whether it needs residue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Vulnerability {
    /// Fires only when the harness has accumulated residue (the paper's
    /// `*` entries, irreproducible in isolation).
    pub interference_dependent: bool,
}

/// The Win32 personality of one OS variant.
///
/// # Example
///
/// ```
/// use sim_win32::profile::Win32Profile;
/// use sim_kernel::variant::OsVariant;
///
/// let nt = Win32Profile::for_os(OsVariant::WinNt4);
/// let w95 = Win32Profile::for_os(OsVariant::Win95);
/// assert!(nt.validates_handles());
/// assert!(!w95.validates_handles());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Win32Profile {
    /// The OS variant.
    pub os: OsVariant,
}

impl Win32Profile {
    /// The profile for an OS variant.
    ///
    /// # Panics
    ///
    /// Panics when handed [`OsVariant::Linux`] — Linux has no Win32 API.
    #[must_use]
    pub fn for_os(os: OsVariant) -> Self {
        assert!(os.is_windows(), "Win32Profile requires a Windows variant");
        Win32Profile { os }
    }

    /// NT-family and CE kernels validate handles; the 9x family quietly
    /// accepts garbage handles (success, no error — a Silent failure).
    #[must_use]
    pub fn validates_handles(&self) -> bool {
        self.os.is_nt() || self.os.is_ce()
    }

    /// The default out-pointer policy for calls *not* in the Table 3 list:
    /// NT probes (Abort), 9x's lazy paths skip silently, CE validates.
    #[must_use]
    pub fn default_out_policy(&self, lazy_on_9x: bool) -> OutPolicy {
        if self.os.is_9x() && lazy_on_9x {
            OutPolicy::SilentSkip
        } else if self.os.is_ce() {
            OutPolicy::ValidateError
        } else {
            OutPolicy::UserProbe
        }
    }

    /// Looks up the Table 3 vulnerability of `call` on this variant, if
    /// any. Call names use the exact Win32 spelling.
    #[must_use]
    pub fn vulnerability(&self, call: &str) -> Option<Vulnerability> {
        let dep = |interference_dependent| Some(Vulnerability { interference_dependent });
        match (call, self.os) {
            // GetThreadContext: deterministic on all of 9x and CE (Listing 1).
            ("GetThreadContext", v) if v.is_9x() || v.is_ce() => dep(false),
            // SetThreadContext: CE only.
            ("SetThreadContext", OsVariant::WinCe) => dep(false),
            // GetFileInformationByHandle: deterministic, all 9x.
            ("GetFileInformationByHandle", v) if v.is_9x() => dep(false),
            // DuplicateHandle: interference-dependent, all 9x.
            ("DuplicateHandle", v) if v.is_9x() => dep(true),
            // MsgWaitForMultipleObjects: 9x and CE, interference-dependent.
            ("MsgWaitForMultipleObjects", v) if v.is_9x() || v.is_ce() => dep(true),
            // MsgWaitForMultipleObjectsEx: not implemented on 95; 98/98SE/CE.
            (
                "MsgWaitForMultipleObjectsEx",
                OsVariant::Win98 | OsVariant::Win98Se | OsVariant::WinCe,
            ) => dep(true),
            // ReadProcessMemory: 95 and CE, interference-dependent.
            ("ReadProcessMemory", OsVariant::Win95 | OsVariant::WinCe) => dep(true),
            // FileTimeToSystemTime: 95 only, deterministic.
            ("FileTimeToSystemTime", OsVariant::Win95) => dep(false),
            // HeapCreate: 95 only, deterministic.
            ("HeapCreate", OsVariant::Win95) => dep(false),
            // CreateThread: 98 SE and CE, interference-dependent.
            ("CreateThread", OsVariant::Win98Se | OsVariant::WinCe) => dep(true),
            // Interlocked*: CE only, interference-dependent.
            ("InterlockedIncrement" | "InterlockedDecrement" | "InterlockedExchange", OsVariant::WinCe) => {
                dep(true)
            }
            // VirtualAlloc: CE only, deterministic.
            ("VirtualAlloc", OsVariant::WinCe) => dep(false),
            _ => None,
        }
    }

    /// Whether the vulnerability (if present) fires given the current
    /// residue level.
    #[must_use]
    pub fn vulnerability_fires(&self, call: &str, residue: u32) -> bool {
        match self.vulnerability(call) {
            Some(v) => !v.interference_dependent || residue >= RESIDUE_THRESHOLD,
            None => false,
        }
    }

    /// [`Self::vulnerability_fires`] against a live machine, recording a
    /// residue probe **only when the outcome can actually depend on it**
    /// (an interference-dependent vulnerability exists for `call`).
    /// Deterministic vulnerabilities and calls with no Table 3 entry
    /// never consult residue, so cases exercising them stay provably
    /// order-independent for the parallel campaign engine.
    #[must_use]
    pub fn vulnerability_fires_on(&self, call: &str, k: &mut sim_kernel::Kernel) -> bool {
        match self.vulnerability(call) {
            Some(v) => !v.interference_dependent || k.probe_residue() >= RESIDUE_THRESHOLD,
            None => false,
        }
    }

    /// The ten Win32 system calls Windows 95 does not implement (the
    /// paper: "10 Win32 system calls were not supported by Windows 95").
    #[must_use]
    pub fn supports_call(&self, call: &str) -> bool {
        const NOT_ON_95: [&str; 10] = [
            "MsgWaitForMultipleObjectsEx",
            "CreateDirectoryEx",
            "ReadFileEx",
            "WriteFileEx",
            "LockFileEx",
            "UnlockFileEx",
            "HeapCompact",
            "HeapValidate",
            "MoveFileEx",
            "FlushViewOfFile",
        ];
        if self.os == OsVariant::Win95 && NOT_ON_95.contains(&call) {
            return false;
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(os: OsVariant) -> Win32Profile {
        Win32Profile::for_os(os)
    }

    #[test]
    #[should_panic(expected = "requires a Windows variant")]
    fn linux_has_no_win32() {
        let _ = Win32Profile::for_os(OsVariant::Linux);
    }

    #[test]
    fn handle_validation_split() {
        assert!(p(OsVariant::WinNt4).validates_handles());
        assert!(p(OsVariant::Win2000).validates_handles());
        assert!(p(OsVariant::WinCe).validates_handles());
        assert!(!p(OsVariant::Win95).validates_handles());
        assert!(!p(OsVariant::Win98).validates_handles());
        assert!(!p(OsVariant::Win98Se).validates_handles());
    }

    #[test]
    fn catastrophic_call_sets_match_table_1_counts() {
        // Count vulnerable system calls per variant against Table 1.
        let all_calls = [
            "GetThreadContext",
            "SetThreadContext",
            "GetFileInformationByHandle",
            "DuplicateHandle",
            "MsgWaitForMultipleObjects",
            "MsgWaitForMultipleObjectsEx",
            "ReadProcessMemory",
            "FileTimeToSystemTime",
            "HeapCreate",
            "CreateThread",
            "InterlockedIncrement",
            "InterlockedDecrement",
            "InterlockedExchange",
            "VirtualAlloc",
        ];
        let count = |os: OsVariant| {
            all_calls
                .iter()
                .filter(|c| p(os).vulnerability(c).is_some() && p(os).supports_call(c))
                .count()
        };
        assert_eq!(count(OsVariant::Win95), 7, "Win95 row of Table 1");
        assert_eq!(count(OsVariant::Win98), 5, "Win98 row of Table 1");
        assert_eq!(count(OsVariant::Win98Se), 6, "Win98 SE row of Table 1");
        assert_eq!(count(OsVariant::WinNt4), 0, "NT row of Table 1");
        assert_eq!(count(OsVariant::Win2000), 0, "Win2000 row of Table 1");
        assert_eq!(count(OsVariant::WinCe), 10, "CE row of Table 1");
    }

    #[test]
    fn listing1_vulnerability_is_deterministic() {
        for os in [OsVariant::Win95, OsVariant::Win98, OsVariant::Win98Se, OsVariant::WinCe] {
            assert!(p(os).vulnerability_fires("GetThreadContext", 0), "{os}");
        }
        assert!(!p(OsVariant::WinNt4).vulnerability_fires("GetThreadContext", 100));
    }

    #[test]
    fn starred_entries_need_residue() {
        let w98 = p(OsVariant::Win98);
        assert!(!w98.vulnerability_fires("DuplicateHandle", 0));
        assert!(w98.vulnerability_fires("DuplicateHandle", RESIDUE_THRESHOLD));
        assert!(!w98.vulnerability_fires("MsgWaitForMultipleObjects", 2));
        assert!(w98.vulnerability_fires("MsgWaitForMultipleObjects", 3));
    }

    #[test]
    fn win95_missing_calls() {
        let w95 = p(OsVariant::Win95);
        assert!(!w95.supports_call("MsgWaitForMultipleObjectsEx"));
        assert!(!w95.supports_call("ReadFileEx"));
        assert!(w95.supports_call("ReadFile"));
        assert!(p(OsVariant::Win98).supports_call("MsgWaitForMultipleObjectsEx"));
    }

    #[test]
    fn out_policies() {
        assert_eq!(
            p(OsVariant::WinNt4).default_out_policy(true),
            OutPolicy::UserProbe
        );
        assert_eq!(
            p(OsVariant::Win95).default_out_policy(true),
            OutPolicy::SilentSkip
        );
        assert_eq!(
            p(OsVariant::Win95).default_out_policy(false),
            OutPolicy::UserProbe
        );
        assert_eq!(
            p(OsVariant::WinCe).default_out_policy(true),
            OutPolicy::ValidateError
        );
    }
}
