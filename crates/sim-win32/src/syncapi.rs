//! Synchronization objects and waits: events, mutexes, semaphores,
//! `WaitForSingleObject`/`WaitForMultipleObjects` and the two
//! `MsgWaitForMultipleObjects` calls of Table 3.
//!
//! The waits are the source of the paper's **Restart** failures: an
//! unsatisfiable wait with an `INFINITE` timeout never returns. The
//! `MsgWait*` pair additionally reads the caller's handle array in kernel
//! mode on the 9x family and CE — with harness residue, a wild array
//! pointer is Catastrophic (`*MsgWaitForMultipleObjects[Ex]`).

use sim_kernel::Subsystem;
use crate::errors::{self, ERROR_INVALID_PARAMETER, WAIT_TIMEOUT};
use crate::marshal::{bad_handle_return, exception, kernel_read, read_string, FALSE, TRUE};
use crate::profile::Win32Profile;
use sim_core::SimPtr;
use sim_kernel::objects::{Handle, ObjectKind};
use sim_kernel::outcome::{ApiAbort, ApiResult, ApiReturn};
use sim_kernel::sync::{wait_any, SyncState, WaitOutcome};
use sim_kernel::Kernel;

/// `WAIT_OBJECT_0`.
pub const WAIT_OBJECT_0: i64 = 0;
/// `WAIT_ABANDONED_0`.
pub const WAIT_ABANDONED_0: i64 = 0x80;
/// `WAIT_FAILED`.
pub const WAIT_FAILED: i64 = -1;
/// `MAXIMUM_WAIT_OBJECTS`.
pub const MAXIMUM_WAIT_OBJECTS: u32 = 64;

/// `CreateEvent(lpSecurity, bManualReset, bInitialState, lpName)`.
///
/// # Errors
///
/// An SEH abort when a non-NULL name pointer faults.
pub fn CreateEvent(
    k: &mut Kernel,
    _profile: Win32Profile,
    _security: SimPtr,
    manual_reset: u32,
    initial_state: u32,
    name: SimPtr,
) -> ApiResult {
    k.charge_call_to(Subsystem::Sync);
    if !name.is_null() {
        let _ = read_string(k, name)?;
    }
    let h = k.objects.insert(ObjectKind::Event(SyncState::event(
        manual_reset != 0,
        initial_state != 0,
    )));
    Ok(ApiReturn::ok(i64::from(h.raw())))
}

fn signal_object(k: &mut Kernel, profile: Win32Profile, h: Handle, expected_event: bool, set: bool) -> ApiResult {
    match k.objects.get_mut(h) {
        Ok(ObjectKind::Event(s)) if expected_event => {
            if set {
                s.signal();
            } else {
                s.reset();
            }
            Ok(ApiReturn::ok(TRUE))
        }
        Ok(ObjectKind::Mutex(s)) if !expected_event => {
            if s.owner != k.procs.current_tid() || s.count == 0 {
                return Ok(ApiReturn::err(FALSE, errors::ERROR_NOT_LOCKED));
            }
            s.signal();
            Ok(ApiReturn::ok(TRUE))
        }
        Ok(_) => Ok(ApiReturn::err(FALSE, errors::ERROR_INVALID_HANDLE)),
        Err(e) => Ok(bad_handle_return(profile, e, TRUE)),
    }
}

/// `SetEvent(hEvent)`.
///
/// # Errors
///
/// None.
pub fn SetEvent(k: &mut Kernel, profile: Win32Profile, h: Handle) -> ApiResult {
    k.charge_call_to(Subsystem::Sync);
    signal_object(k, profile, h, true, true)
}

/// `ResetEvent(hEvent)`.
///
/// # Errors
///
/// None.
pub fn ResetEvent(k: &mut Kernel, profile: Win32Profile, h: Handle) -> ApiResult {
    k.charge_call_to(Subsystem::Sync);
    signal_object(k, profile, h, true, false)
}

/// `PulseEvent(hEvent)` — signal then immediately reset (no waiter can
/// exist in the single-threaded simulation, so the net effect is a reset).
///
/// # Errors
///
/// None.
pub fn PulseEvent(k: &mut Kernel, profile: Win32Profile, h: Handle) -> ApiResult {
    k.charge_call_to(Subsystem::Sync);
    match k.objects.get_mut(h) {
        Ok(ObjectKind::Event(s)) => {
            s.signal();
            s.reset();
            Ok(ApiReturn::ok(TRUE))
        }
        Ok(_) => Ok(ApiReturn::err(FALSE, errors::ERROR_INVALID_HANDLE)),
        Err(e) => Ok(bad_handle_return(profile, e, TRUE)),
    }
}

/// `CreateMutex(lpSecurity, bInitialOwner, lpName)`.
///
/// # Errors
///
/// An SEH abort when a non-NULL name pointer faults.
pub fn CreateMutex(
    k: &mut Kernel,
    _profile: Win32Profile,
    _security: SimPtr,
    initial_owner: u32,
    name: SimPtr,
) -> ApiResult {
    k.charge_call_to(Subsystem::Sync);
    if !name.is_null() {
        let _ = read_string(k, name)?;
    }
    let owner = if initial_owner != 0 {
        k.procs.current_tid()
    } else {
        0
    };
    let h = k.objects.insert(ObjectKind::Mutex(SyncState::mutex(owner)));
    Ok(ApiReturn::ok(i64::from(h.raw())))
}

/// `ReleaseMutex(hMutex)`.
///
/// # Errors
///
/// None; releasing an unowned mutex is a robust error.
pub fn ReleaseMutex(k: &mut Kernel, profile: Win32Profile, h: Handle) -> ApiResult {
    k.charge_call_to(Subsystem::Sync);
    signal_object(k, profile, h, false, true)
}

/// `CreateSemaphore(lpSecurity, lInitialCount, lMaximumCount, lpName)`.
///
/// # Errors
///
/// An SEH abort when a non-NULL name pointer faults; degenerate counts are
/// robust errors.
pub fn CreateSemaphore(
    k: &mut Kernel,
    _profile: Win32Profile,
    _security: SimPtr,
    initial: i32,
    maximum: i32,
    name: SimPtr,
) -> ApiResult {
    k.charge_call_to(Subsystem::Sync);
    if !name.is_null() {
        let _ = read_string(k, name)?;
    }
    if maximum <= 0 || initial < 0 || initial > maximum {
        return Ok(ApiReturn::err(0, ERROR_INVALID_PARAMETER));
    }
    let h = k.objects.insert(ObjectKind::Semaphore(SyncState::semaphore(
        initial as u32,
        maximum as u32,
    )));
    Ok(ApiReturn::ok(i64::from(h.raw())))
}

/// `ReleaseSemaphore(hSemaphore, lReleaseCount, lpPreviousCount)`.
///
/// # Errors
///
/// An SEH abort when a non-NULL previous-count pointer faults under
/// probing.
pub fn ReleaseSemaphore(
    k: &mut Kernel,
    profile: Win32Profile,
    h: Handle,
    release_count: i32,
    previous_out: SimPtr,
) -> ApiResult {
    k.charge_call_to(Subsystem::Sync);
    if release_count <= 0 {
        return Ok(ApiReturn::err(FALSE, ERROR_INVALID_PARAMETER));
    }
    let previous = match k.objects.get_mut(h) {
        Ok(ObjectKind::Semaphore(s)) => {
            let prev = s.count;
            if u64::from(prev) + release_count as u64 > u64::from(s.max_count) {
                return Ok(ApiReturn::err(FALSE, ERROR_INVALID_PARAMETER));
            }
            for _ in 0..release_count {
                s.signal();
            }
            prev
        }
        Ok(_) => return Ok(ApiReturn::err(FALSE, errors::ERROR_INVALID_HANDLE)),
        Err(e) => return Ok(bad_handle_return(profile, e, TRUE)),
    };
    if !previous_out.is_null() {
        let out = crate::marshal::write_out(
            k,
            profile,
            "ReleaseSemaphore",
            true,
            previous_out,
            &previous.to_le_bytes(),
        )?;
        return Ok(crate::marshal::finish_out(out, TRUE));
    }
    Ok(ApiReturn::ok(TRUE))
}

fn wait_on_states(states: &mut [(usize, SyncState)], tid: u32, timeout: u32) -> (WaitOutcome, Vec<(usize, SyncState)>) {
    let mut refs: Vec<&mut SyncState> = states.iter_mut().map(|(_, s)| s).collect();
    let outcome = wait_any(&mut refs, tid, timeout);
    (outcome, Vec::new())
}

fn do_wait(
    k: &mut Kernel,
    profile: Win32Profile,
    handles: &[Handle],
    timeout: u32,
) -> Result<i64, ApiAbort> {
    // Snapshot the states, run the wait protocol, write back.
    let mut states: Vec<(usize, SyncState)> = Vec::new();
    for (i, &h) in handles.iter().enumerate() {
        match k.objects.get(h) {
            Ok(ObjectKind::Event(s) | ObjectKind::Mutex(s) | ObjectKind::Semaphore(s)) => {
                states.push((i, *s));
            }
            Ok(ObjectKind::Process(pid)) => {
                // A process handle is signaled when the process has exited.
                let signaled = matches!(
                    k.procs.process(*pid).map(|p| p.state),
                    Ok(sim_kernel::process::RunState::Exited(_))
                );
                states.push((i, SyncState::event(true, signaled)));
            }
            Ok(ObjectKind::Thread(tid)) => {
                let signaled = matches!(
                    k.procs.thread(*tid).map(|t| t.state),
                    Ok(sim_kernel::process::RunState::Exited(_))
                );
                states.push((i, SyncState::event(true, signaled)));
            }
            Ok(_) => return Ok(WAIT_FAILED),
            Err(e) => {
                return Ok(match crate::marshal::handle_disposition(profile, e) {
                    // 9x: the garbage handle "was signaled" — silent.
                    crate::marshal::BadHandle::SilentSuccess => WAIT_OBJECT_0 + i as i64,
                    crate::marshal::BadHandle::ErrorReturn(_) => WAIT_FAILED,
                });
            }
        }
    }
    let tid = k.procs.current_tid();
    let (outcome, _) = wait_on_states(&mut states, tid, timeout);
    // Write back mutated object states.
    for (i, s) in &states {
        if let Ok(
            ObjectKind::Event(slot) | ObjectKind::Mutex(slot) | ObjectKind::Semaphore(slot),
        ) = k.objects.get_mut(handles[*i])
        {
            *slot = *s;
        }
    }
    match outcome {
        WaitOutcome::Signaled(i) => Ok(WAIT_OBJECT_0 + i as i64),
        WaitOutcome::Abandoned(i) => Ok(WAIT_ABANDONED_0 + i as i64),
        WaitOutcome::Timeout => {
            k.clock.advance_ms(u64::from(timeout.min(60_000)));
            Ok(i64::from(WAIT_TIMEOUT))
        }
        WaitOutcome::Hang => Err(ApiAbort::Hang),
    }
}

/// `WaitForSingleObject(hHandle, dwMilliseconds)`.
///
/// # Errors
///
/// [`ApiAbort::Hang`] when the wait can never be satisfied and the timeout
/// is `INFINITE` — the paper's Restart failure mode.
pub fn WaitForSingleObject(k: &mut Kernel, profile: Win32Profile, h: Handle, timeout: u32) -> ApiResult {
    k.charge_call_to(Subsystem::Sync);
    let code = do_wait(k, profile, &[h], timeout)?;
    if code == WAIT_FAILED {
        return Ok(ApiReturn::err(WAIT_FAILED, errors::ERROR_INVALID_HANDLE));
    }
    Ok(ApiReturn::ok(code))
}

fn read_handle_array_user(
    k: &Kernel,
    count: u32,
    handles_ptr: SimPtr,
) -> Result<Vec<Handle>, ApiAbort> {
    let mut out = Vec::with_capacity(count as usize);
    for i in 0..count {
        let raw = k
            .space
            .read_u32(handles_ptr.offset(u64::from(i) * 4))
            .map_err(exception)?;
        out.push(Handle(raw));
    }
    Ok(out)
}

/// `WaitForMultipleObjects(nCount, lpHandles, bWaitAll, dwMilliseconds)` —
/// wait-any semantics are modelled (`bWaitAll` with multiple unsignaled
/// objects can never complete single-threadedly and hangs on `INFINITE`).
///
/// # Errors
///
/// An SEH abort when the handle array faults (read in user mode by this
/// call on every variant); [`ApiAbort::Hang`] for unsatisfiable infinite
/// waits.
pub fn WaitForMultipleObjects(
    k: &mut Kernel,
    profile: Win32Profile,
    count: u32,
    handles_ptr: SimPtr,
    _wait_all: u32,
    timeout: u32,
) -> ApiResult {
    k.charge_call_to(Subsystem::Sync);
    if count == 0 || count > MAXIMUM_WAIT_OBJECTS {
        return Ok(ApiReturn::err(WAIT_FAILED, ERROR_INVALID_PARAMETER));
    }
    let handles = read_handle_array_user(k, count, handles_ptr)?;
    let code = do_wait(k, profile, &handles, timeout)?;
    if code == WAIT_FAILED {
        return Ok(ApiReturn::err(WAIT_FAILED, errors::ERROR_INVALID_HANDLE));
    }
    Ok(ApiReturn::ok(code))
}

fn msg_wait_impl(
    k: &mut Kernel,
    profile: Win32Profile,
    call: &'static str,
    count: u32,
    handles_ptr: SimPtr,
    timeout: u32,
) -> ApiResult {
    if count > MAXIMUM_WAIT_OBJECTS - 1 {
        return Ok(ApiReturn::err(WAIT_FAILED, ERROR_INVALID_PARAMETER));
    }
    // The 9x/CE implementations hand the array pointer to kernel code.
    let handles: Vec<Handle> = if profile.vulnerability_fires_on(call, k) {
        if count > 0 {
            match kernel_read(k, call, handles_ptr, u64::from(count) * 4) {
                Some(bytes) => bytes
                    .chunks_exact(4)
                    .map(|c| Handle(u32::from_le_bytes(c.try_into().expect("sized"))))
                    .collect(),
                None => return Ok(ApiReturn::ok(0)), // machine dead
            }
        } else {
            Vec::new()
        }
    } else if count > 0 {
        read_handle_array_user(k, count, handles_ptr)?
    } else {
        Vec::new()
    };
    // There is always "a message" eventually in a real message queue; the
    // simulated queue is empty, so only the object wait can complete.
    let code = do_wait(k, profile, &handles, timeout)?;
    if code == WAIT_FAILED {
        return Ok(ApiReturn::err(WAIT_FAILED, errors::ERROR_INVALID_HANDLE));
    }
    Ok(ApiReturn::ok(code))
}

/// `MsgWaitForMultipleObjects(nCount, pHandles, fWaitAll, dwMilliseconds,
/// dwWakeMask)`.
///
/// **Table 3** (`*MsgWaitForMultipleObjects`): on 9x and CE with harness
/// residue, the handle array is read in kernel mode with no probing.
///
/// # Errors
///
/// An SEH abort when the array faults in the user-mode path;
/// [`ApiAbort::Hang`] for unsatisfiable infinite waits.
pub fn MsgWaitForMultipleObjects(
    k: &mut Kernel,
    profile: Win32Profile,
    count: u32,
    handles_ptr: SimPtr,
    _wait_all: u32,
    timeout: u32,
    _wake_mask: u32,
) -> ApiResult {
    k.charge_call_to(Subsystem::Sync);
    msg_wait_impl(k, profile, "MsgWaitForMultipleObjects", count, handles_ptr, timeout)
}

/// `MsgWaitForMultipleObjectsEx(nCount, pHandles, dwMilliseconds,
/// dwWakeMask, dwFlags)` — not implemented on Windows 95 (the catalog
/// excludes it there).
///
/// # Errors
///
/// Same conditions as [`MsgWaitForMultipleObjects`].
pub fn MsgWaitForMultipleObjectsEx(
    k: &mut Kernel,
    profile: Win32Profile,
    count: u32,
    handles_ptr: SimPtr,
    timeout: u32,
    _wake_mask: u32,
    _flags: u32,
) -> ApiResult {
    k.charge_call_to(Subsystem::Sync);
    if !profile.supports_call("MsgWaitForMultipleObjectsEx") {
        return Ok(ApiReturn::err(WAIT_FAILED, errors::ERROR_INVALID_FUNCTION));
    }
    msg_wait_impl(k, profile, "MsgWaitForMultipleObjectsEx", count, handles_ptr, timeout)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_kernel::kernel::MachineFlavor;
    use sim_kernel::sync::INFINITE;
    use sim_kernel::variant::OsVariant;

    fn nt() -> Win32Profile {
        Win32Profile::for_os(OsVariant::WinNt4)
    }

    fn w98() -> Win32Profile {
        Win32Profile::for_os(OsVariant::Win98)
    }

    fn wk() -> Kernel {
        Kernel::with_flavor(MachineFlavor::Windows)
    }

    fn event(k: &mut Kernel, signaled: bool) -> Handle {
        Handle(
            CreateEvent(k, nt(), SimPtr::NULL, 0, u32::from(signaled), SimPtr::NULL)
                .unwrap()
                .value as u32,
        )
    }

    #[test]
    fn event_protocol() {
        let mut k = wk();
        let h = event(&mut k, false);
        // Unsignaled, finite wait → timeout.
        assert_eq!(
            WaitForSingleObject(&mut k, nt(), h, 50).unwrap().value,
            i64::from(WAIT_TIMEOUT)
        );
        SetEvent(&mut k, nt(), h).unwrap();
        assert_eq!(WaitForSingleObject(&mut k, nt(), h, 50).unwrap().value, WAIT_OBJECT_0);
        // Auto-reset consumed it.
        assert_eq!(
            WaitForSingleObject(&mut k, nt(), h, 0).unwrap().value,
            i64::from(WAIT_TIMEOUT)
        );
        SetEvent(&mut k, nt(), h).unwrap();
        ResetEvent(&mut k, nt(), h).unwrap();
        assert_eq!(
            WaitForSingleObject(&mut k, nt(), h, 0).unwrap().value,
            i64::from(WAIT_TIMEOUT)
        );
        PulseEvent(&mut k, nt(), h).unwrap();
    }

    #[test]
    fn infinite_wait_on_unsignaled_object_hangs() {
        let mut k = wk();
        let h = event(&mut k, false);
        let err = WaitForSingleObject(&mut k, nt(), h, INFINITE).unwrap_err();
        assert!(err.is_hang());
    }

    #[test]
    fn bad_handle_wait_splits() {
        let mut k = wk();
        // NT: WAIT_FAILED + error.
        let r = WaitForSingleObject(&mut k, nt(), Handle(0xBEEF), INFINITE).unwrap();
        assert_eq!(r.value, WAIT_FAILED);
        assert!(r.reported_error());
        // 98: pretends the object was signaled — a Silent failure (and no hang).
        let r = WaitForSingleObject(&mut k, w98(), Handle(0xBEEF), INFINITE).unwrap();
        assert_eq!(r.value, WAIT_OBJECT_0);
        assert!(!r.reported_error());
    }

    #[test]
    fn mutex_protocol() {
        let mut k = wk();
        let r = CreateMutex(&mut k, nt(), SimPtr::NULL, 0, SimPtr::NULL).unwrap();
        let h = Handle(r.value as u32);
        assert_eq!(WaitForSingleObject(&mut k, nt(), h, 0).unwrap().value, WAIT_OBJECT_0);
        assert_eq!(ReleaseMutex(&mut k, nt(), h).unwrap().value, TRUE);
        // Releasing when not held: robust error.
        assert!(ReleaseMutex(&mut k, nt(), h).unwrap().reported_error());
    }

    #[test]
    fn semaphore_protocol() {
        let mut k = wk();
        let r = CreateSemaphore(&mut k, nt(), SimPtr::NULL, 1, 2, SimPtr::NULL).unwrap();
        let h = Handle(r.value as u32);
        assert_eq!(WaitForSingleObject(&mut k, nt(), h, 0).unwrap().value, WAIT_OBJECT_0);
        let prev = k.alloc_user(4, "prev");
        assert_eq!(
            ReleaseSemaphore(&mut k, nt(), h, 2, prev).unwrap().value,
            TRUE
        );
        assert_eq!(k.space.read_u32(prev).unwrap(), 0);
        // Exceeding the maximum: robust error.
        assert!(ReleaseSemaphore(&mut k, nt(), h, 1, SimPtr::NULL)
            .unwrap()
            .reported_error());
        // Degenerate creation parameters.
        assert!(CreateSemaphore(&mut k, nt(), SimPtr::NULL, 5, 2, SimPtr::NULL)
            .unwrap()
            .reported_error());
        assert!(CreateSemaphore(&mut k, nt(), SimPtr::NULL, -1, 2, SimPtr::NULL)
            .unwrap()
            .reported_error());
    }

    #[test]
    fn wait_multiple_selects_signaled() {
        let mut k = wk();
        let a = event(&mut k, false);
        let b = event(&mut k, true);
        let arr = k.alloc_user(8, "handles");
        k.space.write_u32(arr, a.raw()).unwrap();
        k.space.write_u32(arr.offset(4), b.raw()).unwrap();
        assert_eq!(
            WaitForMultipleObjects(&mut k, nt(), 2, arr, 0, 100).unwrap().value,
            WAIT_OBJECT_0 + 1
        );
        // Count 0 and huge counts are robust errors.
        assert!(WaitForMultipleObjects(&mut k, nt(), 0, arr, 0, 0)
            .unwrap()
            .reported_error());
        assert!(WaitForMultipleObjects(&mut k, nt(), 65, arr, 0, 0)
            .unwrap()
            .reported_error());
        // Hostile array: abort on every variant in the plain call.
        assert!(WaitForMultipleObjects(&mut k, nt(), 2, SimPtr::NULL, 0, 0).is_err());
        assert!(WaitForMultipleObjects(&mut k, w98(), 2, SimPtr::NULL, 0, 0).is_err());
    }

    #[test]
    fn msg_wait_crash_matrix() {
        // 98 + residue + wild array: Catastrophic.
        let mut k = wk();
        k.residue = 5;
        let _ = MsgWaitForMultipleObjects(&mut k, w98(), 4, SimPtr::new(0x40), 0, 100, 0xFF).unwrap();
        assert!(!k.is_alive());
        // 98 without residue: plain abort.
        let mut k2 = wk();
        assert!(MsgWaitForMultipleObjects(&mut k2, w98(), 4, SimPtr::new(0x40), 0, 100, 0xFF).is_err());
        assert!(k2.is_alive());
        // NT always aborts, never crashes.
        let mut k3 = wk();
        k3.residue = 9;
        assert!(MsgWaitForMultipleObjects(&mut k3, nt(), 4, SimPtr::new(0x40), 0, 100, 0xFF).is_err());
        assert!(k3.is_alive());
        // Ex variant unsupported on 95.
        let mut k4 = wk();
        let w95 = Win32Profile::for_os(OsVariant::Win95);
        let r = MsgWaitForMultipleObjectsEx(&mut k4, w95, 1, SimPtr::new(0x40), 100, 0, 0).unwrap();
        assert!(r.reported_error());
        // Ex variant crashes 98 with residue.
        let mut k5 = wk();
        k5.residue = 5;
        let _ = MsgWaitForMultipleObjectsEx(&mut k5, w98(), 4, SimPtr::new(0x40), 100, 0, 0).unwrap();
        assert!(!k5.is_alive());
    }

    #[test]
    fn msg_wait_valid_array_times_out() {
        let mut k = wk();
        let a = event(&mut k, false);
        let arr = k.alloc_user(4, "handles");
        k.space.write_u32(arr, a.raw()).unwrap();
        assert_eq!(
            MsgWaitForMultipleObjects(&mut k, nt(), 1, arr, 0, 25, 0xFF).unwrap().value,
            i64::from(WAIT_TIMEOUT)
        );
        // Infinite + unsatisfiable = Restart.
        assert!(MsgWaitForMultipleObjects(&mut k, nt(), 1, arr, 0, INFINITE, 0xFF)
            .unwrap_err()
            .is_hang());
    }
}
