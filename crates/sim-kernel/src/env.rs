//! The process environment block.
//!
//! Environment calls (`getenv`/`GetEnvironmentVariable`, …) form the paper's
//! *Process Environment* grouping. The block is a plain name→value map with
//! the validation quirks the APIs expose: empty names are invalid, setting a
//! variable to an empty value deletes it on Win32, and names containing `=`
//! are rejected.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Errors from environment operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EnvError {
    /// Variable not present.
    NotFound,
    /// Empty name, or name containing `=` or NUL.
    InvalidName,
}

impl fmt::Display for EnvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EnvError::NotFound => f.write_str("environment variable not found"),
            EnvError::InvalidName => f.write_str("invalid environment variable name"),
        }
    }
}

impl std::error::Error for EnvError {}

/// The environment block.
///
/// # Example
///
/// ```
/// use sim_kernel::env::Environment;
///
/// let mut env = Environment::with_defaults();
/// env.set("ANSWER", "42").unwrap();
/// assert_eq!(env.get("ANSWER").unwrap(), "42");
/// assert!(env.get("PATH").is_ok()); // defaults are present
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Environment {
    vars: BTreeMap<String, String>,
    /// Structural-mutation counter for the snapshot layer (see
    /// `FileSystem::generation` for the protocol).
    #[serde(default)]
    gen: u64,
}

/// Equality covers the variables, not the mutation counter.
impl PartialEq for Environment {
    fn eq(&self, other: &Self) -> bool {
        self.vars == other.vars
    }
}

impl Eq for Environment {}

impl Environment {
    /// An empty environment.
    #[must_use]
    pub fn new() -> Self {
        Environment::default()
    }

    /// An environment pre-populated with the variables the paper's test
    /// programs could rely on.
    #[must_use]
    pub fn with_defaults() -> Self {
        let mut env = Environment::new();
        for (k, v) in [
            ("PATH", "/bin:/usr/bin"),
            ("HOME", "/home/ballista"),
            ("TEMP", "/tmp"),
            ("TMP", "/tmp"),
            ("USER", "ballista"),
            ("COMPUTERNAME", "TESTBED"),
            ("SYSTEMROOT", "C:\\WINDOWS"),
        ] {
            env.vars.insert(k.to_owned(), v.to_owned());
        }
        env
    }

    /// Current structural generation (see `FileSystem::generation`).
    #[must_use]
    pub fn generation(&self) -> u64 {
        self.gen
    }

    fn touch(&mut self) {
        self.gen = self.gen.wrapping_add(1);
    }

    fn check_name(name: &str) -> Result<(), EnvError> {
        if name.is_empty() || name.contains('=') || name.contains('\0') {
            Err(EnvError::InvalidName)
        } else {
            Ok(())
        }
    }

    /// Reads a variable.
    ///
    /// # Errors
    ///
    /// [`EnvError::InvalidName`] / [`EnvError::NotFound`].
    pub fn get(&self, name: &str) -> Result<&str, EnvError> {
        Self::check_name(name)?;
        self.vars.get(name).map(String::as_str).ok_or(EnvError::NotFound)
    }

    /// Sets a variable.
    ///
    /// # Errors
    ///
    /// [`EnvError::InvalidName`] for malformed names.
    pub fn set(&mut self, name: &str, value: &str) -> Result<(), EnvError> {
        self.touch();
        Self::check_name(name)?;
        self.vars.insert(name.to_owned(), value.to_owned());
        Ok(())
    }

    /// Removes a variable (idempotent, as both `unsetenv` and the Win32
    /// delete-by-NULL behave).
    ///
    /// # Errors
    ///
    /// [`EnvError::InvalidName`] for malformed names.
    pub fn unset(&mut self, name: &str) -> Result<(), EnvError> {
        self.touch();
        Self::check_name(name)?;
        self.vars.remove(name);
        Ok(())
    }

    /// Number of variables.
    #[must_use]
    pub fn len(&self) -> usize {
        self.vars.len()
    }

    /// Whether the block is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.vars.is_empty()
    }

    /// Iterates `(name, value)` pairs in sorted order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &str)> {
        self.vars.iter().map(|(k, v)| (k.as_str(), v.as_str()))
    }

    /// Expands `%NAME%` references in `input` (Win32
    /// `ExpandEnvironmentStrings`). Unknown names are left verbatim,
    /// including their percent signs, matching the real call.
    #[must_use]
    pub fn expand(&self, input: &str) -> String {
        let mut out = String::with_capacity(input.len());
        let mut rest = input;
        while let Some(start) = rest.find('%') {
            out.push_str(&rest[..start]);
            let after = &rest[start + 1..];
            match after.find('%') {
                Some(end) => {
                    let name = &after[..end];
                    match self.vars.get(name) {
                        Some(v) => out.push_str(v),
                        None => {
                            out.push('%');
                            out.push_str(name);
                            out.push('%');
                        }
                    }
                    rest = &after[end + 1..];
                }
                None => {
                    out.push('%');
                    rest = after;
                }
            }
        }
        out.push_str(rest);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_unset() {
        let mut env = Environment::new();
        env.set("A", "1").unwrap();
        assert_eq!(env.get("A").unwrap(), "1");
        env.set("A", "2").unwrap();
        assert_eq!(env.get("A").unwrap(), "2");
        env.unset("A").unwrap();
        assert_eq!(env.get("A").unwrap_err(), EnvError::NotFound);
        env.unset("A").unwrap(); // idempotent
    }

    #[test]
    fn invalid_names_rejected() {
        let mut env = Environment::new();
        assert_eq!(env.set("", "x").unwrap_err(), EnvError::InvalidName);
        assert_eq!(env.set("A=B", "x").unwrap_err(), EnvError::InvalidName);
        assert_eq!(env.get("A\0B").unwrap_err(), EnvError::InvalidName);
    }

    #[test]
    fn defaults_present() {
        let env = Environment::with_defaults();
        assert!(!env.is_empty());
        assert!(env.len() >= 5);
        assert_eq!(env.get("TEMP").unwrap(), "/tmp");
    }

    #[test]
    fn expansion() {
        let mut env = Environment::new();
        env.set("NAME", "world").unwrap();
        assert_eq!(env.expand("hello %NAME%!"), "hello world!");
        assert_eq!(env.expand("%MISSING% stays"), "%MISSING% stays");
        assert_eq!(env.expand("dangling % sign"), "dangling % sign");
        assert_eq!(env.expand("%NAME%%NAME%"), "worldworld");
        assert_eq!(env.expand("no refs"), "no refs");
    }

    #[test]
    fn iter_sorted() {
        let mut env = Environment::new();
        env.set("B", "2").unwrap();
        env.set("A", "1").unwrap();
        let pairs: Vec<_> = env.iter().collect();
        assert_eq!(pairs, vec![("A", "1"), ("B", "2")]);
    }
}
