//! The common call-outcome type shared by all simulated APIs.
//!
//! Every simulated C-library function, Win32 call and POSIX call returns an
//! [`ApiResult`]: either the call *returned* to the application (with a
//! value and possibly an error code — the robust path, or a Silent failure
//! when the inputs were exceptional), or it *aborted* the task (a signal or
//! structured exception — an Abort failure) or *never returned* (a hang — a
//! Restart failure). Catastrophic outcomes are out of band: they latch the
//! kernel's [`CrashLatch`](crate::crash::CrashLatch), which the executor
//! checks before believing any return value.

use serde::{Deserialize, Serialize};
use sim_core::fault::Fault;
use std::fmt;

/// Win32 structured-exception codes observed by the paper's harness.
pub mod seh {
    /// `EXCEPTION_ACCESS_VIOLATION`.
    pub const ACCESS_VIOLATION: u32 = 0xC000_0005;
    /// `EXCEPTION_DATATYPE_MISALIGNMENT`.
    pub const DATATYPE_MISALIGNMENT: u32 = 0x8000_0002;
    /// `EXCEPTION_STACK_OVERFLOW`.
    pub const STACK_OVERFLOW: u32 = 0xC000_00FD;
    /// `EXCEPTION_INT_DIVIDE_BY_ZERO`.
    pub const INT_DIVIDE_BY_ZERO: u32 = 0xC000_0094;
    /// `EXCEPTION_GUARD_PAGE`.
    pub const GUARD_PAGE: u32 = 0x8000_0001;
    /// `EXCEPTION_FLT_INVALID_OPERATION` (unmasked x87 invalid-operation —
    /// how MSVCRT-era math domain errors surface).
    pub const FLT_INVALID_OPERATION: u32 = 0xC000_0090;
    /// `EXCEPTION_FLT_DIVIDE_BY_ZERO`.
    pub const FLT_DIVIDE_BY_ZERO: u32 = 0xC000_008E;
    /// `EXCEPTION_FLT_OVERFLOW`.
    pub const FLT_OVERFLOW: u32 = 0xC000_0091;
}

/// POSIX signal numbers the paper's harness monitored.
pub mod sig {
    /// `SIGBUS` (misalignment on real hardware).
    pub const SIGBUS: u32 = 7;
    /// `SIGFPE`.
    pub const SIGFPE: u32 = 8;
    /// `SIGSEGV`.
    pub const SIGSEGV: u32 = 11;
}

/// A call that returned to the application.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ApiReturn {
    /// The raw return value (cast to the call's return type by the caller).
    pub value: i64,
    /// Error code reported through the personality's side channel
    /// (`errno` / `GetLastError`), when the call set one.
    pub error: Option<u32>,
}

impl ApiReturn {
    /// A successful return with `value` and no error indication.
    #[must_use]
    pub fn ok(value: i64) -> Self {
        ApiReturn { value, error: None }
    }

    /// An error return: `value` plus a reported error code.
    #[must_use]
    pub fn err(value: i64, code: u32) -> Self {
        ApiReturn {
            value,
            error: Some(code),
        }
    }

    /// Whether an error was reported through the side channel.
    #[must_use]
    pub fn reported_error(&self) -> bool {
        self.error.is_some()
    }
}

/// A call that did not return normally.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ApiAbort {
    /// The task died on a signal (POSIX personality).
    Signal {
        /// Signal number (see [`sig`]).
        signo: u32,
        /// The machine fault behind it, when there was one.
        fault: Option<Fault>,
    },
    /// The task died on a structured exception (Win32 personality).
    Exception {
        /// SEH code (see [`seh`]).
        code: u32,
        /// The machine fault behind it, when there was one.
        fault: Option<Fault>,
    },
    /// The call never returns (unsatisfiable infinite wait).
    Hang,
}

impl ApiAbort {
    /// Translates a machine fault into the POSIX signal the paper's harness
    /// would have observed.
    #[must_use]
    pub fn signal_from_fault(fault: Fault) -> Self {
        let signo = match fault {
            Fault::Misalignment { .. } => sig::SIGBUS,
            Fault::DivideByZero => sig::SIGFPE,
            _ => sig::SIGSEGV,
        };
        ApiAbort::Signal {
            signo,
            fault: Some(fault),
        }
    }

    /// Translates a machine fault into the Win32 structured exception the
    /// paper's harness intercepted.
    #[must_use]
    pub fn exception_from_fault(fault: Fault) -> Self {
        let code = match fault {
            Fault::Misalignment { .. } => seh::DATATYPE_MISALIGNMENT,
            Fault::StackOverflow => seh::STACK_OVERFLOW,
            Fault::DivideByZero => seh::INT_DIVIDE_BY_ZERO,
            Fault::GuardPage { .. } => seh::GUARD_PAGE,
            Fault::AccessViolation { .. } => seh::ACCESS_VIOLATION,
        };
        ApiAbort::Exception {
            code,
            fault: Some(fault),
        }
    }

    /// Whether this is a hang (Restart failure) rather than a termination
    /// (Abort failure).
    #[must_use]
    pub fn is_hang(&self) -> bool {
        matches!(self, ApiAbort::Hang)
    }
}

impl fmt::Display for ApiAbort {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ApiAbort::Signal { signo, .. } => write!(f, "terminated by signal {signo}"),
            ApiAbort::Exception { code, .. } => {
                write!(f, "unhandled structured exception 0x{code:08X}")
            }
            ApiAbort::Hang => f.write_str("call hangs forever"),
        }
    }
}

impl std::error::Error for ApiAbort {}

/// What every simulated API entry point returns.
pub type ApiResult = Result<ApiReturn, ApiAbort>;

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::addr::PrivilegeLevel;
    use sim_core::fault::{AccessKind, ViolationCause};

    fn av() -> Fault {
        Fault::AccessViolation {
            addr: 0x10,
            access: AccessKind::Read,
            cause: ViolationCause::Unmapped,
            privilege: PrivilegeLevel::User,
        }
    }

    #[test]
    fn fault_to_signal_mapping() {
        assert!(matches!(
            ApiAbort::signal_from_fault(av()),
            ApiAbort::Signal {
                signo: sig::SIGSEGV,
                ..
            }
        ));
        assert!(matches!(
            ApiAbort::signal_from_fault(Fault::DivideByZero),
            ApiAbort::Signal {
                signo: sig::SIGFPE,
                ..
            }
        ));
        assert!(matches!(
            ApiAbort::signal_from_fault(Fault::Misalignment {
                addr: 1,
                required: 4,
                privilege: PrivilegeLevel::User
            }),
            ApiAbort::Signal {
                signo: sig::SIGBUS,
                ..
            }
        ));
    }

    #[test]
    fn fault_to_seh_mapping() {
        assert!(matches!(
            ApiAbort::exception_from_fault(av()),
            ApiAbort::Exception {
                code: seh::ACCESS_VIOLATION,
                ..
            }
        ));
        assert!(matches!(
            ApiAbort::exception_from_fault(Fault::StackOverflow),
            ApiAbort::Exception {
                code: seh::STACK_OVERFLOW,
                ..
            }
        ));
    }

    #[test]
    fn returns_and_errors() {
        assert!(!ApiReturn::ok(5).reported_error());
        let e = ApiReturn::err(-1, 22);
        assert!(e.reported_error());
        assert_eq!(e.value, -1);
    }

    #[test]
    fn hang_detection_and_display() {
        assert!(ApiAbort::Hang.is_hang());
        assert!(!ApiAbort::exception_from_fault(av()).is_hang());
        assert!(ApiAbort::Hang.to_string().contains("hang"));
        assert!(ApiAbort::exception_from_fault(av())
            .to_string()
            .contains("C0000005"));
    }
}
