//! Processes, threads and register contexts.
//!
//! The process table is deliberately simple: robustness testing needs
//! process *identity* (pids/tids, parents, exit codes, wait semantics) and
//! thread *register contexts* (the `CONTEXT` block `GetThreadContext`
//! copies), not an instruction-level scheduler. Children spawned by
//! `CreateProcess`/`fork` exist as records that can be queried, waited on
//! and terminated.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Lifecycle state of a simulated process or thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RunState {
    /// Runnable.
    Running,
    /// Suspended (positive suspend count).
    Suspended,
    /// Finished with an exit code.
    Exited(u32),
}

/// A simulated x86-style register context — the payload of
/// `GetThreadContext` / `SetThreadContext`.
///
/// The real `CONTEXT` structure is several hundred bytes; the simulated one
/// keeps the integer register file plus control registers, which is enough
/// for the robustness behaviour (what matters is *where the kernel writes
/// it*, not what is in it).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
#[allow(missing_docs)] // register names are self-describing
pub struct ThreadContext {
    pub eax: u32,
    pub ebx: u32,
    pub ecx: u32,
    pub edx: u32,
    pub esi: u32,
    pub edi: u32,
    pub ebp: u32,
    pub esp: u32,
    pub eip: u32,
    pub eflags: u32,
    pub seg_cs: u32,
    pub seg_ds: u32,
    pub seg_es: u32,
    pub seg_fs: u32,
    pub seg_gs: u32,
    pub seg_ss: u32,
}

impl ThreadContext {
    /// Number of 32-bit fields serialized to user memory.
    pub const FIELD_COUNT: usize = 16;

    /// Size in bytes of the serialized context.
    pub const SIZE: u64 = (Self::FIELD_COUNT as u64) * 4;

    /// The context fields in serialization order.
    #[must_use]
    pub fn fields(&self) -> [u32; Self::FIELD_COUNT] {
        [
            self.eax, self.ebx, self.ecx, self.edx, self.esi, self.edi, self.ebp, self.esp,
            self.eip, self.eflags, self.seg_cs, self.seg_ds, self.seg_es, self.seg_fs,
            self.seg_gs, self.seg_ss,
        ]
    }

    /// Rebuilds a context from serialized fields.
    #[must_use]
    pub fn from_fields(f: [u32; Self::FIELD_COUNT]) -> Self {
        ThreadContext {
            eax: f[0],
            ebx: f[1],
            ecx: f[2],
            edx: f[3],
            esi: f[4],
            edi: f[5],
            ebp: f[6],
            esp: f[7],
            eip: f[8],
            eflags: f[9],
            seg_cs: f[10],
            seg_ds: f[11],
            seg_es: f[12],
            seg_fs: f[13],
            seg_gs: f[14],
            seg_ss: f[15],
        }
    }
}

/// A simulated thread.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Thread {
    /// Thread id.
    pub tid: u32,
    /// Owning process id.
    pub pid: u32,
    /// Scheduling state.
    pub state: RunState,
    /// Suspend count (`SuspendThread` nests).
    pub suspend_count: u32,
    /// Register context.
    pub context: ThreadContext,
    /// Scheduling priority.
    pub priority: i32,
}

/// A simulated process.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Process {
    /// Process id.
    pub pid: u32,
    /// Parent process id (0 for the initial process).
    pub parent: u32,
    /// Image name ("command line" of the simulated program).
    pub image: String,
    /// Lifecycle state.
    pub state: RunState,
    /// Thread ids belonging to this process.
    pub threads: Vec<u32>,
    /// Whether the parent has already waited on this (zombie reaping).
    pub reaped: bool,
}

/// Error vocabulary for process-table operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ProcessError {
    /// No such process.
    NoProcess,
    /// No such thread.
    NoThread,
    /// No waitable children.
    NoChildren,
    /// The target has already exited.
    AlreadyExited,
    /// Invalid argument (bad priority, bad flags…).
    InvalidArgument,
}

impl fmt::Display for ProcessError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ProcessError::NoProcess => "no such process",
            ProcessError::NoThread => "no such thread",
            ProcessError::NoChildren => "no waitable children",
            ProcessError::AlreadyExited => "process has already exited",
            ProcessError::InvalidArgument => "invalid argument",
        };
        f.write_str(s)
    }
}

impl std::error::Error for ProcessError {}

/// The process/thread table. One exists per [`Kernel`](crate::Kernel); the
/// "current" process (pid from [`ProcessTable::current_pid`]) is the
/// simulated program Ballista is driving.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ProcessTable {
    processes: Vec<Process>,
    threads: Vec<Thread>,
    next_pid: u32,
    next_tid: u32,
    current_pid: u32,
    current_tid: u32,
    /// Structural-mutation counter for the snapshot layer (see
    /// `FileSystem::generation` for the protocol). [`ProcessTable::thread_mut`]
    /// bumps conservatively — the caller holds `&mut Thread`.
    #[serde(default)]
    gen: u64,
}

/// Equality covers the tables and id cursors, not the mutation counter.
impl PartialEq for ProcessTable {
    fn eq(&self, other: &Self) -> bool {
        self.processes == other.processes
            && self.threads == other.threads
            && self.next_pid == other.next_pid
            && self.next_tid == other.next_tid
            && self.current_pid == other.current_pid
            && self.current_tid == other.current_tid
    }
}

impl Eq for ProcessTable {}

impl Default for ProcessTable {
    fn default() -> Self {
        Self::new()
    }
}

impl ProcessTable {
    /// Creates a table holding the initial process (pid 100) with one
    /// thread (tid 200).
    #[must_use]
    pub fn new() -> Self {
        let mut t = ProcessTable {
            processes: Vec::new(),
            threads: Vec::new(),
            next_pid: 100,
            next_tid: 200,
            current_pid: 0,
            current_tid: 0,
            gen: 0,
        };
        let pid = t.spawn_process(0, "init-test-task");
        t.current_pid = pid;
        t.current_tid = t.process(pid).expect("just spawned").threads[0];
        t
    }

    /// Current structural generation (see `FileSystem::generation`).
    #[must_use]
    pub fn generation(&self) -> u64 {
        self.gen
    }

    fn touch(&mut self) {
        self.gen = self.gen.wrapping_add(1);
    }

    /// Pid of the simulated program under test.
    #[must_use]
    pub fn current_pid(&self) -> u32 {
        self.current_pid
    }

    /// Tid of the simulated program's main thread.
    #[must_use]
    pub fn current_tid(&self) -> u32 {
        self.current_tid
    }

    /// Spawns a process (with one initial thread) and returns its pid.
    pub fn spawn_process(&mut self, parent: u32, image: &str) -> u32 {
        self.touch();
        let pid = self.next_pid;
        self.next_pid += 1;
        let tid = self.spawn_thread_raw(pid);
        self.processes.push(Process {
            pid,
            parent,
            image: image.to_owned(),
            state: RunState::Running,
            threads: vec![tid],
            reaped: false,
        });
        pid
    }

    fn spawn_thread_raw(&mut self, pid: u32) -> u32 {
        let tid = self.next_tid;
        self.next_tid += 1;
        self.threads.push(Thread {
            tid,
            pid,
            state: RunState::Running,
            suspend_count: 0,
            context: ThreadContext {
                eip: 0x0040_1000,
                esp: 0x0012_F000,
                ..ThreadContext::default()
            },
            priority: 0,
        });
        tid
    }

    /// Spawns a new thread in `pid`, returning its tid.
    ///
    /// # Errors
    ///
    /// [`ProcessError::NoProcess`] for dead or unknown pids.
    pub fn spawn_thread(&mut self, pid: u32) -> Result<u32, ProcessError> {
        self.touch();
        let idx = self
            .processes
            .iter()
            .position(|p| p.pid == pid && !matches!(p.state, RunState::Exited(_)))
            .ok_or(ProcessError::NoProcess)?;
        let tid = self.spawn_thread_raw(pid);
        self.processes[idx].threads.push(tid);
        Ok(tid)
    }

    /// Looks up a process.
    ///
    /// # Errors
    ///
    /// [`ProcessError::NoProcess`].
    pub fn process(&self, pid: u32) -> Result<&Process, ProcessError> {
        self.processes
            .iter()
            .find(|p| p.pid == pid)
            .ok_or(ProcessError::NoProcess)
    }

    /// Looks up a thread.
    ///
    /// # Errors
    ///
    /// [`ProcessError::NoThread`].
    pub fn thread(&self, tid: u32) -> Result<&Thread, ProcessError> {
        self.threads
            .iter()
            .find(|t| t.tid == tid)
            .ok_or(ProcessError::NoThread)
    }

    /// Looks up a thread mutably.
    ///
    /// # Errors
    ///
    /// [`ProcessError::NoThread`].
    pub fn thread_mut(&mut self, tid: u32) -> Result<&mut Thread, ProcessError> {
        self.touch();
        self.threads
            .iter_mut()
            .find(|t| t.tid == tid)
            .ok_or(ProcessError::NoThread)
    }

    /// Terminates a process with `exit_code` (also exits its threads).
    ///
    /// # Errors
    ///
    /// [`ProcessError::NoProcess`] / [`ProcessError::AlreadyExited`].
    pub fn terminate(&mut self, pid: u32, exit_code: u32) -> Result<(), ProcessError> {
        self.touch();
        let p = self
            .processes
            .iter_mut()
            .find(|p| p.pid == pid)
            .ok_or(ProcessError::NoProcess)?;
        if matches!(p.state, RunState::Exited(_)) {
            return Err(ProcessError::AlreadyExited);
        }
        p.state = RunState::Exited(exit_code);
        let tids = p.threads.clone();
        for tid in tids {
            if let Ok(t) = self.thread_mut(tid) {
                t.state = RunState::Exited(exit_code);
            }
        }
        Ok(())
    }

    /// Suspends a thread, returning the *previous* suspend count (as
    /// `SuspendThread` does).
    ///
    /// # Errors
    ///
    /// [`ProcessError::NoThread`] / [`ProcessError::AlreadyExited`].
    pub fn suspend_thread(&mut self, tid: u32) -> Result<u32, ProcessError> {
        let t = self.thread_mut(tid)?;
        if matches!(t.state, RunState::Exited(_)) {
            return Err(ProcessError::AlreadyExited);
        }
        let prev = t.suspend_count;
        t.suspend_count += 1;
        t.state = RunState::Suspended;
        Ok(prev)
    }

    /// Resumes a thread, returning the *previous* suspend count.
    ///
    /// # Errors
    ///
    /// [`ProcessError::NoThread`] / [`ProcessError::AlreadyExited`].
    pub fn resume_thread(&mut self, tid: u32) -> Result<u32, ProcessError> {
        let t = self.thread_mut(tid)?;
        if matches!(t.state, RunState::Exited(_)) {
            return Err(ProcessError::AlreadyExited);
        }
        let prev = t.suspend_count;
        if t.suspend_count > 0 {
            t.suspend_count -= 1;
        }
        if t.suspend_count == 0 {
            t.state = RunState::Running;
        }
        Ok(prev)
    }

    /// Reaps one exited, unreaped child of `parent` (the `waitpid(-1,
    /// WNOHANG)` building block). Returns `(pid, exit_code)`, or `Ok(None)`
    /// when children exist but none has exited.
    ///
    /// # Errors
    ///
    /// [`ProcessError::NoChildren`] when `parent` has no unreaped children
    /// at all (POSIX `ECHILD`).
    pub fn reap_child(&mut self, parent: u32) -> Result<Option<(u32, u32)>, ProcessError> {
        self.touch();
        let mut has_children = false;
        for p in &mut self.processes {
            if p.parent == parent && !p.reaped {
                has_children = true;
                if let RunState::Exited(code) = p.state {
                    p.reaped = true;
                    return Ok(Some((p.pid, code)));
                }
            }
        }
        if has_children {
            Ok(None)
        } else {
            Err(ProcessError::NoChildren)
        }
    }

    /// All live pids, ascending.
    #[must_use]
    pub fn live_pids(&self) -> Vec<u32> {
        self.processes
            .iter()
            .filter(|p| !matches!(p.state, RunState::Exited(_)))
            .map(|p| p.pid)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_process_exists() {
        let t = ProcessTable::new();
        let p = t.process(t.current_pid()).unwrap();
        assert_eq!(p.parent, 0);
        assert_eq!(p.threads.len(), 1);
        assert_eq!(p.threads[0], t.current_tid());
    }

    #[test]
    fn spawn_and_terminate() {
        let mut t = ProcessTable::new();
        let child = t.spawn_process(t.current_pid(), "child.exe");
        assert!(t.live_pids().contains(&child));
        t.terminate(child, 3).unwrap();
        assert!(!t.live_pids().contains(&child));
        assert_eq!(t.terminate(child, 0).unwrap_err(), ProcessError::AlreadyExited);
        assert_eq!(t.terminate(9999, 0).unwrap_err(), ProcessError::NoProcess);
    }

    #[test]
    fn thread_spawn_in_dead_process_fails() {
        let mut t = ProcessTable::new();
        let child = t.spawn_process(t.current_pid(), "c");
        t.terminate(child, 0).unwrap();
        assert_eq!(t.spawn_thread(child).unwrap_err(), ProcessError::NoProcess);
    }

    #[test]
    fn suspend_resume_counts() {
        let mut t = ProcessTable::new();
        let tid = t.current_tid();
        assert_eq!(t.suspend_thread(tid).unwrap(), 0);
        assert_eq!(t.suspend_thread(tid).unwrap(), 1);
        assert_eq!(t.thread(tid).unwrap().state, RunState::Suspended);
        assert_eq!(t.resume_thread(tid).unwrap(), 2);
        assert_eq!(t.resume_thread(tid).unwrap(), 1);
        assert_eq!(t.thread(tid).unwrap().state, RunState::Running);
        // Resuming a running thread reports previous count 0 and stays put.
        assert_eq!(t.resume_thread(tid).unwrap(), 0);
    }

    #[test]
    fn reap_children() {
        let mut t = ProcessTable::new();
        let me = t.current_pid();
        assert_eq!(t.reap_child(me).unwrap_err(), ProcessError::NoChildren);
        let a = t.spawn_process(me, "a");
        let b = t.spawn_process(me, "b");
        assert_eq!(t.reap_child(me).unwrap(), None); // alive, none exited
        t.terminate(b, 7).unwrap();
        assert_eq!(t.reap_child(me).unwrap(), Some((b, 7)));
        assert_eq!(t.reap_child(me).unwrap(), None); // b reaped, a alive
        t.terminate(a, 1).unwrap();
        assert_eq!(t.reap_child(me).unwrap(), Some((a, 1)));
        assert_eq!(t.reap_child(me).unwrap_err(), ProcessError::NoChildren);
    }

    #[test]
    fn context_roundtrip() {
        let ctx = ThreadContext {
            eax: 1,
            esp: 0xFF00,
            eflags: 0x202,
            ..ThreadContext::default()
        };
        assert_eq!(ThreadContext::from_fields(ctx.fields()), ctx);
        assert_eq!(ThreadContext::SIZE, 64);
    }

    #[test]
    fn fresh_thread_has_plausible_context() {
        let t = ProcessTable::new();
        let ctx = t.thread(t.current_tid()).unwrap().context;
        assert_ne!(ctx.eip, 0);
        assert_ne!(ctx.esp, 0);
    }
}
