//! The kernel-panic latch: how *Catastrophic* failures are recorded.
//!
//! On real Windows 9x, a kernel-mode write through an unvalidated user
//! pointer scribbles over kernel structures and the machine dies (or hangs,
//! or triple-faults). The simulator can't lose control of the host, so the
//! moment of no return is recorded instead: once [`CrashLatch::panic`] fires,
//! the simulated system is dead — every later inspection sees the crash and
//! the Ballista executor classifies the test case as **Catastrophic**.

use serde::{Deserialize, Serialize};
use sim_core::fault::Fault;
use std::fmt;

/// What killed the simulated system.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CrashInfo {
    /// The API call executing when the system died.
    pub call: String,
    /// Human-readable description of the death (e.g. the kernel fault).
    pub reason: String,
    /// The underlying machine fault, when the crash came from one.
    pub fault: Option<Fault>,
}

impl fmt::Display for CrashInfo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "system crash in {}: {}", self.call, self.reason)
    }
}

/// One-way latch recording whether the simulated system has crashed.
///
/// # Example
///
/// ```
/// use sim_kernel::crash::CrashLatch;
///
/// let mut latch = CrashLatch::new();
/// assert!(latch.is_alive());
/// latch.panic("GetThreadContext", "kernel write through NULL context pointer", None);
/// assert!(!latch.is_alive());
/// assert!(latch.info().unwrap().reason.contains("NULL"));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CrashLatch {
    info: Option<CrashInfo>,
}

impl CrashLatch {
    /// A latch in the "system running" state.
    #[must_use]
    pub fn new() -> Self {
        CrashLatch::default()
    }

    /// Whether the simulated system is still running.
    #[must_use]
    pub fn is_alive(&self) -> bool {
        self.info.is_none()
    }

    /// Kills the simulated system. The first crash wins; later panics on an
    /// already-dead system are ignored (the machine can only die once).
    pub fn panic(&mut self, call: &str, reason: &str, fault: Option<Fault>) {
        if self.info.is_none() {
            self.info = Some(CrashInfo {
                call: call.to_owned(),
                reason: reason.to_owned(),
                fault,
            });
        }
    }

    /// Crash details, if the system has died.
    #[must_use]
    pub fn info(&self) -> Option<&CrashInfo> {
        self.info.as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_core::addr::PrivilegeLevel;
    use sim_core::fault::{AccessKind, ViolationCause};

    #[test]
    fn fresh_latch_is_alive() {
        assert!(CrashLatch::new().is_alive());
        assert!(CrashLatch::default().info().is_none());
    }

    #[test]
    fn panic_latches() {
        let mut latch = CrashLatch::new();
        latch.panic("HeapCreate", "unchecked size wrapped allocator", None);
        assert!(!latch.is_alive());
        assert_eq!(latch.info().unwrap().call, "HeapCreate");
    }

    #[test]
    fn first_crash_wins() {
        let mut latch = CrashLatch::new();
        latch.panic("first", "a", None);
        latch.panic("second", "b", None);
        assert_eq!(latch.info().unwrap().call, "first");
    }

    #[test]
    fn crash_with_fault_keeps_fault() {
        let mut latch = CrashLatch::new();
        let fault = Fault::AccessViolation {
            addr: 0,
            access: AccessKind::Write,
            cause: ViolationCause::Unmapped,
            privilege: PrivilegeLevel::Kernel,
        };
        latch.panic("GetThreadContext", "kernel fault", Some(fault));
        assert_eq!(latch.info().unwrap().fault, Some(fault));
        assert!(latch.info().unwrap().to_string().contains("GetThreadContext"));
    }
}
