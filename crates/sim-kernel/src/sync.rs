//! Synchronization objects and waits, with hang detection.
//!
//! The paper's **Restart** failures are tasks that never return from a call.
//! In a single-threaded simulation nothing can signal an object while the
//! test case is blocked, so the rule is exact: *a wait that cannot be
//! satisfied immediately and has an infinite timeout will never return* —
//! the kernel reports it as [`WaitOutcome::Hang`] and the harness classifies
//! the test case as Restart, precisely what the paper's watchdog did.

use serde::{Deserialize, Serialize};

/// Timeout value meaning "wait forever" (`INFINITE` / no `timespec`).
pub const INFINITE: u32 = u32::MAX;

/// Which flavour of waitable object a [`SyncState`] drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SyncKind {
    /// Event: signaled/unsignaled, manual- or auto-reset.
    Event,
    /// Mutex: owned by at most one thread, re-entrant for the owner.
    Mutex,
    /// Semaphore: counted.
    Semaphore,
}

/// State carried by an event, mutex or semaphore object.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SyncState {
    /// Object flavour.
    pub kind: SyncKind,
    /// Signaled right now? (Events; derived for the other kinds.)
    pub signaled: bool,
    /// Events: manual-reset (stays signaled) vs auto-reset.
    pub manual_reset: bool,
    /// Semaphores: current count. Mutexes: recursion count.
    pub count: u32,
    /// Semaphores: maximum count.
    pub max_count: u32,
    /// Mutexes: owning thread id, 0 = unowned.
    pub owner: u32,
    /// Mutexes: abandoned by a terminated owner.
    pub abandoned: bool,
}

impl SyncState {
    /// State for a new event.
    #[must_use]
    pub fn event(manual_reset: bool, initially_signaled: bool) -> Self {
        SyncState {
            kind: SyncKind::Event,
            signaled: initially_signaled,
            manual_reset,
            count: 0,
            max_count: 0,
            owner: 0,
            abandoned: false,
        }
    }

    /// State for a new mutex; `initially_owned_by` of 0 means unowned.
    #[must_use]
    pub fn mutex(initially_owned_by: u32) -> Self {
        SyncState {
            kind: SyncKind::Mutex,
            signaled: initially_owned_by == 0,
            manual_reset: false,
            count: u32::from(initially_owned_by != 0),
            max_count: 0,
            owner: initially_owned_by,
            abandoned: false,
        }
    }

    /// State for a new semaphore.
    #[must_use]
    pub fn semaphore(initial: u32, max: u32) -> Self {
        SyncState {
            kind: SyncKind::Semaphore,
            signaled: initial > 0,
            manual_reset: false,
            count: initial,
            max_count: max,
            owner: 0,
            abandoned: false,
        }
    }

    /// Attempts to acquire/consume the object for thread `tid`. Returns
    /// `true` when the wait would be satisfied, applying the usual
    /// side-effects (auto-reset events clear; semaphores decrement; mutexes
    /// recurse for the owner).
    pub fn try_acquire(&mut self, tid: u32) -> bool {
        match self.kind {
            SyncKind::Event => {
                if self.signaled {
                    if !self.manual_reset {
                        self.signaled = false;
                    }
                    true
                } else {
                    false
                }
            }
            SyncKind::Mutex => {
                if self.owner == tid && self.count > 0 {
                    self.count += 1;
                    true
                } else if self.owner == 0 {
                    self.owner = tid;
                    self.count = 1;
                    self.signaled = false;
                    true
                } else {
                    false
                }
            }
            SyncKind::Semaphore => {
                if self.count > 0 {
                    self.count -= 1;
                    self.signaled = self.count > 0;
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Signals the object (`SetEvent` / `ReleaseMutex` / `ReleaseSemaphore`).
    ///
    /// For mutexes, one `signal` undoes one level of recursion; the object
    /// becomes free when the count reaches zero.
    pub fn signal(&mut self) {
        match self.kind {
            SyncKind::Event => self.signaled = true,
            SyncKind::Mutex => {
                if self.count > 0 {
                    self.count -= 1;
                    if self.count == 0 {
                        self.owner = 0;
                        self.signaled = true;
                    }
                }
            }
            SyncKind::Semaphore => {
                if self.count < self.max_count {
                    self.count += 1;
                }
                self.signaled = self.count > 0;
            }
        }
    }

    /// Resets an event to unsignaled (`ResetEvent`). No effect on other
    /// kinds.
    pub fn reset(&mut self) {
        if self.kind == SyncKind::Event {
            self.signaled = false;
        }
    }
}

/// Result of a (possibly multi-object) wait.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WaitOutcome {
    /// Object `index` satisfied the wait.
    Signaled(usize),
    /// The wait timed out.
    Timeout,
    /// A mutex in the set was abandoned by its owner; `index` names it.
    Abandoned(usize),
    /// The wait can never be satisfied and the timeout is infinite — the
    /// calling task hangs forever (a **Restart** failure on the CRASH
    /// scale).
    Hang,
}

/// Evaluates a wait over `objects` (wait-any semantics, as in
/// `WaitForMultipleObjects(..., FALSE, ...)`).
///
/// In the single-threaded simulation no third party can signal an object
/// once the caller blocks, so an unsatisfiable wait either times out (finite
/// timeout) or hangs (infinite timeout).
pub fn wait_any(objects: &mut [&mut SyncState], tid: u32, timeout_ms: u32) -> WaitOutcome {
    for (i, obj) in objects.iter_mut().enumerate() {
        if obj.abandoned {
            obj.abandoned = false;
            obj.owner = tid;
            return WaitOutcome::Abandoned(i);
        }
    }
    for (i, obj) in objects.iter_mut().enumerate() {
        if obj.try_acquire(tid) {
            return WaitOutcome::Signaled(i);
        }
    }
    if timeout_ms == INFINITE {
        WaitOutcome::Hang
    } else {
        WaitOutcome::Timeout
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn auto_reset_event_consumed_once() {
        let mut e = SyncState::event(false, true);
        assert!(e.try_acquire(1));
        assert!(!e.try_acquire(1));
        e.signal();
        assert!(e.try_acquire(2));
    }

    #[test]
    fn manual_reset_event_stays_signaled() {
        let mut e = SyncState::event(true, true);
        assert!(e.try_acquire(1));
        assert!(e.try_acquire(2));
        e.reset();
        assert!(!e.try_acquire(1));
    }

    #[test]
    fn semaphore_counts_down() {
        let mut s = SyncState::semaphore(2, 5);
        assert!(s.try_acquire(1));
        assert!(s.try_acquire(1));
        assert!(!s.try_acquire(1));
        s.signal();
        assert!(s.try_acquire(1));
    }

    #[test]
    fn semaphore_respects_max() {
        let mut s = SyncState::semaphore(0, 1);
        s.signal();
        s.signal(); // saturates at max
        assert!(s.try_acquire(1));
        assert!(!s.try_acquire(1));
    }

    #[test]
    fn mutex_reentrant_for_owner_blocked_for_others() {
        let mut m = SyncState::mutex(0);
        assert!(m.try_acquire(1));
        assert!(m.try_acquire(1)); // recursion
        assert!(!m.try_acquire(2));
        m.signal();
        assert!(!m.try_acquire(2)); // still held once
        m.signal();
        assert!(m.try_acquire(2)); // released
    }

    #[test]
    fn initially_owned_mutex() {
        let mut m = SyncState::mutex(7);
        assert!(!m.try_acquire(2));
        assert!(m.try_acquire(7)); // owner recursion
    }

    #[test]
    fn wait_any_signaled_index() {
        let mut a = SyncState::event(false, false);
        let mut b = SyncState::event(false, true);
        let outcome = wait_any(&mut [&mut a, &mut b], 1, 100);
        assert_eq!(outcome, WaitOutcome::Signaled(1));
    }

    #[test]
    fn unsatisfiable_finite_wait_times_out() {
        let mut a = SyncState::event(false, false);
        assert_eq!(wait_any(&mut [&mut a], 1, 50), WaitOutcome::Timeout);
    }

    #[test]
    fn unsatisfiable_infinite_wait_hangs() {
        let mut a = SyncState::event(false, false);
        assert_eq!(wait_any(&mut [&mut a], 1, INFINITE), WaitOutcome::Hang);
    }

    #[test]
    fn abandoned_mutex_reported_then_owned() {
        let mut m = SyncState::mutex(9);
        m.abandoned = true;
        assert_eq!(wait_any(&mut [&mut m], 3, 0), WaitOutcome::Abandoned(0));
        assert_eq!(m.owner, 3);
        assert!(!m.abandoned);
    }

    #[test]
    fn empty_wait_set_hangs_on_infinite() {
        assert_eq!(wait_any(&mut [], 1, INFINITE), WaitOutcome::Hang);
        assert_eq!(wait_any(&mut [], 1, 10), WaitOutcome::Timeout);
    }
}
