//! The seven operating-system targets of the paper.
//!
//! [`OsVariant`] is the shared vocabulary between the kernel substrate, the
//! C-library and API personalities, the Ballista harness and the report
//! layer: Windows 95 revision B, Windows 98 (SP1), Windows 98 Second
//! Edition, Windows NT 4.0 Workstation (SP5), Windows 2000 Professional
//! (Beta 3), Windows CE 2.11, and RedHat Linux 6.0 — the exact systems
//! Table 1 of the paper covers.

use crate::kernel::MachineFlavor;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One of the seven operating systems under test.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum OsVariant {
    /// RedHat Linux 6.0, kernel 2.2.5, glibc 2.1.
    Linux,
    /// Windows 95 revision B.
    Win95,
    /// Windows 98 with Service Pack 1.
    Win98,
    /// Windows 98 Second Edition.
    Win98Se,
    /// Windows NT 4.0 Workstation, Service Pack 5.
    WinNt4,
    /// Windows 2000 Professional, Beta 3 (Build 2031).
    Win2000,
    /// Windows CE 2.11 (HP Jornada 820).
    WinCe,
}

impl OsVariant {
    /// All seven variants, in the paper's table order.
    pub const ALL: [OsVariant; 7] = [
        OsVariant::Linux,
        OsVariant::Win95,
        OsVariant::Win98,
        OsVariant::Win98Se,
        OsVariant::WinNt4,
        OsVariant::Win2000,
        OsVariant::WinCe,
    ];

    /// The five desktop Windows variants (the Figure 2 voting set).
    pub const DESKTOP_WINDOWS: [OsVariant; 5] = [
        OsVariant::Win95,
        OsVariant::Win98,
        OsVariant::Win98Se,
        OsVariant::WinNt4,
        OsVariant::Win2000,
    ];

    /// Whether this is any Windows flavour.
    #[must_use]
    pub fn is_windows(self) -> bool {
        self != OsVariant::Linux
    }

    /// The consumer Windows 95/98/98 SE family.
    #[must_use]
    pub fn is_9x(self) -> bool {
        matches!(self, OsVariant::Win95 | OsVariant::Win98 | OsVariant::Win98Se)
    }

    /// The NT-kernel family (NT 4.0 and 2000).
    #[must_use]
    pub fn is_nt(self) -> bool {
        matches!(self, OsVariant::WinNt4 | OsVariant::Win2000)
    }

    /// Windows CE.
    #[must_use]
    pub fn is_ce(self) -> bool {
        self == OsVariant::WinCe
    }

    /// The machine flavour (path rules + alignment strictness) this OS ran
    /// on in the paper's testbed.
    #[must_use]
    pub fn machine_flavor(self) -> MachineFlavor {
        match self {
            OsVariant::Linux => MachineFlavor::Posix,
            OsVariant::WinCe => MachineFlavor::WindowsStrictAlign,
            _ => MachineFlavor::Windows,
        }
    }

    /// Short identifier used in reports and CSV output.
    #[must_use]
    pub fn short_name(self) -> &'static str {
        match self {
            OsVariant::Linux => "linux",
            OsVariant::Win95 => "win95",
            OsVariant::Win98 => "win98",
            OsVariant::Win98Se => "win98se",
            OsVariant::WinNt4 => "winnt",
            OsVariant::Win2000 => "win2000",
            OsVariant::WinCe => "wince",
        }
    }

    /// Inverse of [`OsVariant::short_name`]: resolves a short
    /// identifier (as used in reports, CSV output and CLI flags) back
    /// to its variant. `None` for anything that is not exactly a short
    /// name.
    #[must_use]
    pub fn from_short_name(name: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|v| v.short_name() == name)
    }
}

impl fmt::Display for OsVariant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            OsVariant::Linux => "Linux (RedHat 6.0)",
            OsVariant::Win95 => "Windows 95",
            OsVariant::Win98 => "Windows 98",
            OsVariant::Win98Se => "Windows 98 SE",
            OsVariant::WinNt4 => "Windows NT 4.0",
            OsVariant::Win2000 => "Windows 2000",
            OsVariant::WinCe => "Windows CE 2.11",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn family_predicates_partition_windows() {
        for v in OsVariant::ALL {
            if v.is_windows() {
                assert_eq!(
                    u8::from(v.is_9x()) + u8::from(v.is_nt()) + u8::from(v.is_ce()),
                    1,
                    "{v} must be in exactly one Windows family"
                );
            } else {
                assert!(!v.is_9x() && !v.is_nt() && !v.is_ce());
            }
        }
    }

    #[test]
    fn desktop_windows_excludes_ce_and_linux() {
        assert!(!OsVariant::DESKTOP_WINDOWS.contains(&OsVariant::WinCe));
        assert!(!OsVariant::DESKTOP_WINDOWS.contains(&OsVariant::Linux));
        assert_eq!(OsVariant::DESKTOP_WINDOWS.len(), 5);
    }

    #[test]
    fn flavors() {
        assert_eq!(OsVariant::Linux.machine_flavor(), MachineFlavor::Posix);
        assert_eq!(OsVariant::Win98.machine_flavor(), MachineFlavor::Windows);
        assert_eq!(
            OsVariant::WinCe.machine_flavor(),
            MachineFlavor::WindowsStrictAlign
        );
    }

    #[test]
    fn short_names_unique() {
        let mut names: Vec<_> = OsVariant::ALL.iter().map(|v| v.short_name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 7);
    }
}
