//! Heap managers built on the checked address space.
//!
//! Each heap (the process default heap, heaps from `HeapCreate`, and the C
//! library's `malloc` arena) tracks its own allocations. Every allocation is
//! backed by its own guard-gapped region in the
//! [`AddressSpace`], so off-by-one writes
//! fault exactly as Ballista's "buffer one byte too small" test values
//! require, and frees of pointers the heap never issued are detected rather
//! than corrupting the arena.

use serde::{Deserialize, Serialize};
use sim_core::memory::{AddressSpace, AllocError, Protection};
use sim_core::SimPtr;
use std::collections::BTreeMap;
use std::fmt;

/// Identifier of a heap within a [`HeapManager`].
pub type HeapId = u32;

/// Errors from heap operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum HeapError {
    /// Unknown heap id.
    NoHeap,
    /// Allocation failed (size 0 is allowed and returns a minimal block;
    /// this is address-space exhaustion or a size beyond the heap maximum).
    OutOfMemory,
    /// `free` of a pointer this heap never returned (or already freed).
    NotAllocated,
    /// Degenerate request (e.g. maximum smaller than initial size).
    InvalidArgument,
}

impl fmt::Display for HeapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            HeapError::NoHeap => "no such heap",
            HeapError::OutOfMemory => "out of heap memory",
            HeapError::NotAllocated => "pointer was not allocated by this heap",
            HeapError::InvalidArgument => "invalid heap request",
        };
        f.write_str(s)
    }
}

impl std::error::Error for HeapError {}

#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
struct Heap {
    /// Allocation base → size.
    allocations: BTreeMap<u64, u64>,
    /// Bytes currently allocated.
    in_use: u64,
    /// 0 = growable without bound.
    max_size: u64,
}

/// All heaps of a simulated machine.
///
/// # Example
///
/// ```
/// use sim_kernel::heap::HeapManager;
/// use sim_core::memory::AddressSpace;
///
/// let mut space = AddressSpace::new();
/// let mut heaps = HeapManager::new();
/// let heap = heaps.create(0, 0).unwrap(); // growable
/// let p = heaps.alloc(heap, 64, &mut space).unwrap();
/// space.write_u8(p, 42).unwrap();
/// heaps.free(heap, p, &mut space).unwrap();
/// assert!(space.read_u8(p).is_err()); // dangling now faults
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct HeapManager {
    heaps: BTreeMap<HeapId, Heap>,
    next_id: HeapId,
    /// Structural-mutation counter for the snapshot layer (see
    /// `FileSystem::generation` for the protocol).
    #[serde(default)]
    gen: u64,
}

/// Equality covers the heap table, not the mutation counter.
impl PartialEq for HeapManager {
    fn eq(&self, other: &Self) -> bool {
        self.heaps == other.heaps && self.next_id == other.next_id
    }
}

impl Eq for HeapManager {}

impl HeapManager {
    /// Creates a manager with no heaps. The process default heap is
    /// conventionally the first one created (id 1).
    #[must_use]
    pub fn new() -> Self {
        HeapManager {
            heaps: BTreeMap::new(),
            next_id: 1,
            gen: 0,
        }
    }

    /// Current structural generation (see `FileSystem::generation`).
    #[must_use]
    pub fn generation(&self) -> u64 {
        self.gen
    }

    fn touch(&mut self) {
        self.gen = self.gen.wrapping_add(1);
    }

    /// Creates a heap with `initial` reserved bytes and `max_size` maximum
    /// (0 = growable). Mirrors `HeapCreate(flags, initial, max)`.
    ///
    /// # Errors
    ///
    /// [`HeapError::InvalidArgument`] when `max_size` is nonzero but below
    /// `initial`.
    pub fn create(&mut self, initial: u64, max_size: u64) -> Result<HeapId, HeapError> {
        self.touch();
        if max_size != 0 && max_size < initial {
            return Err(HeapError::InvalidArgument);
        }
        let id = self.next_id;
        self.next_id += 1;
        self.heaps.insert(
            id,
            Heap {
                allocations: BTreeMap::new(),
                in_use: 0,
                max_size,
            },
        );
        Ok(id)
    }

    /// Destroys a heap and frees all its allocations.
    ///
    /// # Errors
    ///
    /// [`HeapError::NoHeap`] for unknown ids.
    pub fn destroy(&mut self, id: HeapId, space: &mut AddressSpace) -> Result<(), HeapError> {
        self.touch();
        let heap = self.heaps.remove(&id).ok_or(HeapError::NoHeap)?;
        for &base in heap.allocations.keys() {
            // Ignore individual failures: the address space may already have
            // been torn down in some shutdown orders.
            let _ = space.unmap(SimPtr::new(base));
        }
        Ok(())
    }

    /// Whether `id` names a live heap.
    #[must_use]
    pub fn exists(&self, id: HeapId) -> bool {
        self.heaps.contains_key(&id)
    }

    /// Allocates `size` bytes (zero-size requests get a minimal 1-byte
    /// block, as both `malloc(0)` and `HeapAlloc(..., 0)` return unique
    /// pointers).
    ///
    /// # Errors
    ///
    /// [`HeapError::NoHeap`] / [`HeapError::OutOfMemory`].
    pub fn alloc(
        &mut self,
        id: HeapId,
        size: u64,
        space: &mut AddressSpace,
    ) -> Result<SimPtr, HeapError> {
        self.touch();
        let heap = self.heaps.get_mut(&id).ok_or(HeapError::NoHeap)?;
        let eff = size.max(1);
        if heap.max_size != 0 && heap.in_use.saturating_add(eff) > heap.max_size {
            return Err(HeapError::OutOfMemory);
        }
        let ptr = space
            .map(eff, Protection::READ_WRITE, "heap-alloc")
            .map_err(|e| match e {
                AllocError::OutOfMemory | AllocError::Collision { .. } => HeapError::OutOfMemory,
                AllocError::BadRequest => HeapError::InvalidArgument,
            })?;
        heap.allocations.insert(ptr.addr(), eff);
        heap.in_use += eff;
        Ok(ptr)
    }

    /// Frees a pointer previously returned by [`HeapManager::alloc`] on the
    /// same heap.
    ///
    /// # Errors
    ///
    /// [`HeapError::NotAllocated`] for foreign, interior or already-freed
    /// pointers — the detection a robust `HeapFree`/`free` performs.
    pub fn free(
        &mut self,
        id: HeapId,
        ptr: SimPtr,
        space: &mut AddressSpace,
    ) -> Result<(), HeapError> {
        self.touch();
        let heap = self.heaps.get_mut(&id).ok_or(HeapError::NoHeap)?;
        let size = heap
            .allocations
            .remove(&ptr.addr())
            .ok_or(HeapError::NotAllocated)?;
        heap.in_use -= size;
        let _ = space.unmap(ptr);
        Ok(())
    }

    /// Size of a live allocation (`HeapSize` / `_msize`).
    ///
    /// # Errors
    ///
    /// [`HeapError::NoHeap`] / [`HeapError::NotAllocated`].
    pub fn size_of(&self, id: HeapId, ptr: SimPtr) -> Result<u64, HeapError> {
        let heap = self.heaps.get(&id).ok_or(HeapError::NoHeap)?;
        heap.allocations
            .get(&ptr.addr())
            .copied()
            .ok_or(HeapError::NotAllocated)
    }

    /// Reallocates to `new_size`, copying the overlapping prefix.
    ///
    /// # Errors
    ///
    /// Same vocabulary as [`HeapManager::alloc`] / [`HeapManager::free`].
    pub fn realloc(
        &mut self,
        id: HeapId,
        ptr: SimPtr,
        new_size: u64,
        space: &mut AddressSpace,
    ) -> Result<SimPtr, HeapError> {
        let old_size = self.size_of(id, ptr)?;
        let new_ptr = self.alloc(id, new_size, space)?;
        let copy = old_size.min(new_size.max(1));
        let bytes = space
            .read_bytes(ptr, copy)
            .map_err(|_| HeapError::NotAllocated)?;
        space
            .write_bytes(new_ptr, &bytes)
            .map_err(|_| HeapError::OutOfMemory)?;
        self.free(id, ptr, space)?;
        Ok(new_ptr)
    }

    /// Bytes currently allocated from heap `id`.
    ///
    /// # Errors
    ///
    /// [`HeapError::NoHeap`] for unknown ids.
    pub fn in_use(&self, id: HeapId) -> Result<u64, HeapError> {
        Ok(self.heaps.get(&id).ok_or(HeapError::NoHeap)?.in_use)
    }

    /// Number of live heaps.
    #[must_use]
    pub fn heap_count(&self) -> usize {
        self.heaps.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (AddressSpace, HeapManager, HeapId) {
        let space = AddressSpace::new();
        let mut heaps = HeapManager::new();
        let id = heaps.create(0, 0).unwrap();
        (space, heaps, id)
    }

    #[test]
    fn alloc_free_roundtrip() {
        let (mut space, mut heaps, id) = setup();
        let p = heaps.alloc(id, 32, &mut space).unwrap();
        space.write_bytes(p, b"12345678").unwrap();
        assert_eq!(heaps.size_of(id, p).unwrap(), 32);
        assert_eq!(heaps.in_use(id).unwrap(), 32);
        heaps.free(id, p, &mut space).unwrap();
        assert_eq!(heaps.in_use(id).unwrap(), 0);
        assert!(space.read_u8(p).is_err());
    }

    #[test]
    fn zero_size_alloc_returns_unique_pointers() {
        let (mut space, mut heaps, id) = setup();
        let a = heaps.alloc(id, 0, &mut space).unwrap();
        let b = heaps.alloc(id, 0, &mut space).unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn double_free_detected() {
        let (mut space, mut heaps, id) = setup();
        let p = heaps.alloc(id, 8, &mut space).unwrap();
        heaps.free(id, p, &mut space).unwrap();
        assert_eq!(heaps.free(id, p, &mut space).unwrap_err(), HeapError::NotAllocated);
    }

    #[test]
    fn foreign_and_interior_pointers_rejected() {
        let (mut space, mut heaps, id) = setup();
        let p = heaps.alloc(id, 8, &mut space).unwrap();
        assert_eq!(
            heaps.free(id, p.offset(4), &mut space).unwrap_err(),
            HeapError::NotAllocated
        );
        assert_eq!(
            heaps.free(id, SimPtr::new(0x123), &mut space).unwrap_err(),
            HeapError::NotAllocated
        );
        // The block survives those failed frees.
        assert!(heaps.size_of(id, p).is_ok());
    }

    #[test]
    fn max_size_enforced() {
        let mut space = AddressSpace::new();
        let mut heaps = HeapManager::new();
        let id = heaps.create(0, 100).unwrap();
        let _a = heaps.alloc(id, 60, &mut space).unwrap();
        assert_eq!(
            heaps.alloc(id, 60, &mut space).unwrap_err(),
            HeapError::OutOfMemory
        );
        let _b = heaps.alloc(id, 40, &mut space).unwrap();
    }

    #[test]
    fn bad_create_rejected() {
        let mut heaps = HeapManager::new();
        assert_eq!(heaps.create(100, 50).unwrap_err(), HeapError::InvalidArgument);
    }

    #[test]
    fn destroy_frees_everything() {
        let (mut space, mut heaps, id) = setup();
        let p = heaps.alloc(id, 16, &mut space).unwrap();
        let q = heaps.alloc(id, 16, &mut space).unwrap();
        heaps.destroy(id, &mut space).unwrap();
        assert!(!heaps.exists(id));
        assert!(space.read_u8(p).is_err());
        assert!(space.read_u8(q).is_err());
        assert_eq!(heaps.alloc(id, 8, &mut space).unwrap_err(), HeapError::NoHeap);
    }

    #[test]
    fn realloc_preserves_prefix() {
        let (mut space, mut heaps, id) = setup();
        let p = heaps.alloc(id, 4, &mut space).unwrap();
        space.write_bytes(p, b"abcd").unwrap();
        let q = heaps.realloc(id, p, 8, &mut space).unwrap();
        assert_eq!(space.read_bytes(q, 4).unwrap(), b"abcd");
        assert!(space.read_u8(p).is_err()); // old block gone
        // Shrinking keeps the prefix that fits.
        let r = heaps.realloc(id, q, 2, &mut space).unwrap();
        assert_eq!(space.read_bytes(r, 2).unwrap(), b"ab");
    }

    #[test]
    fn overrun_of_heap_block_faults() {
        let (mut space, mut heaps, id) = setup();
        let p = heaps.alloc(id, 8, &mut space).unwrap();
        assert!(space.write_bytes(p, &[0u8; 9]).is_err());
    }
}
