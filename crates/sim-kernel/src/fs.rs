//! The in-memory filesystem with open-file descriptions.
//!
//! File and directory calls make up three of the paper's twelve functional
//! groupings (File/Directory Access, I/O Primitives, C file I/O), so the
//! substrate needs a real filesystem: hierarchical directories, file
//! attributes, seek offsets, sharing of open-file descriptions between
//! duplicated descriptors, and the full error vocabulary (`ENOENT`,
//! `ENOTDIR`, `EISDIR`, `EEXIST`, `EACCES`, …) that robust implementations
//! return where fragile ones fault.
//!
//! Paths accept both POSIX (`/tmp/x`) and Windows (`C:\tmp\x`) spellings;
//! name lookup is case-insensitive when constructed with
//! [`FileSystem::new_windows`] and case-sensitive with
//! [`FileSystem::new_posix`].

use serde::{Deserialize, Serialize};
use std::borrow::Cow;
use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

/// Filesystem-level errors (mapped to `errno` / `GetLastError` codes by the
/// API personalities).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FsError {
    /// Path component does not exist.
    NotFound,
    /// A non-final path component is not a directory.
    NotADirectory,
    /// Directory used where a file was required.
    IsADirectory,
    /// Target already exists.
    Exists,
    /// Write to a read-only file, or similar permission trouble.
    AccessDenied,
    /// Bad open-file-description id.
    BadDescriptor,
    /// Descriptor not opened for the attempted direction.
    BadAccessMode,
    /// Empty path, embedded NUL, or other malformed name.
    InvalidPath,
    /// Directory not empty on remove.
    NotEmpty,
    /// Seek before the start of the file.
    InvalidSeek,
    /// The file is open and the operation requires exclusivity.
    SharingViolation,
    /// The per-process open-file limit is exhausted (`EMFILE` /
    /// `ERROR_TOO_MANY_OPEN_FILES`) — only reported when a limit is set,
    /// e.g. by the heavy-load testing extension.
    TooManyOpen,
}

impl fmt::Display for FsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FsError::NotFound => "no such file or directory",
            FsError::NotADirectory => "not a directory",
            FsError::IsADirectory => "is a directory",
            FsError::Exists => "file exists",
            FsError::AccessDenied => "permission denied",
            FsError::BadDescriptor => "bad file descriptor",
            FsError::BadAccessMode => "descriptor not open for this access",
            FsError::InvalidPath => "invalid path",
            FsError::NotEmpty => "directory not empty",
            FsError::InvalidSeek => "invalid seek",
            FsError::SharingViolation => "sharing violation",
            FsError::TooManyOpen => "too many open files",
        };
        f.write_str(s)
    }
}

impl Error for FsError {}

/// Per-file metadata.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[derive(Default)]
pub struct FileAttrs {
    /// Read-only bit (`FILE_ATTRIBUTE_READONLY` / mode `0444`).
    pub readonly: bool,
    /// Creation time, simulated-clock milliseconds.
    pub created_ms: u64,
    /// Last-modification time, simulated-clock milliseconds.
    pub modified_ms: u64,
}


/// Metadata returned by [`FileSystem::stat`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Stat {
    /// Directory or regular file.
    pub is_dir: bool,
    /// File size in bytes (0 for directories).
    pub size: u64,
    /// Attributes.
    pub attrs: FileAttrs,
    /// Stable node id (inode analogue).
    pub node_id: u64,
}

#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
enum Node {
    File {
        content: Vec<u8>,
        attrs: FileAttrs,
    },
    Dir {
        children: BTreeMap<String, u64>,
        attrs: FileAttrs,
    },
}

/// How to open a file. A small builder mirroring the union of `open(2)`
/// flags and `CreateFile` dispositions.
///
/// # Example
///
/// ```
/// use sim_kernel::fs::OpenOptions;
///
/// let opts = OpenOptions::read_write().create(true).truncate(true);
/// assert!(opts.write && opts.create && opts.truncate);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
#[allow(missing_docs)] // the flag fields mirror open(2) flags 1:1
pub struct OpenOptions {
    pub read: bool,
    pub write: bool,
    pub append: bool,
    pub create: bool,
    pub create_new: bool,
    pub truncate: bool,
}

impl OpenOptions {
    /// Read-only access.
    #[must_use]
    pub fn read_only() -> Self {
        OpenOptions {
            read: true,
            ..Self::default()
        }
    }

    /// Write-only access.
    #[must_use]
    pub fn write_only() -> Self {
        OpenOptions {
            write: true,
            ..Self::default()
        }
    }

    /// Read + write access.
    #[must_use]
    pub fn read_write() -> Self {
        OpenOptions {
            read: true,
            write: true,
            ..Self::default()
        }
    }

    /// Create the file if missing.
    #[must_use]
    pub fn create(mut self, yes: bool) -> Self {
        self.create = yes;
        self
    }

    /// Fail if the file already exists (`O_EXCL` / `CREATE_NEW`).
    #[must_use]
    pub fn create_new(mut self, yes: bool) -> Self {
        self.create_new = yes;
        self.create |= yes;
        self
    }

    /// Truncate on open.
    #[must_use]
    pub fn truncate(mut self, yes: bool) -> Self {
        self.truncate = yes;
        self
    }

    /// Append mode: every write goes to end-of-file.
    #[must_use]
    pub fn append(mut self, yes: bool) -> Self {
        self.append = yes;
        self.write = true;
        self
    }
}

/// Where a seek is measured from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SeekFrom {
    /// From offset 0.
    Start(u64),
    /// From the current position.
    Current(i64),
    /// From end-of-file.
    End(i64),
}

#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
struct OpenFile {
    node: u64,
    offset: u64,
    opts: OpenOptions,
}

/// Identifier of an open-file description.
pub type OfdId = u64;

/// One recorded persistence-relevant filesystem mutation — a crash point
/// candidate for the bounded crash-consistency campaign (`ballista::crashcon`,
/// after B3's bounded black-box crash testing). Ops are recorded only while
/// [`FileSystem::set_crash_recording`] is on, only *after* the mutation
/// succeeded, and always with normalized paths (case-folded, drive letter
/// stripped, `.`/`..` resolved), so replaying the log onto a pristine
/// filesystem is spelling-independent. `at_ms` is the filesystem clock at the
/// time of the op — the kernel drives that clock from the fuel meter, which is
/// what makes crash points deterministic across hosts and engines.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum FsOp {
    /// A regular file came into existence with `content`.
    CreateFile {
        /// Normalized absolute path.
        path: String,
        /// Initial content (usually empty — `open(create)` path).
        content: Vec<u8>,
        /// Fuel-clock timestamp.
        at_ms: u64,
    },
    /// A directory was created.
    Mkdir {
        /// Normalized absolute path.
        path: String,
        /// Fuel-clock timestamp.
        at_ms: u64,
    },
    /// An empty directory was removed.
    Rmdir {
        /// Normalized absolute path.
        path: String,
        /// Fuel-clock timestamp.
        at_ms: u64,
    },
    /// A regular file was removed.
    Unlink {
        /// Normalized absolute path.
        path: String,
        /// Fuel-clock timestamp.
        at_ms: u64,
    },
    /// A file or directory moved. The two-step remove-then-insert inside
    /// [`FileSystem::rename`] is exactly the non-atomicity window the
    /// crashcon rename oracle probes.
    Rename {
        /// Normalized source path.
        from: String,
        /// Normalized destination path.
        to: String,
        /// Fuel-clock timestamp.
        at_ms: u64,
    },
    /// The read-only attribute changed.
    SetReadonly {
        /// Normalized absolute path.
        path: String,
        /// New read-only state.
        readonly: bool,
        /// Fuel-clock timestamp.
        at_ms: u64,
    },
    /// An existing file was truncated to zero length (`open` with
    /// `truncate`).
    Truncate {
        /// Normalized absolute path.
        path: String,
        /// Fuel-clock timestamp.
        at_ms: u64,
    },
    /// Bytes were written through an open-file description. `offset` is the
    /// *effective* offset (append mode already resolved to end-of-file), so
    /// replay needs no descriptor state.
    Write {
        /// Normalized absolute path of the file behind the descriptor.
        path: String,
        /// Effective byte offset the write landed at.
        offset: u64,
        /// The bytes written.
        data: Vec<u8>,
        /// Fuel-clock timestamp.
        at_ms: u64,
    },
    /// A durability barrier: [`FileSystem::flush`], or the implicit flush
    /// when a descriptor that was open for writing is closed. Everything
    /// recorded before a barrier must survive any later crash (the
    /// prefix-durability oracle); only ops after the last barrier are
    /// eligible for bounded reordering.
    Barrier {
        /// Fuel-clock timestamp.
        at_ms: u64,
    },
}

impl FsOp {
    /// The op's fuel-clock timestamp.
    #[must_use]
    pub fn at_ms(&self) -> u64 {
        match self {
            FsOp::CreateFile { at_ms, .. }
            | FsOp::Mkdir { at_ms, .. }
            | FsOp::Rmdir { at_ms, .. }
            | FsOp::Unlink { at_ms, .. }
            | FsOp::Rename { at_ms, .. }
            | FsOp::SetReadonly { at_ms, .. }
            | FsOp::Truncate { at_ms, .. }
            | FsOp::Write { at_ms, .. }
            | FsOp::Barrier { at_ms } => *at_ms,
        }
    }

    /// Whether this op is a durability barrier.
    #[must_use]
    pub fn is_barrier(&self) -> bool {
        matches!(self, FsOp::Barrier { .. })
    }
}

/// Hard cap on recorded ops per recording window. A runaway MuT writing in a
/// loop would otherwise make crash-point enumeration quadratic in an
/// unbounded log; B3's whole premise is that a *bounded* workload suffices.
/// Recording past the cap is dropped (the log is marked truncated).
pub const MAX_OPLOG: usize = 256;

/// The in-memory filesystem.
///
/// See the [module documentation](self) for scope and an example on the
/// crate root.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FileSystem {
    nodes: Vec<Option<Node>>,
    open: BTreeMap<OfdId, OpenFile>,
    next_ofd: OfdId,
    case_insensitive: bool,
    now_ms: u64,
    open_limit: Option<usize>,
    /// Structural-mutation counter. Bumped at the top of every mutator that
    /// can change nodes, open descriptions or limits — but *not* by
    /// [`FileSystem::set_now_ms`], which the kernel calls on every simulated
    /// call and which the snapshot layer restores as a scalar. Two
    /// filesystems cloned from the same image with equal generations are
    /// structurally identical, which is what lets
    /// `MachineSnapshot::restore_into` skip the deep clone. Defaults to 0 on
    /// deserialization from older images, which is always safe (it only ever
    /// forces a full clone it could otherwise have skipped).
    #[serde(default)]
    gen: u64,
    /// Descriptor-table mutation counter: bumped by operations that touch
    /// only `open` / `next_ofd` (open, close, read's offset advance, seek,
    /// dup) and not the node tree. Restoring this dirt needs only
    /// [`FileSystem::reset_open_from`] — a clone of the (tiny) open table —
    /// instead of deep-cloning every file's content, which is what makes
    /// read-heavy test cases cheap to reset. Same deserialization default
    /// rationale as `gen`.
    #[serde(default)]
    open_gen: u64,
    /// Crash-op recording switch. Off by default; the crashcon engine turns
    /// it on per case and drains the log afterwards. Not compared by
    /// `PartialEq` and not part of the durable image — it is harness
    /// bookkeeping, like the generation counters.
    #[serde(default)]
    recording: bool,
    /// The recorded op log (empty unless `recording` was on).
    #[serde(default)]
    oplog: Vec<FsOp>,
    /// Whether the log hit [`MAX_OPLOG`] and dropped ops.
    #[serde(default)]
    oplog_truncated: bool,
}

/// Equality is structural — the generation counter and timestamp source are
/// restore bookkeeping, not filesystem state (`now_ms` *is* compared, since
/// it feeds the timestamps future operations will record).
impl PartialEq for FileSystem {
    fn eq(&self, other: &Self) -> bool {
        self.nodes == other.nodes
            && self.open == other.open
            && self.next_ofd == other.next_ofd
            && self.case_insensitive == other.case_insensitive
            && self.now_ms == other.now_ms
            && self.open_limit == other.open_limit
    }
}

impl Eq for FileSystem {}

impl FileSystem {
    fn with_case(case_insensitive: bool) -> Self {
        let root = Node::Dir {
            children: BTreeMap::new(),
            attrs: FileAttrs::default(),
        };
        FileSystem {
            nodes: vec![Some(root)],
            open: BTreeMap::new(),
            next_ofd: 3, // leave room for std streams
            case_insensitive,
            now_ms: 0,
            open_limit: None,
            gen: 0,
            open_gen: 0,
            recording: false,
            oplog: Vec::new(),
            oplog_truncated: false,
        }
    }

    /// Turns crash-op recording on or off. Turning it on clears any stale
    /// log so each recording window observes exactly one case.
    pub fn set_crash_recording(&mut self, on: bool) {
        self.recording = on;
        if on {
            self.oplog.clear();
            self.oplog_truncated = false;
        }
    }

    /// Whether crash-op recording is currently on.
    #[must_use]
    pub fn crash_recording(&self) -> bool {
        self.recording
    }

    /// Drains the recorded op log, returning it together with the
    /// truncation flag (`true` when [`MAX_OPLOG`] dropped ops).
    pub fn take_oplog(&mut self) -> (Vec<FsOp>, bool) {
        let truncated = self.oplog_truncated;
        self.oplog_truncated = false;
        (std::mem::take(&mut self.oplog), truncated)
    }

    /// Appends a recorded op, honoring the [`MAX_OPLOG`] bound. The closure
    /// keeps the (allocating) op construction off the hot path when
    /// recording is off — every mutator pays one branch and nothing else.
    fn record(&mut self, op: impl FnOnce(&FileSystem) -> Option<FsOp>) {
        if !self.recording {
            return;
        }
        if self.oplog.len() >= MAX_OPLOG {
            self.oplog_truncated = true;
            return;
        }
        // Re-borrow immutably for path normalization inside the closure.
        let this: &FileSystem = self;
        if let Some(op) = op(this) {
            self.oplog.push(op);
        }
    }

    /// Normalizes `path` to the canonical absolute spelling recorded in
    /// [`FsOp`]s: case-folded on case-insensitive filesystems, drive letter
    /// stripped, `.`/`..` resolved, components joined with `/`. Returns
    /// `None` for invalid paths (which cannot have passed a mutator's
    /// validation anyway).
    #[must_use]
    pub fn normalize_path(&self, path: &str) -> Option<String> {
        let parts = self.components(path).ok()?;
        let mut out = String::with_capacity(path.len() + 1);
        for p in &parts {
            out.push('/');
            out.push_str(p);
        }
        if out.is_empty() {
            out.push('/');
        }
        Some(out)
    }

    /// Resolves the normalized path of a live node by walking from the
    /// root — recording-path only (descriptor-based ops need a path for
    /// replay). Returns `None` for unreachable (unlinked-while-open) nodes,
    /// whose writes cannot survive into any remounted image anyway.
    fn path_of_node(&self, target: u64) -> Option<String> {
        fn walk(fs: &FileSystem, cur: u64, target: u64, acc: &mut String) -> bool {
            if cur == target {
                if acc.is_empty() {
                    acc.push('/');
                }
                return true;
            }
            if let Some(Node::Dir { children, .. }) = &fs.nodes[cur as usize] {
                for (name, &id) in children {
                    let len = acc.len();
                    acc.push('/');
                    acc.push_str(name);
                    if walk(fs, id, target, acc) {
                        return true;
                    }
                    acc.truncate(len);
                }
            }
            false
        }
        let mut acc = String::new();
        walk(self, 0, target, &mut acc).then_some(acc)
    }

    /// Current structural generation (see the field documentation).
    #[must_use]
    pub fn generation(&self) -> u64 {
        self.gen
    }

    /// Marks the filesystem structurally dirty. Called by every mutator
    /// *after* validation but *before* the first mutating statement, so an
    /// operation interrupted by a panic still registers as dirty while a
    /// call that fails validation leaves the generation — and therefore
    /// the batched campaign's restore cost — untouched. (Most hostile
    /// test cases fail validation; skipping the bump is what lets the
    /// resident machine skip the filesystem clone when resetting them.)
    fn touch(&mut self) {
        self.gen = self.gen.wrapping_add(1);
    }

    /// Current descriptor-table generation (see the field documentation).
    #[must_use]
    pub fn open_generation(&self) -> u64 {
        self.open_gen
    }

    /// Marks the descriptor table dirty — the counterpart of
    /// [`FileSystem::touch`] for mutations confined to `open` /
    /// `next_ofd`. Same placement rule: after validation, before the
    /// first mutating statement.
    fn touch_open(&mut self) {
        self.open_gen = self.open_gen.wrapping_add(1);
    }

    /// Resets the descriptor table — `open`, `next_ofd` and the
    /// descriptor generation — to `baseline`'s, leaving the node tree
    /// alone. Sound only when the node generations already match (i.e.
    /// the only filesystem dirt is descriptor-table dirt); the snapshot
    /// layer checks that before calling this instead of a full clone.
    pub fn reset_open_from(&mut self, baseline: &FileSystem) {
        self.open.clear();
        self.open
            .extend(baseline.open.iter().map(|(k, v)| (*k, v.clone())));
        self.next_ofd = baseline.next_ofd;
        self.open_gen = baseline.open_gen;
    }

    /// The filesystem's current notion of time (for snapshot restore).
    #[must_use]
    pub fn now_ms(&self) -> u64 {
        self.now_ms
    }

    /// A case-sensitive filesystem (the Linux target).
    #[must_use]
    pub fn new_posix() -> Self {
        Self::with_case(false)
    }

    /// A case-insensitive filesystem (the Windows targets).
    #[must_use]
    pub fn new_windows() -> Self {
        Self::with_case(true)
    }

    /// Advances the filesystem's notion of time (drives timestamps).
    pub fn set_now_ms(&mut self, now_ms: u64) {
        self.now_ms = now_ms;
    }

    /// Caps the number of simultaneously open file descriptions (`None` =
    /// unlimited, the default). Used by the heavy-load testing extension
    /// to make descriptor exhaustion observable.
    pub fn set_open_limit(&mut self, limit: Option<usize>) {
        self.touch();
        self.open_limit = limit;
    }

    fn at_open_limit(&self) -> bool {
        self.open_limit.is_some_and(|l| self.open.len() >= l)
    }

    /// Case-folds one component, borrowing when folding is a no-op (the
    /// common case: case-sensitive filesystems, and already-lowercase
    /// names on case-insensitive ones). Resolution is the hottest
    /// filesystem path in a campaign — a 330-component hostile path would
    /// otherwise cost an allocation per component per lookup.
    fn fold_case<'a>(&self, name: &'a str) -> Cow<'a, str> {
        if self.case_insensitive && name.bytes().any(|b| b.is_ascii_uppercase()) {
            Cow::Owned(name.to_ascii_lowercase())
        } else {
            Cow::Borrowed(name)
        }
    }

    /// Splits a path into normalized components, borrowing from `path`
    /// wherever case folding permits.
    fn components<'a>(&self, path: &'a str) -> Result<Vec<Cow<'a, str>>, FsError> {
        if path.is_empty() || path.contains('\0') {
            return Err(FsError::InvalidPath);
        }
        // Strip drive letter ("C:") if present.
        let body = match path.as_bytes() {
            [d, b':', rest @ ..] if d.is_ascii_alphabetic() => {
                std::str::from_utf8(rest).expect("sliced at byte boundary")
            }
            _ => path,
        };
        let mut parts: Vec<Cow<'a, str>> = Vec::new();
        for raw in body.split(['/', '\\']) {
            match raw {
                "" | "." => {}
                ".." => {
                    parts.pop();
                }
                name => parts.push(self.fold_case(name)),
            }
        }
        Ok(parts)
    }

    /// Splits a path into normalized components. Accepts `/a/b`, `C:\a\b`,
    /// `a\b`, and mixed separators; `.` components are dropped and `..`
    /// pops (stopping at the root, as real kernels do).
    ///
    /// # Errors
    ///
    /// [`FsError::InvalidPath`] for empty paths or embedded NULs.
    pub fn split_path(&self, path: &str) -> Result<Vec<String>, FsError> {
        Ok(self
            .components(path)?
            .into_iter()
            .map(Cow::into_owned)
            .collect())
    }

    fn lookup(&self, path: &str) -> Result<u64, FsError> {
        // Fast path: without ".." there is no back-tracking, so components
        // stream straight off the path — a hostile many-component path
        // misses at its first component without collecting anything.
        if !path.contains("..") {
            if path.is_empty() || path.contains('\0') {
                return Err(FsError::InvalidPath);
            }
            let body = match path.as_bytes() {
                [d, b':', rest @ ..] if d.is_ascii_alphabetic() => {
                    std::str::from_utf8(rest).expect("sliced at byte boundary")
                }
                _ => path,
            };
            let mut cur = 0u64;
            for raw in body.split(['/', '\\']) {
                if matches!(raw, "" | ".") {
                    continue;
                }
                let part = self.fold_case(raw);
                let node = self.nodes[cur as usize].as_ref().ok_or(FsError::NotFound)?;
                match node {
                    Node::Dir { children, .. } => {
                        cur = *children.get(part.as_ref()).ok_or(FsError::NotFound)?;
                    }
                    Node::File { .. } => return Err(FsError::NotADirectory),
                }
            }
            return Ok(cur);
        }
        let parts = self.components(path)?;
        let mut cur = 0u64;
        for part in &parts {
            let node = self.nodes[cur as usize].as_ref().ok_or(FsError::NotFound)?;
            match node {
                Node::Dir { children, .. } => {
                    cur = *children.get(part.as_ref()).ok_or(FsError::NotFound)?;
                }
                Node::File { .. } => return Err(FsError::NotADirectory),
            }
        }
        Ok(cur)
    }

    /// Resolves the parent directory of `path`, returning `(parent_id,
    /// final_component)`.
    fn lookup_parent(&self, path: &str) -> Result<(u64, String), FsError> {
        let mut parts = self.components(path)?;
        let last = parts.pop().ok_or(FsError::InvalidPath)?.into_owned();
        let mut cur = 0u64;
        for part in &parts {
            let node = self.nodes[cur as usize].as_ref().ok_or(FsError::NotFound)?;
            match node {
                Node::Dir { children, .. } => {
                    cur = *children.get(part.as_ref()).ok_or(FsError::NotFound)?;
                }
                Node::File { .. } => return Err(FsError::NotADirectory),
            }
        }
        match self.nodes[cur as usize] {
            Some(Node::Dir { .. }) => Ok((cur, last)),
            _ => Err(FsError::NotADirectory),
        }
    }

    fn alloc_node(&mut self, node: Node) -> u64 {
        self.nodes.push(Some(node));
        (self.nodes.len() - 1) as u64
    }

    /// Whether `path` names an existing file or directory.
    #[must_use]
    pub fn exists(&self, path: &str) -> bool {
        self.lookup(path).is_ok()
    }

    /// Creates a regular file with `content`, creating no directories.
    /// Overwrites nothing.
    ///
    /// # Errors
    ///
    /// [`FsError::Exists`] if the name is taken, plus path-resolution
    /// errors.
    pub fn create_file(&mut self, path: &str, content: Vec<u8>) -> Result<(), FsError> {
        let (parent, name) = self.lookup_parent(path)?;
        let attrs = FileAttrs {
            readonly: false,
            created_ms: self.now_ms,
            modified_ms: self.now_ms,
        };
        let Some(Node::Dir { children, .. }) = &self.nodes[parent as usize] else {
            return Err(FsError::NotADirectory);
        };
        if children.contains_key(&name) {
            return Err(FsError::Exists);
        }
        self.touch();
        self.record(|fs| {
            Some(FsOp::CreateFile {
                path: fs.normalize_path(path)?,
                content: content.clone(),
                at_ms: fs.now_ms,
            })
        });
        let id = self.alloc_node(Node::File { content, attrs });
        let Some(Node::Dir { children, .. }) = &mut self.nodes[parent as usize] else {
            unreachable!("checked above");
        };
        children.insert(name, id);
        Ok(())
    }

    /// Creates a directory.
    ///
    /// # Errors
    ///
    /// [`FsError::Exists`] if the name is taken, plus path-resolution
    /// errors.
    pub fn mkdir(&mut self, path: &str) -> Result<(), FsError> {
        let (parent, name) = self.lookup_parent(path)?;
        let Some(Node::Dir { children, .. }) = &self.nodes[parent as usize] else {
            return Err(FsError::NotADirectory);
        };
        if children.contains_key(&name) {
            return Err(FsError::Exists);
        }
        self.touch();
        self.record(|fs| {
            Some(FsOp::Mkdir {
                path: fs.normalize_path(path)?,
                at_ms: fs.now_ms,
            })
        });
        let attrs = FileAttrs {
            readonly: false,
            created_ms: self.now_ms,
            modified_ms: self.now_ms,
        };
        let id = self.alloc_node(Node::Dir {
            children: BTreeMap::new(),
            attrs,
        });
        let Some(Node::Dir { children, .. }) = &mut self.nodes[parent as usize] else {
            unreachable!("checked above");
        };
        children.insert(name, id);
        Ok(())
    }

    /// Removes an empty directory.
    ///
    /// # Errors
    ///
    /// [`FsError::NotEmpty`] for non-empty directories,
    /// [`FsError::NotADirectory`] for files, plus resolution errors.
    pub fn rmdir(&mut self, path: &str) -> Result<(), FsError> {
        let (parent, name) = self.lookup_parent(path)?;
        let Some(Node::Dir { children, .. }) = &self.nodes[parent as usize] else {
            return Err(FsError::NotADirectory);
        };
        let id = *children.get(&name).ok_or(FsError::NotFound)?;
        match &self.nodes[id as usize] {
            Some(Node::Dir { children: c, .. }) if !c.is_empty() => return Err(FsError::NotEmpty),
            Some(Node::Dir { .. }) => {}
            _ => return Err(FsError::NotADirectory),
        }
        self.touch();
        self.record(|fs| {
            Some(FsOp::Rmdir {
                path: fs.normalize_path(path)?,
                at_ms: fs.now_ms,
            })
        });
        let Some(Node::Dir { children, .. }) = &mut self.nodes[parent as usize] else {
            unreachable!("checked above");
        };
        children.remove(&name);
        self.nodes[id as usize] = None;
        Ok(())
    }

    /// Removes a regular file.
    ///
    /// # Errors
    ///
    /// [`FsError::IsADirectory`] for directories,
    /// [`FsError::AccessDenied`] for read-only files, plus resolution
    /// errors.
    pub fn unlink(&mut self, path: &str) -> Result<(), FsError> {
        let (parent, name) = self.lookup_parent(path)?;
        let Some(Node::Dir { children, .. }) = &self.nodes[parent as usize] else {
            return Err(FsError::NotADirectory);
        };
        let id = *children.get(&name).ok_or(FsError::NotFound)?;
        match &self.nodes[id as usize] {
            Some(Node::File { attrs, .. }) => {
                if attrs.readonly {
                    return Err(FsError::AccessDenied);
                }
            }
            Some(Node::Dir { .. }) => return Err(FsError::IsADirectory),
            None => return Err(FsError::NotFound),
        }
        self.touch();
        self.record(|fs| {
            Some(FsOp::Unlink {
                path: fs.normalize_path(path)?,
                at_ms: fs.now_ms,
            })
        });
        let Some(Node::Dir { children, .. }) = &mut self.nodes[parent as usize] else {
            unreachable!("checked above");
        };
        children.remove(&name);
        self.nodes[id as usize] = None;
        Ok(())
    }

    /// Renames/moves a file or directory.
    ///
    /// # Errors
    ///
    /// [`FsError::Exists`] when the destination is taken, plus resolution
    /// errors on either path.
    pub fn rename(&mut self, from: &str, to: &str) -> Result<(), FsError> {
        let (from_parent, from_name) = self.lookup_parent(from)?;
        let (to_parent, to_name) = self.lookup_parent(to)?;
        let Some(Node::Dir { children, .. }) = &self.nodes[from_parent as usize] else {
            return Err(FsError::NotADirectory);
        };
        let id = *children.get(&from_name).ok_or(FsError::NotFound)?;
        let Some(Node::Dir { children, .. }) = &self.nodes[to_parent as usize] else {
            return Err(FsError::NotADirectory);
        };
        if children.contains_key(&to_name) {
            return Err(FsError::Exists);
        }
        // Renaming a directory into its own subtree (or onto itself) would
        // detach it from the root and leave an orphaned cycle. Real kernels
        // reject this before touching anything (POSIX `EINVAL`, Windows
        // `ERROR_SHARING_VIOLATION`); paths are compared case-folded so the
        // guard matches lookup semantics on case-insensitive variants.
        if matches!(self.nodes[id as usize], Some(Node::Dir { .. })) {
            let nf = self.normalize_path(from).ok_or(FsError::InvalidPath)?;
            let nt = self.normalize_path(to).ok_or(FsError::InvalidPath)?;
            if nt == nf || nt.starts_with(&format!("{nf}/")) {
                return Err(FsError::InvalidPath);
            }
        }
        self.touch();
        self.record(|fs| {
            Some(FsOp::Rename {
                from: fs.normalize_path(from)?,
                to: fs.normalize_path(to)?,
                at_ms: fs.now_ms,
            })
        });
        let Some(Node::Dir { children, .. }) = &mut self.nodes[from_parent as usize] else {
            unreachable!("checked above");
        };
        children.remove(&from_name);
        let Some(Node::Dir { children, .. }) = &mut self.nodes[to_parent as usize] else {
            unreachable!("checked above");
        };
        children.insert(to_name, id);
        Ok(())
    }

    /// Metadata for `path`.
    ///
    /// # Errors
    ///
    /// Path-resolution errors.
    pub fn stat(&self, path: &str) -> Result<Stat, FsError> {
        let id = self.lookup(path)?;
        Ok(self.stat_node(id))
    }

    fn stat_node(&self, id: u64) -> Stat {
        match self.nodes[id as usize].as_ref().expect("live node") {
            Node::File { content, attrs } => Stat {
                is_dir: false,
                size: content.len() as u64,
                attrs: *attrs,
                node_id: id,
            },
            Node::Dir { attrs, .. } => Stat {
                is_dir: true,
                size: 0,
                attrs: *attrs,
                node_id: id,
            },
        }
    }

    /// Sets or clears the read-only attribute.
    ///
    /// # Errors
    ///
    /// Path-resolution errors.
    pub fn set_readonly(&mut self, path: &str, readonly: bool) -> Result<(), FsError> {
        let id = self.lookup(path)?;
        self.touch();
        self.record(|fs| {
            Some(FsOp::SetReadonly {
                path: fs.normalize_path(path)?,
                readonly,
                at_ms: fs.now_ms,
            })
        });
        match self.nodes[id as usize].as_mut().expect("live node") {
            Node::File { attrs, .. } | Node::Dir { attrs, .. } => attrs.readonly = readonly,
        }
        Ok(())
    }

    /// Lists the names in a directory, sorted.
    ///
    /// # Errors
    ///
    /// [`FsError::NotADirectory`] for files, plus resolution errors.
    pub fn list_dir(&self, path: &str) -> Result<Vec<String>, FsError> {
        let id = self.lookup(path)?;
        match self.nodes[id as usize].as_ref().expect("live node") {
            Node::Dir { children, .. } => Ok(children.keys().cloned().collect()),
            Node::File { .. } => Err(FsError::NotADirectory),
        }
    }

    /// Opens a file, returning an open-file-description id.
    ///
    /// # Errors
    ///
    /// The usual `open(2)` error vocabulary: [`FsError::NotFound`] without
    /// `create`, [`FsError::Exists`] with `create_new`,
    /// [`FsError::IsADirectory`], [`FsError::AccessDenied`] for writing a
    /// read-only file, plus resolution errors.
    pub fn open(&mut self, path: &str, opts: OpenOptions) -> Result<OfdId, FsError> {
        if !opts.read && !opts.write {
            return Err(FsError::BadAccessMode);
        }
        if self.at_open_limit() {
            return Err(FsError::TooManyOpen);
        }
        let node_id = match self.lookup(path) {
            Ok(id) => {
                if opts.create_new {
                    return Err(FsError::Exists);
                }
                id
            }
            Err(FsError::NotFound) if opts.create => {
                self.create_file(path, Vec::new())?;
                self.lookup(path)?
            }
            Err(e) => return Err(e),
        };
        match self.nodes[node_id as usize].as_ref().expect("live node") {
            Node::Dir { .. } => return Err(FsError::IsADirectory),
            Node::File { attrs, .. } => {
                if opts.write && attrs.readonly {
                    return Err(FsError::AccessDenied);
                }
            }
        }
        if opts.truncate && opts.write {
            self.touch();
            self.record(|fs| {
                Some(FsOp::Truncate {
                    path: fs.normalize_path(path)?,
                    at_ms: fs.now_ms,
                })
            });
            let now = self.now_ms;
            let Some(Node::File { content, attrs }) = self.nodes[node_id as usize].as_mut() else {
                unreachable!("checked above");
            };
            content.clear();
            attrs.modified_ms = now;
        }
        self.touch_open();
        let ofd = self.next_ofd;
        self.next_ofd += 1;
        self.open.insert(
            ofd,
            OpenFile {
                node: node_id,
                offset: 0,
                opts,
            },
        );
        Ok(ofd)
    }

    /// Closes an open-file description.
    ///
    /// # Errors
    ///
    /// [`FsError::BadDescriptor`] for unknown ids.
    pub fn close(&mut self, ofd: OfdId) -> Result<(), FsError> {
        let Some(of) = self.open.get(&ofd) else {
            return Err(FsError::BadDescriptor);
        };
        // Closing a descriptor that was open for writing is an implicit
        // durability barrier (fsync-on-close semantics), recorded for the
        // crashcon prefix-durability oracle.
        let flushes = of.opts.write;
        self.touch_open();
        self.open.remove(&ofd);
        if flushes {
            self.record(|fs| Some(FsOp::Barrier { at_ms: fs.now_ms }));
        }
        Ok(())
    }

    /// Flushes an open-file description: a durability barrier with no other
    /// observable effect. Everything written before the barrier must survive
    /// any crash simulated after it (the crashcon prefix-durability oracle).
    ///
    /// # Errors
    ///
    /// [`FsError::BadDescriptor`] for unknown ids.
    pub fn flush(&mut self, ofd: OfdId) -> Result<(), FsError> {
        if !self.open.contains_key(&ofd) {
            return Err(FsError::BadDescriptor);
        }
        self.record(|fs| Some(FsOp::Barrier { at_ms: fs.now_ms }));
        Ok(())
    }

    /// Whether `ofd` names a live open-file description.
    #[must_use]
    pub fn is_open(&self, ofd: OfdId) -> bool {
        self.open.contains_key(&ofd)
    }

    /// Reads from the current offset into `buf`, returning the byte count
    /// (0 at end-of-file).
    ///
    /// # Errors
    ///
    /// [`FsError::BadDescriptor`] / [`FsError::BadAccessMode`].
    pub fn read(&mut self, ofd: OfdId, buf: &mut [u8]) -> Result<usize, FsError> {
        let of = self.open.get(&ofd).ok_or(FsError::BadDescriptor)?;
        if !of.opts.read {
            return Err(FsError::BadAccessMode);
        }
        let Some(Node::File { content, .. }) = self.nodes[of.node as usize].as_ref() else {
            return Err(FsError::BadDescriptor);
        };
        let start = (of.offset as usize).min(content.len());
        let n = buf.len().min(content.len() - start);
        buf[..n].copy_from_slice(&content[start..start + n]);
        self.touch_open(); // the open-file offset advances
        self.open.get_mut(&ofd).expect("checked above").offset += n as u64;
        Ok(n)
    }

    /// Writes `data` at the current offset (end-of-file in append mode),
    /// returning the byte count.
    ///
    /// # Errors
    ///
    /// [`FsError::BadDescriptor`] / [`FsError::BadAccessMode`].
    pub fn write(&mut self, ofd: OfdId, data: &[u8]) -> Result<usize, FsError> {
        let now = self.now_ms;
        let of = self.open.get(&ofd).ok_or(FsError::BadDescriptor)?;
        if !of.opts.write {
            return Err(FsError::BadAccessMode);
        }
        if !matches!(self.nodes[of.node as usize], Some(Node::File { .. })) {
            return Err(FsError::BadDescriptor);
        }
        self.touch(); // file content and timestamps change...
        self.touch_open(); // ...and the open-file offset advances
        let of = self.open.get_mut(&ofd).expect("checked above");
        let Some(Node::File { content, attrs }) = self.nodes[of.node as usize].as_mut() else {
            unreachable!("checked above");
        };
        if of.opts.append {
            of.offset = content.len() as u64;
        }
        let off = of.offset as usize;
        if off > content.len() {
            content.resize(off, 0); // sparse fill
        }
        let overlap = (content.len() - off).min(data.len());
        content[off..off + overlap].copy_from_slice(&data[..overlap]);
        content.extend_from_slice(&data[overlap..]);
        of.offset += data.len() as u64;
        attrs.modified_ms = now;
        let node = of.node;
        self.record(|fs| {
            Some(FsOp::Write {
                path: fs.path_of_node(node)?,
                offset: off as u64,
                data: data.to_vec(),
                at_ms: fs.now_ms,
            })
        });
        Ok(data.len())
    }

    /// Moves the offset of an open-file description.
    ///
    /// # Errors
    ///
    /// [`FsError::InvalidSeek`] for seeks before offset 0,
    /// [`FsError::BadDescriptor`] for unknown ids.
    pub fn seek(&mut self, ofd: OfdId, from: SeekFrom) -> Result<u64, FsError> {
        let of = self.open.get(&ofd).ok_or(FsError::BadDescriptor)?;
        let Some(Node::File { content, .. }) = self.nodes[of.node as usize].as_ref() else {
            return Err(FsError::BadDescriptor);
        };
        let len = content.len() as i64;
        let target = match from {
            SeekFrom::Start(o) => o as i64,
            SeekFrom::Current(d) => of.offset as i64 + d,
            SeekFrom::End(d) => len + d,
        };
        if target < 0 {
            return Err(FsError::InvalidSeek);
        }
        self.touch_open();
        let of = self.open.get_mut(&ofd).expect("checked above");
        of.offset = target as u64;
        Ok(of.offset)
    }

    /// Bytes left between the current offset and end-of-file — the most a
    /// [`FileSystem::read`] on `ofd` can return. Lets callers that would
    /// otherwise zero a caller-sized scratch buffer (`fread` with a wrapped
    /// 32-bit `size * nmemb`, `ReadFile` with a huge byte count) allocate
    /// only what the read can deliver.
    ///
    /// # Errors
    ///
    /// [`FsError::BadDescriptor`] for unknown ids.
    pub fn available(&self, ofd: OfdId) -> Result<u64, FsError> {
        let of = self.open.get(&ofd).ok_or(FsError::BadDescriptor)?;
        let Some(Node::File { content, .. }) = self.nodes[of.node as usize].as_ref() else {
            return Err(FsError::BadDescriptor);
        };
        Ok((content.len() as u64).saturating_sub(of.offset))
    }

    /// Current size of the file behind an open-file description.
    ///
    /// # Errors
    ///
    /// [`FsError::BadDescriptor`] for unknown ids.
    pub fn size_of(&self, ofd: OfdId) -> Result<u64, FsError> {
        let of = self.open.get(&ofd).ok_or(FsError::BadDescriptor)?;
        let Some(Node::File { content, .. }) = self.nodes[of.node as usize].as_ref() else {
            return Err(FsError::BadDescriptor);
        };
        Ok(content.len() as u64)
    }

    /// Stat through an open-file description.
    ///
    /// # Errors
    ///
    /// [`FsError::BadDescriptor`] for unknown ids.
    pub fn fstat(&self, ofd: OfdId) -> Result<Stat, FsError> {
        let of = self.open.get(&ofd).ok_or(FsError::BadDescriptor)?;
        Ok(self.stat_node(of.node))
    }

    /// Number of live open-file descriptions (for leak checks between test
    /// cases).
    #[must_use]
    pub fn open_count(&self) -> usize {
        self.open.len()
    }

    /// Duplicates an open-file description (shares the node, copies the
    /// offset — matching `dup(2)` closely enough for robustness testing).
    ///
    /// # Errors
    ///
    /// [`FsError::BadDescriptor`] for unknown ids.
    pub fn dup(&mut self, ofd: OfdId) -> Result<OfdId, FsError> {
        if self.at_open_limit() {
            return Err(FsError::TooManyOpen);
        }
        let of = self.open.get(&ofd).ok_or(FsError::BadDescriptor)?.clone();
        self.touch_open();
        let id = self.next_ofd;
        self.next_ofd += 1;
        self.open.insert(id, of);
        Ok(id)
    }

    /// Duplicates `ofd` *at* descriptor id `target` (the `dup2(2)`
    /// protocol): any description already open at `target` is closed
    /// first; duplicating onto itself is a no-op.
    ///
    /// # Errors
    ///
    /// [`FsError::BadDescriptor`] when `ofd` is not open.
    pub fn dup_at(&mut self, ofd: OfdId, target: OfdId) -> Result<OfdId, FsError> {
        let of = self.open.get(&ofd).ok_or(FsError::BadDescriptor)?.clone();
        if ofd == target {
            return Ok(target);
        }
        self.touch_open();
        self.open.insert(target, of);
        self.next_ofd = self.next_ofd.max(target + 1);
        Ok(target)
    }

    /// Reads a whole file by path without touching descriptor state (the
    /// crashcon oracle's read path — oracles must not perturb the image
    /// they are judging).
    ///
    /// # Errors
    ///
    /// [`FsError::IsADirectory`] for directories, plus resolution errors.
    pub fn read_file(&self, path: &str) -> Result<Vec<u8>, FsError> {
        let id = self.lookup(path)?;
        match self.nodes[id as usize].as_ref().expect("live node") {
            Node::File { content, .. } => Ok(content.clone()),
            Node::Dir { .. } => Err(FsError::IsADirectory),
        }
    }

    /// Number of live (allocated, non-freed) nodes, reachable or not.
    /// Compared against [`FileSystem::validate_tree`]'s reachable count by
    /// the crashcon well-formedness oracle to detect orphaned nodes.
    #[must_use]
    pub fn live_node_count(&self) -> usize {
        self.nodes.iter().filter(|n| n.is_some()).count()
    }

    /// Structurally validates the node tree: every child id must be in
    /// bounds and live, and no node may be reachable twice (aliasing or a
    /// cycle). Returns the reachable node count on success and a
    /// description of the first defect otherwise.
    ///
    /// # Errors
    ///
    /// A human-readable description of the structural defect.
    pub fn validate_tree(&self) -> Result<usize, String> {
        let mut seen = vec![false; self.nodes.len()];
        let mut stack = vec![0u64];
        let mut count = 0usize;
        while let Some(id) = stack.pop() {
            let idx = id as usize;
            if idx >= self.nodes.len() {
                return Err(format!("child id {id} out of bounds"));
            }
            if seen[idx] {
                return Err(format!("node {id} reachable twice (cycle or aliasing)"));
            }
            seen[idx] = true;
            count += 1;
            match &self.nodes[idx] {
                None => return Err(format!("dangling child id {id}")),
                Some(Node::Dir { children, .. }) => stack.extend(children.values().copied()),
                Some(Node::File { .. }) => {}
            }
        }
        Ok(count)
    }

    /// Whether every open-file description references a live regular file.
    /// A remounted crash image must additionally have an *empty* open
    /// table (descriptors do not survive a crash) — the crashcon oracle
    /// checks both.
    #[must_use]
    pub fn open_table_valid(&self) -> bool {
        self.open.values().all(|of| {
            matches!(
                self.nodes.get(of.node as usize),
                Some(Some(Node::File { .. }))
            )
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fs_with_file(path: &str, content: &[u8]) -> FileSystem {
        let mut fs = FileSystem::new_posix();
        fs.create_file(path, content.to_vec()).unwrap();
        fs
    }

    #[test]
    fn create_open_read() {
        let mut fs = fs_with_file("/hello.txt", b"hello world");
        let ofd = fs.open("/hello.txt", OpenOptions::read_only()).unwrap();
        let mut buf = [0u8; 5];
        assert_eq!(fs.read(ofd, &mut buf).unwrap(), 5);
        assert_eq!(&buf, b"hello");
        assert_eq!(fs.read(ofd, &mut buf).unwrap(), 5);
        assert_eq!(&buf, b" worl");
        fs.close(ofd).unwrap();
        assert!(!fs.is_open(ofd));
    }

    #[test]
    fn windows_paths_and_case_folding() {
        let mut fs = FileSystem::new_windows();
        fs.mkdir("C:\\Temp").unwrap();
        fs.create_file("C:\\Temp\\File.TXT", b"x".to_vec()).unwrap();
        assert!(fs.exists("c:/temp/file.txt"));
        // POSIX flavour stays case-sensitive.
        let mut pfs = FileSystem::new_posix();
        pfs.create_file("/File", vec![]).unwrap();
        assert!(!pfs.exists("/file"));
    }

    #[test]
    fn dotdot_stops_at_root() {
        let fs = FileSystem::new_posix();
        assert_eq!(fs.split_path("/../../etc").unwrap(), vec!["etc"]);
        assert_eq!(fs.split_path("a/./b/../c").unwrap(), vec!["a", "c"]);
    }

    #[test]
    fn invalid_paths_rejected() {
        let fs = FileSystem::new_posix();
        assert_eq!(fs.split_path("").unwrap_err(), FsError::InvalidPath);
        assert_eq!(fs.split_path("a\0b").unwrap_err(), FsError::InvalidPath);
    }

    #[test]
    fn open_missing_without_create_fails() {
        let mut fs = FileSystem::new_posix();
        assert_eq!(
            fs.open("/nope", OpenOptions::read_only()).unwrap_err(),
            FsError::NotFound
        );
        let ofd = fs
            .open("/nope", OpenOptions::read_write().create(true))
            .unwrap();
        assert!(fs.is_open(ofd));
    }

    #[test]
    fn create_new_fails_on_existing() {
        let mut fs = fs_with_file("/f", b"");
        assert_eq!(
            fs.open("/f", OpenOptions::write_only().create_new(true))
                .unwrap_err(),
            FsError::Exists
        );
    }

    #[test]
    fn write_readonly_file_denied() {
        let mut fs = fs_with_file("/ro", b"data");
        fs.set_readonly("/ro", true).unwrap();
        assert_eq!(
            fs.open("/ro", OpenOptions::write_only()).unwrap_err(),
            FsError::AccessDenied
        );
        assert_eq!(fs.unlink("/ro").unwrap_err(), FsError::AccessDenied);
        fs.set_readonly("/ro", false).unwrap();
        assert!(fs.unlink("/ro").is_ok());
    }

    #[test]
    fn directories_are_not_files() {
        let mut fs = FileSystem::new_posix();
        fs.mkdir("/d").unwrap();
        assert_eq!(
            fs.open("/d", OpenOptions::read_only()).unwrap_err(),
            FsError::IsADirectory
        );
        assert_eq!(fs.unlink("/d").unwrap_err(), FsError::IsADirectory);
        fs.create_file("/f", vec![]).unwrap();
        assert_eq!(fs.rmdir("/f").unwrap_err(), FsError::NotADirectory);
        assert_eq!(fs.list_dir("/f").unwrap_err(), FsError::NotADirectory);
    }

    #[test]
    fn rmdir_requires_empty() {
        let mut fs = FileSystem::new_posix();
        fs.mkdir("/d").unwrap();
        fs.create_file("/d/x", vec![]).unwrap();
        assert_eq!(fs.rmdir("/d").unwrap_err(), FsError::NotEmpty);
        fs.unlink("/d/x").unwrap();
        fs.rmdir("/d").unwrap();
        assert!(!fs.exists("/d"));
    }

    #[test]
    fn rename_moves_and_respects_existing() {
        let mut fs = fs_with_file("/a", b"1");
        fs.create_file("/b", b"2".to_vec()).unwrap();
        assert_eq!(fs.rename("/a", "/b").unwrap_err(), FsError::Exists);
        fs.rename("/a", "/c").unwrap();
        assert!(!fs.exists("/a"));
        assert_eq!(fs.stat("/c").unwrap().size, 1);
    }

    #[test]
    fn rename_rejects_moving_dir_into_own_subtree() {
        let mut fs = FileSystem::new_posix();
        fs.mkdir("/a").unwrap();
        fs.mkdir("/a/b").unwrap();
        assert_eq!(
            fs.rename("/a", "/a/b/c").unwrap_err(),
            FsError::InvalidPath
        );
        assert_eq!(fs.rename("/a", "/a/c").unwrap_err(), FsError::InvalidPath);
        assert_eq!(fs.rename("/a", "/a").unwrap_err(), FsError::Exists);
        // The tree must be untouched: still well formed, nothing orphaned.
        fs.validate_tree().unwrap();
        assert!(fs.exists("/a/b"));

        // Case-insensitive variants must apply the same guard case-folded.
        let mut win = FileSystem::new_windows();
        win.mkdir("/D").unwrap();
        assert_eq!(win.rename("/d", "/D/e").unwrap_err(), FsError::InvalidPath);
        win.validate_tree().unwrap();
    }

    #[test]
    fn seek_semantics() {
        let mut fs = fs_with_file("/s", b"0123456789");
        let ofd = fs.open("/s", OpenOptions::read_write()).unwrap();
        assert_eq!(fs.seek(ofd, SeekFrom::End(-2)).unwrap(), 8);
        let mut b = [0u8; 2];
        fs.read(ofd, &mut b).unwrap();
        assert_eq!(&b, b"89");
        assert_eq!(fs.seek(ofd, SeekFrom::Current(-4)).unwrap(), 6);
        assert_eq!(
            fs.seek(ofd, SeekFrom::Current(-100)).unwrap_err(),
            FsError::InvalidSeek
        );
        // Seeking past EOF then writing produces a sparse (zero-filled) gap.
        fs.seek(ofd, SeekFrom::Start(12)).unwrap();
        fs.write(ofd, b"XY").unwrap();
        assert_eq!(fs.size_of(ofd).unwrap(), 14);
    }

    #[test]
    fn append_mode_writes_at_eof() {
        let mut fs = fs_with_file("/log", b"start");
        let ofd = fs.open("/log", OpenOptions::write_only().append(true)).unwrap();
        fs.seek(ofd, SeekFrom::Start(0)).unwrap();
        fs.write(ofd, b"+more").unwrap();
        let r = fs.open("/log", OpenOptions::read_only()).unwrap();
        let mut buf = [0u8; 10];
        assert_eq!(fs.read(r, &mut buf).unwrap(), 10);
        assert_eq!(&buf, b"start+more");
    }

    #[test]
    fn read_on_write_only_descriptor_fails() {
        let mut fs = fs_with_file("/f", b"x");
        let w = fs.open("/f", OpenOptions::write_only()).unwrap();
        let mut b = [0u8; 1];
        assert_eq!(fs.read(w, &mut b).unwrap_err(), FsError::BadAccessMode);
        assert_eq!(fs.write(w, b"y").unwrap(), 1);
        let r = fs.open("/f", OpenOptions::read_only()).unwrap();
        assert_eq!(fs.write(r, b"z").unwrap_err(), FsError::BadAccessMode);
    }

    #[test]
    fn bad_descriptor_rejected() {
        let mut fs = FileSystem::new_posix();
        let mut b = [0u8; 1];
        assert_eq!(fs.read(999, &mut b).unwrap_err(), FsError::BadDescriptor);
        assert_eq!(fs.close(999).unwrap_err(), FsError::BadDescriptor);
        assert_eq!(fs.dup(999).unwrap_err(), FsError::BadDescriptor);
    }

    #[test]
    fn dup_shares_file_but_copies_offset() {
        let mut fs = fs_with_file("/f", b"abcdef");
        let a = fs.open("/f", OpenOptions::read_only()).unwrap();
        let mut b1 = [0u8; 2];
        fs.read(a, &mut b1).unwrap();
        let b = fs.dup(a).unwrap();
        let mut b2 = [0u8; 2];
        fs.read(b, &mut b2).unwrap();
        assert_eq!(&b2, b"cd"); // continues from copied offset
        assert_eq!(fs.open_count(), 2);
    }

    #[test]
    fn list_dir_sorted() {
        let mut fs = FileSystem::new_posix();
        fs.mkdir("/d").unwrap();
        fs.create_file("/d/zeta", vec![]).unwrap();
        fs.create_file("/d/alpha", vec![]).unwrap();
        assert_eq!(fs.list_dir("/d").unwrap(), vec!["alpha", "zeta"]);
    }

    #[test]
    fn open_limit_enforced() {
        let mut fs = fs_with_file("/limited", b"x");
        fs.set_open_limit(Some(2));
        let a = fs.open("/limited", OpenOptions::read_only()).unwrap();
        let _b = fs.open("/limited", OpenOptions::read_only()).unwrap();
        assert_eq!(
            fs.open("/limited", OpenOptions::read_only()).unwrap_err(),
            FsError::TooManyOpen
        );
        assert_eq!(fs.dup(a).unwrap_err(), FsError::TooManyOpen);
        // Closing frees a slot.
        fs.close(a).unwrap();
        assert!(fs.open("/limited", OpenOptions::read_only()).is_ok());
        // Lifting the limit restores unlimited behaviour.
        fs.set_open_limit(None);
        for _ in 0..10 {
            fs.open("/limited", OpenOptions::read_only()).unwrap();
        }
    }

    #[test]
    fn timestamps_follow_clock() {
        let mut fs = FileSystem::new_posix();
        fs.set_now_ms(100);
        fs.create_file("/t", vec![]).unwrap();
        assert_eq!(fs.stat("/t").unwrap().attrs.created_ms, 100);
        fs.set_now_ms(200);
        let ofd = fs.open("/t", OpenOptions::write_only()).unwrap();
        fs.write(ofd, b"x").unwrap();
        assert_eq!(fs.stat("/t").unwrap().attrs.modified_ms, 200);
    }
}
