//! Kernel-subsystem attribution for the telemetry profiling hooks.
//!
//! Every unit of watchdog fuel a simulated call burns is charged to one
//! of a fixed set of kernel subsystems. The attribution is *exact and
//! deterministic* — fuel is simulated work, never wall clock — so a
//! profile built from these counters is bit-reproducible, unlike a
//! sampled host-time profile. The Ballista telemetry layer reads the
//! per-case [`SubsystemFuel`] ledger after each test case and folds it
//! into a per-MuT-family collapsed-stack profile ready for
//! `inferno`/flamegraph (see `OBSERVABILITY.md`).

use serde::{Deserialize, Serialize};
use std::fmt;

/// The kernel subsystem a unit of simulated work is attributed to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Subsystem {
    /// Heap and virtual-memory management (`Heap*`, `VirtualAlloc`,
    /// `malloc`, `mmap`).
    Heap,
    /// Filesystem and path operations (`CreateFile`, directory calls,
    /// `open`, `stat`).
    Fs,
    /// Synchronization objects and handle-level waits (`CreateMutex`,
    /// `WaitForSingleObject`, semaphores).
    Sync,
    /// Process and thread control (`CreateProcess`, `GetThreadContext`,
    /// `fork`, scheduling).
    Process,
    /// Time and calendar conversions (`FileTimeToSystemTime`,
    /// `GetTickCount`, `time`).
    Time,
    /// Simulated blocking — fuel burned while a call waits or sleeps
    /// ([`crate::Kernel::step_for`] / [`crate::Kernel::burn`]).
    Wait,
    /// Everything not yet attributed to a specific subsystem (string and
    /// character routines, environment queries, marshalling).
    Other,
}

impl Subsystem {
    /// Number of subsystems (the length of a [`SubsystemFuel`] ledger).
    pub const COUNT: usize = 7;

    /// All subsystems, in ledger order.
    pub const ALL: [Subsystem; Subsystem::COUNT] = [
        Subsystem::Heap,
        Subsystem::Fs,
        Subsystem::Sync,
        Subsystem::Process,
        Subsystem::Time,
        Subsystem::Wait,
        Subsystem::Other,
    ];

    /// The ledger slot for this subsystem.
    #[must_use]
    pub fn index(self) -> usize {
        match self {
            Subsystem::Heap => 0,
            Subsystem::Fs => 1,
            Subsystem::Sync => 2,
            Subsystem::Process => 3,
            Subsystem::Time => 4,
            Subsystem::Wait => 5,
            Subsystem::Other => 6,
        }
    }

    /// Stable lower-case label used in collapsed-stack frames.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Subsystem::Heap => "heap",
            Subsystem::Fs => "fs",
            Subsystem::Sync => "sync",
            Subsystem::Process => "process",
            Subsystem::Time => "time",
            Subsystem::Wait => "wait",
            Subsystem::Other => "other",
        }
    }
}

impl fmt::Display for Subsystem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Per-machine ledger of fuel burned per subsystem.
///
/// Lives on the [`crate::Kernel`] alongside the fuel meter; zeroed on a
/// fresh boot (and therefore in every boot template), so after a test
/// case it holds exactly that case's attribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct SubsystemFuel {
    /// Fuel units charged per subsystem, indexed by [`Subsystem::index`].
    pub units: [u64; Subsystem::COUNT],
}

impl SubsystemFuel {
    /// A zeroed ledger.
    #[must_use]
    pub fn new() -> Self {
        SubsystemFuel::default()
    }

    /// Charges `units` of fuel to `sub` (saturating).
    pub fn charge(&mut self, sub: Subsystem, units: u64) {
        let slot = &mut self.units[sub.index()];
        *slot = slot.saturating_add(units);
    }

    /// Fuel charged to `sub` so far.
    #[must_use]
    pub fn charged(&self, sub: Subsystem) -> u64 {
        self.units[sub.index()]
    }

    /// Total fuel across all subsystems.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.units.iter().copied().fold(0u64, u64::saturating_add)
    }

    /// `(subsystem, fuel)` pairs for the non-zero slots, in ledger order.
    #[must_use]
    pub fn entries(&self) -> Vec<(Subsystem, u64)> {
        Subsystem::ALL
            .iter()
            .copied()
            .filter(|s| self.charged(*s) > 0)
            .map(|s| (s, self.charged(s)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ledger_charges_and_totals() {
        let mut l = SubsystemFuel::new();
        l.charge(Subsystem::Heap, 3);
        l.charge(Subsystem::Heap, 2);
        l.charge(Subsystem::Wait, 100);
        assert_eq!(l.charged(Subsystem::Heap), 5);
        assert_eq!(l.charged(Subsystem::Fs), 0);
        assert_eq!(l.total(), 105);
        assert_eq!(
            l.entries(),
            vec![(Subsystem::Heap, 5), (Subsystem::Wait, 100)]
        );
    }

    #[test]
    fn indices_are_a_bijection() {
        for (i, s) in Subsystem::ALL.iter().enumerate() {
            assert_eq!(s.index(), i);
        }
        let labels: std::collections::BTreeSet<_> =
            Subsystem::ALL.iter().map(|s| s.label()).collect();
        assert_eq!(labels.len(), Subsystem::COUNT);
    }

    #[test]
    fn charge_saturates() {
        let mut l = SubsystemFuel::new();
        l.charge(Subsystem::Other, u64::MAX);
        l.charge(Subsystem::Other, 10);
        assert_eq!(l.charged(Subsystem::Other), u64::MAX);
    }
}
