//! Bounded crash-image construction over a recorded filesystem op log.
//!
//! This is the sim-kernel half of the B3 port ("Finding Crash-Consistency
//! Bugs with Bounded Black-Box Crash Testing"): given the [`FsOp`] log one
//! test case recorded, enumerate every bounded crash point, build the
//! filesystem image a crash at that point would leave behind, and "remount"
//! it. The consistency *oracles* live in `ballista::crashcon`, judged
//! against the independent flat model in this module — the image is built
//! by replaying ops through the real [`FileSystem`] mutators while the
//! model is a pure fold over the same ops, so a filesystem bug shows up as
//! a divergence instead of being believed twice.
//!
//! Crash points are bounded two ways, both faithful to B3:
//!
//! * the op log itself is capped at [`crate::fs::MAX_OPLOG`] ops, and
//! * reordering is limited to dropping **one** op from a window of
//!   [`REORDER_WINDOW`] ops immediately before the crash — and never an op
//!   at or before the last durability [`FsOp::Barrier`], so the flushed
//!   prefix survives every simulated crash by construction.

use crate::fs::{FileSystem, FsOp, OpenOptions, SeekFrom};
use std::collections::BTreeMap;

/// How many trailing (unflushed) ops are eligible for drop-one reordering
/// at each crash point. B3's `seq-2`/`seq-3` bounds motivate a small
/// constant; 3 keeps enumeration linear-ish while still exercising the
/// remove-then-insert window inside `rename`.
pub const REORDER_WINDOW: usize = 3;

/// One simulated crash: persist `ops[..keep]`, optionally dropping the op
/// at index `dropped` (always `>` the last barrier index and within
/// [`REORDER_WINDOW`] of `keep`) to model an unflushed write the disk
/// reordered past the crash.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashPoint {
    /// Number of leading ops that reached the disk.
    pub keep: usize,
    /// Index of one op inside the kept prefix that did *not* reach the
    /// disk (bounded reordering), or `None` for a pure prefix crash.
    pub dropped: Option<usize>,
}

/// Enumerates every bounded crash point of an op log, in deterministic
/// order: for each prefix length the pure-prefix point first, then the
/// drop-one variants nearest the crash first.
#[must_use]
pub fn crash_points(ops: &[FsOp]) -> Vec<CrashPoint> {
    let mut points = Vec::new();
    let mut last_barrier: Option<usize> = None;
    for keep in 0..=ops.len() {
        points.push(CrashPoint { keep, dropped: None });
        if keep >= 2 {
            // Drop-one candidates: strictly after the last barrier inside
            // the prefix, within the reorder window, and not the final op
            // (dropping ops[keep-1] is just the `keep-1` prefix point).
            let floor = last_barrier.map_or(0, |b| b + 1);
            let lo = floor.max(keep.saturating_sub(REORDER_WINDOW + 1));
            for j in (lo..keep - 1).rev() {
                if !ops[j].is_barrier() {
                    points.push(CrashPoint {
                        keep,
                        dropped: Some(j),
                    });
                }
            }
        }
        if keep < ops.len() && ops[keep].is_barrier() {
            last_barrier = Some(keep);
        }
    }
    points
}

/// Index of the last [`FsOp::Barrier`] within `ops[..keep]`, if any. Ops
/// up to and including that barrier form the *flushed prefix* the
/// durability oracle holds every crash image to.
#[must_use]
pub fn last_barrier_in_prefix(ops: &[FsOp], keep: usize) -> Option<usize> {
    ops[..keep].iter().rposition(FsOp::is_barrier)
}

/// Replays recorded ops onto `fs` through the real filesystem mutators,
/// materializing the post-crash image for one [`CrashPoint`]. Ops whose
/// *structural* preconditions no longer hold (possible only after a drop)
/// fail exactly as the real mutator fails and are skipped — a crashed disk
/// does not half-apply an update it never received. The read-only
/// attribute is cleared before replaying each data op: a recorded op
/// already reached the disk when it ran (possibly through a descriptor
/// opened before the attribute flipped), attribute bits cannot veto raw
/// sectors, and the flat model deliberately does not track them.
///
/// `break_rename` is the seeded fault for the oracle's own test: a broken
/// rename removes the source but loses the destination insert — precisely
/// the torn state the two-step `rename` would leak if a crash were
/// possible between its halves.
pub fn apply_ops(fs: &mut FileSystem, ops: &[FsOp], point: CrashPoint, break_rename: bool) {
    for (i, op) in ops[..point.keep].iter().enumerate() {
        if point.dropped == Some(i) {
            continue;
        }
        match op {
            FsOp::CreateFile { path, content, at_ms } => {
                fs.set_now_ms(*at_ms);
                let _ = fs.create_file(path, content.clone());
            }
            FsOp::Mkdir { path, at_ms } => {
                fs.set_now_ms(*at_ms);
                let _ = fs.mkdir(path);
            }
            FsOp::Rmdir { path, at_ms } => {
                fs.set_now_ms(*at_ms);
                let _ = fs.rmdir(path);
            }
            FsOp::Unlink { path, at_ms } => {
                fs.set_now_ms(*at_ms);
                let _ = fs.set_readonly(path, false);
                let _ = fs.unlink(path);
            }
            FsOp::Rename { from, to, at_ms } => {
                fs.set_now_ms(*at_ms);
                if fs.rename(from, to).is_ok() && break_rename {
                    remove_tree(fs, to);
                }
            }
            FsOp::SetReadonly { path, readonly, at_ms } => {
                fs.set_now_ms(*at_ms);
                let _ = fs.set_readonly(path, *readonly);
            }
            FsOp::Truncate { path, at_ms } => {
                fs.set_now_ms(*at_ms);
                let _ = fs.set_readonly(path, false);
                let _ = fs.open(path, OpenOptions::write_only().truncate(true))
                    .and_then(|ofd| fs.close(ofd));
            }
            FsOp::Write { path, offset, data, at_ms } => {
                fs.set_now_ms(*at_ms);
                let _ = fs.set_readonly(path, false);
                if let Ok(ofd) = fs.open(path, OpenOptions::write_only()) {
                    let _ = fs
                        .seek(ofd, SeekFrom::Start(*offset))
                        .and_then(|_| fs.write(ofd, data));
                    let _ = fs.close(ofd);
                }
            }
            FsOp::Barrier { .. } => {}
        }
    }
}

/// Removes a path and everything under it, clearing read-only bits as it
/// goes. Only the seeded broken-rename fault uses this — it models the
/// destination subtree never reaching the disk.
fn remove_tree(fs: &mut FileSystem, path: &str) {
    let _ = fs.set_readonly(path, false);
    if let Ok(children) = fs.list_dir(path) {
        for child in children {
            remove_tree(fs, &format!("{path}/{child}"));
        }
        let _ = fs.rmdir(path);
    } else {
        let _ = fs.unlink(path);
    }
}

/// One entry of the independent flat model: what a path should hold.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpecNode {
    /// A directory.
    Dir,
    /// A regular file with exactly this content.
    File(Vec<u8>),
}

/// The independent flat model of a filesystem tree: normalized absolute
/// path → expected node, root implicit. Built two ways that must agree —
/// [`spec_of_ops`] folds the op log purely (no [`FileSystem`] code), and
/// [`flatten`] walks a real remounted image. The crashcon oracles compare
/// them.
pub type SpecTree = BTreeMap<String, SpecNode>;

fn spec_parent_ok(spec: &SpecTree, path: &str) -> bool {
    match path.rfind('/') {
        Some(0) | None => true, // parent is the root
        Some(i) => matches!(spec.get(&path[..i]), Some(SpecNode::Dir)),
    }
}

fn spec_has_children(spec: &SpecTree, path: &str) -> bool {
    let prefix = format!("{path}/");
    spec.range(prefix.clone()..).next().is_some_and(|(k, _)| k.starts_with(&prefix))
}

/// Pure fold of a (possibly drop-one-reordered) op log into the expected
/// tree, replicating the mutators' precondition checks on the flat map —
/// deliberately sharing no code with [`FileSystem`]. Read-only tracking is
/// intentionally out of model scope: attribute bits are metadata the
/// durability oracle does not judge, and `unlink` in a recorded log
/// already succeeded against the real attribute state.
#[must_use]
pub fn spec_of_ops(ops: &[FsOp], point: CrashPoint) -> SpecTree {
    spec_of_ops_from(SpecTree::new(), ops, point)
}

/// [`spec_of_ops`] folding on top of a base tree — the flat model of the
/// filesystem as it stood when recording started (see [`flatten_all`]).
/// Seeding with the boot image means ops over *pre-existing* paths (a
/// workload renaming `/README.TXT`, say) are modeled instead of silently
/// falling outside the oracle's domain.
#[must_use]
pub fn spec_of_ops_from(base: SpecTree, ops: &[FsOp], point: CrashPoint) -> SpecTree {
    let mut spec = base;
    for (i, op) in ops[..point.keep].iter().enumerate() {
        if point.dropped == Some(i) {
            continue;
        }
        match op {
            FsOp::CreateFile { path, content, .. } => {
                if spec_parent_ok(&spec, path) && !spec.contains_key(path) {
                    spec.insert(path.clone(), SpecNode::File(content.clone()));
                }
            }
            FsOp::Mkdir { path, .. } => {
                if spec_parent_ok(&spec, path) && !spec.contains_key(path) {
                    spec.insert(path.clone(), SpecNode::Dir);
                }
            }
            FsOp::Rmdir { path, .. } => {
                if matches!(spec.get(path), Some(SpecNode::Dir)) && !spec_has_children(&spec, path)
                {
                    spec.remove(path);
                }
            }
            FsOp::Unlink { path, .. } => {
                if matches!(spec.get(path), Some(SpecNode::File(_))) {
                    spec.remove(path);
                }
            }
            FsOp::Rename { from, to, .. } => {
                if spec.contains_key(from)
                    && spec_parent_ok(&spec, to)
                    && !spec.contains_key(to)
                    && !to.starts_with(&format!("{from}/"))
                {
                    // Move the node and its whole subtree.
                    let prefix = format!("{from}/");
                    let moved: Vec<(String, SpecNode)> = spec
                        .range(from.clone()..)
                        .take_while(|(k, _)| *k == from || k.starts_with(&prefix))
                        .map(|(k, v)| (k.clone(), v.clone()))
                        .collect();
                    for (k, _) in &moved {
                        spec.remove(k);
                    }
                    for (k, v) in moved {
                        let suffix = &k[from.len()..];
                        spec.insert(format!("{to}{suffix}"), v);
                    }
                }
            }
            FsOp::SetReadonly { .. } => {}
            FsOp::Truncate { path, .. } => {
                if let Some(SpecNode::File(content)) = spec.get_mut(path) {
                    content.clear();
                }
            }
            FsOp::Write { path, offset, data, .. } => {
                if let Some(SpecNode::File(content)) = spec.get_mut(path) {
                    let off = *offset as usize;
                    if off > content.len() {
                        content.resize(off, 0);
                    }
                    let overlap = (content.len() - off).min(data.len());
                    content[off..off + overlap].copy_from_slice(&data[..overlap]);
                    content.extend_from_slice(&data[overlap..]);
                }
            }
            FsOp::Barrier { .. } => {}
        }
    }
    spec
}

/// Flat model of an entire real filesystem tree, boot image included.
/// [`Verifier`](../../ballista/crashcon/struct.Verifier.html)-style
/// harnesses build this once from the pristine image and seed
/// [`spec_of_ops_from`] with it, so crash images are judged over
/// pre-existing paths too.
#[must_use]
pub fn flatten_all(fs: &FileSystem) -> SpecTree {
    fn walk(fs: &FileSystem, dir: &str, out: &mut SpecTree) {
        let Ok(children) = fs.list_dir(dir) else { return };
        for name in children {
            let path = if dir == "/" {
                format!("/{name}")
            } else {
                format!("{dir}/{name}")
            };
            match fs.stat(&path) {
                Ok(st) if st.is_dir => {
                    out.insert(path.clone(), SpecNode::Dir);
                    walk(fs, &path, out);
                }
                Ok(_) => {
                    if let Ok(content) = fs.read_file(&path) {
                        out.insert(path, SpecNode::File(content));
                    }
                }
                Err(_) => {}
            }
        }
    }
    let mut out = SpecTree::new();
    walk(fs, "/", &mut out);
    out
}

/// Walks a real filesystem into the flat model, restricted to paths the
/// spec knows about plus anything under them — the crashcon oracles only
/// judge state the recorded workload created; the boot image (motd,
/// README.TXT, …) is background.
///
/// # Errors
///
/// A description of the structural defect if the walk trips over one
/// (which the well-formedness oracle will have reported first).
pub fn flatten(fs: &FileSystem, under: &SpecTree) -> Result<SpecTree, String> {
    let mut out = SpecTree::new();
    for path in under.keys() {
        let Ok(stat) = fs.stat(path) else { continue };
        if stat.is_dir {
            out.insert(path.clone(), SpecNode::Dir);
        } else {
            let content = fs
                .read_file(path)
                .map_err(|e| format!("{path}: unreadable file: {e}"))?;
            out.insert(path.clone(), SpecNode::File(content));
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ops_demo() -> Vec<FsOp> {
        vec![
            FsOp::Mkdir { path: "/w".into(), at_ms: 1 },
            FsOp::CreateFile { path: "/w/a".into(), content: b"v1".to_vec(), at_ms: 2 },
            FsOp::Barrier { at_ms: 3 },
            FsOp::CreateFile { path: "/w/a.tmp".into(), content: b"v2".to_vec(), at_ms: 4 },
            FsOp::Unlink { path: "/w/a".into(), at_ms: 5 },
            FsOp::Rename { from: "/w/a.tmp".into(), to: "/w/a".into(), at_ms: 6 },
        ]
    }

    #[test]
    fn crash_points_bounded_and_deterministic() {
        let ops = ops_demo();
        let points = crash_points(&ops);
        let again = crash_points(&ops);
        assert_eq!(points, again);
        // Prefix points: one per boundary.
        assert_eq!(points.iter().filter(|p| p.dropped.is_none()).count(), ops.len() + 1);
        // No drop at or before the barrier (index 2), never the last op,
        // always within the window.
        for p in &points {
            if let Some(j) = p.dropped {
                if let Some(b) = last_barrier_in_prefix(&ops, p.keep) {
                    assert!(j > b, "dropped flushed op {j} (barrier at {b})");
                }
                assert!(j < p.keep - 1);
                assert!(p.keep - j <= REORDER_WINDOW + 1);
            }
        }
    }

    #[test]
    fn spec_and_replay_agree_on_full_log() {
        let ops = ops_demo();
        let full = CrashPoint { keep: ops.len(), dropped: None };
        let spec = spec_of_ops(&ops, full);
        let mut fs = FileSystem::new_posix();
        apply_ops(&mut fs, &ops, full, false);
        let image = flatten(&fs, &spec).unwrap();
        assert_eq!(image, spec);
        assert_eq!(spec.get("/w/a"), Some(&SpecNode::File(b"v2".to_vec())));
        assert!(!spec.contains_key("/w/a.tmp"));
    }

    #[test]
    fn broken_rename_diverges_from_spec() {
        let ops = ops_demo();
        let full = CrashPoint { keep: ops.len(), dropped: None };
        let spec = spec_of_ops(&ops, full);
        let mut fs = FileSystem::new_posix();
        apply_ops(&mut fs, &ops, full, true);
        let image = flatten(&fs, &spec).unwrap();
        assert_ne!(image, spec, "torn rename must be visible");
        assert!(!fs.exists("/w/a"), "destination lost by the broken rename");
    }

    #[test]
    fn dropping_an_unflushed_op_keeps_flushed_prefix() {
        let ops = ops_demo();
        // Crash after everything, with the unlink (index 4) lost.
        let point = CrashPoint { keep: ops.len(), dropped: Some(4) };
        let mut fs = FileSystem::new_posix();
        apply_ops(&mut fs, &ops, point, false);
        // The flushed "/w/a" = v1 was never unlinked; the rename then
        // failed (destination exists) — exactly what the spec predicts.
        let spec = spec_of_ops(&ops, point);
        let image = flatten(&fs, &spec).unwrap();
        assert_eq!(image, spec);
        assert_eq!(
            fs.read_file("/w/a").unwrap(),
            b"v1",
            "flushed write survived"
        );
    }
}
