//! Simulated time and the calendar math behind `FILETIME`, `SYSTEMTIME`
//! and `time_t`.
//!
//! Time-conversion calls are one of the paper's Catastrophic findings
//! (`FileTimeToSystemTime` crashes Windows 95 when handed hostile
//! arguments), so the substrate implements the real conversions — proleptic
//! Gregorian calendar math, not stubs — plus the validation boundaries
//! between the three representations.

use serde::{Deserialize, Serialize};

/// Seconds between the `FILETIME` epoch (1601-01-01) and the Unix epoch
/// (1970-01-01).
pub const FILETIME_UNIX_DELTA_SECS: u64 = 11_644_473_600;

/// `FILETIME` ticks (100 ns) per second.
pub const TICKS_PER_SEC: u64 = 10_000_000;

/// A `FILETIME`: 100-nanosecond intervals since 1601-01-01 00:00 UTC.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct FileTime(pub u64);

impl FileTime {
    /// Builds from the `(dwLowDateTime, dwHighDateTime)` pair Win32 uses.
    #[must_use]
    pub fn from_parts(low: u32, high: u32) -> Self {
        FileTime((u64::from(high) << 32) | u64::from(low))
    }

    /// The `(low, high)` pair.
    #[must_use]
    pub fn to_parts(self) -> (u32, u32) {
        (self.0 as u32, (self.0 >> 32) as u32)
    }

    /// Conversion from Unix seconds.
    #[must_use]
    pub fn from_unix_secs(secs: u64) -> Self {
        FileTime((secs + FILETIME_UNIX_DELTA_SECS) * TICKS_PER_SEC)
    }

    /// Conversion to Unix seconds; `None` for times before 1970.
    #[must_use]
    pub fn to_unix_secs(self) -> Option<u64> {
        (self.0 / TICKS_PER_SEC).checked_sub(FILETIME_UNIX_DELTA_SECS)
    }
}

/// A broken-down civil time (`SYSTEMTIME`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
#[allow(missing_docs)] // field names mirror the Win32 struct
pub struct SystemTime {
    pub year: u16,
    pub month: u16,
    pub day_of_week: u16,
    pub day: u16,
    pub hour: u16,
    pub minute: u16,
    pub second: u16,
    pub milliseconds: u16,
}

impl SystemTime {
    /// Whether all fields are within their documented ranges (including
    /// real month lengths and leap years). `day_of_week` is ignored on
    /// input, as real `SystemTimeToFileTime` ignores it.
    #[must_use]
    pub fn is_valid(&self) -> bool {
        if self.month < 1 || self.month > 12 {
            return false;
        }
        if self.year < 1601 || self.year > 30827 {
            return false;
        }
        let dim = days_in_month(i64::from(self.year), u32::from(self.month));
        if self.day < 1 || u32::from(self.day) > dim {
            return false;
        }
        self.hour < 24 && self.minute < 60 && self.second < 60 && self.milliseconds < 1000
    }
}

/// Days in `month` of `year` (proleptic Gregorian).
#[must_use]
pub fn days_in_month(year: i64, month: u32) -> u32 {
    match month {
        1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
        4 | 6 | 9 | 11 => 30,
        2 => {
            if is_leap_year(year) {
                29
            } else {
                28
            }
        }
        _ => 0,
    }
}

/// Gregorian leap-year rule.
#[must_use]
pub fn is_leap_year(year: i64) -> bool {
    year % 4 == 0 && (year % 100 != 0 || year % 400 == 0)
}

/// Days since 1970-01-01 for a civil date (Howard Hinnant's algorithm).
#[must_use]
pub fn days_from_civil(year: i64, month: u32, day: u32) -> i64 {
    let y = if month <= 2 { year - 1 } else { year };
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = y - era * 400;
    let mp = i64::from((month + 9) % 12);
    let doy = (153 * mp + 2) / 5 + i64::from(day) - 1;
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
    era * 146_097 + doe - 719_468
}

/// Civil date for days since 1970-01-01 (inverse of [`days_from_civil`]).
#[must_use]
pub fn civil_from_days(days: i64) -> (i64, u32, u32) {
    let z = days + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = z - era * 146_097;
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32;
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32;
    (if m <= 2 { y + 1 } else { y }, m, d)
}

/// Converts a `FILETIME` to a `SYSTEMTIME`.
///
/// Returns `None` for tick values past the representable `SYSTEMTIME` range
/// (year 30827), which is the error the robust implementations report.
#[must_use]
pub fn filetime_to_systemtime(ft: FileTime) -> Option<SystemTime> {
    let total_ms = ft.0 / 10_000;
    let ms = (total_ms % 1000) as u16;
    let total_secs = total_ms / 1000;
    let secs_of_day = total_secs % 86_400;
    let days_since_1601 = (total_secs / 86_400) as i64;
    // Days from 1601-01-01 to 1970-01-01:
    let unix_day_offset = -days_from_civil(1601, 1, 1);
    let days_since_unix = days_since_1601 - unix_day_offset;
    let (year, month, day) = civil_from_days(days_since_unix);
    if !(1601..=30_827).contains(&year) {
        return None;
    }
    // 1601-01-01 was a Monday (dow 1 in SYSTEMTIME encoding Sun=0).
    let dow = ((days_since_1601 % 7) + 1) % 7;
    Some(SystemTime {
        year: year as u16,
        month: month as u16,
        day_of_week: dow as u16,
        day: day as u16,
        hour: (secs_of_day / 3600) as u16,
        minute: (secs_of_day % 3600 / 60) as u16,
        second: (secs_of_day % 60) as u16,
        milliseconds: ms,
    })
}

/// Converts a `SYSTEMTIME` to a `FILETIME`, validating every field.
#[must_use]
pub fn systemtime_to_filetime(st: &SystemTime) -> Option<FileTime> {
    if !st.is_valid() {
        return None;
    }
    let days_since_unix = days_from_civil(i64::from(st.year), u32::from(st.month), u32::from(st.day));
    let days_since_1601 = days_since_unix - days_from_civil(1601, 1, 1);
    let secs = days_since_1601 as u64 * 86_400
        + u64::from(st.hour) * 3600
        + u64::from(st.minute) * 60
        + u64::from(st.second);
    Some(FileTime(secs * TICKS_PER_SEC + u64::from(st.milliseconds) * 10_000))
}

/// The per-case execution-fuel meter behind the harness watchdog.
///
/// The paper's harness watched for hung test tasks with a timer and
/// restarted them; a wall-clock watchdog would make outcomes depend on
/// host load, so the simulator meters *simulated work* instead. Every
/// kernel step burns fuel, and a machine that exhausts its budget turns
/// the in-flight call into a hang (`ApiAbort::Hang` → the paper's
/// Restart class). Fuel consumed is a pure function of the test case, so
/// the watchdog fires identically on every host, at every parallelism,
/// and on every resume.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FuelMeter {
    /// Units available to the current test case. [`u64::MAX`] means
    /// unlimited (the boot-template state; the executor installs a real
    /// budget per case).
    budget: u64,
    /// Units burned so far (saturating).
    consumed: u64,
}

impl FuelMeter {
    /// A meter that never exhausts — the state a freshly booted machine
    /// carries until the executor installs a per-case budget.
    #[must_use]
    pub fn unlimited() -> Self {
        FuelMeter {
            budget: u64::MAX,
            consumed: 0,
        }
    }

    /// A meter with `budget` units of simulated work.
    #[must_use]
    pub fn with_budget(budget: u64) -> Self {
        FuelMeter {
            budget,
            consumed: 0,
        }
    }

    /// Burns `units` of fuel. Returns `true` while the budget holds,
    /// `false` once the meter is exhausted. Consumption saturates, so a
    /// runaway caller cannot wrap the meter back to health.
    pub fn consume(&mut self, units: u64) -> bool {
        self.consumed = self.consumed.saturating_add(units);
        !self.exhausted()
    }

    /// Whether the budget has been exceeded.
    #[must_use]
    pub fn exhausted(&self) -> bool {
        self.consumed > self.budget
    }

    /// Units burned so far.
    #[must_use]
    pub fn consumed(&self) -> u64 {
        self.consumed
    }

    /// The installed budget ([`u64::MAX`] = unlimited).
    #[must_use]
    pub fn budget(&self) -> u64 {
        self.budget
    }
}

impl Default for FuelMeter {
    fn default() -> Self {
        Self::unlimited()
    }
}

/// The simulated wall clock and monotonic tick counter.
///
/// Starts at a fixed, deterministic instant (2000-01-01 00:00 UTC — the
/// year the paper was published) so campaigns are reproducible.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Clock {
    /// Milliseconds since simulated boot.
    boot_ms: u64,
    /// Unix seconds at simulated boot.
    epoch_at_boot: u64,
}

impl Default for Clock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock {
    /// Unix timestamp of the deterministic boot instant (2000-01-01).
    pub const BOOT_UNIX_SECS: u64 = 946_684_800;

    /// A clock at the boot instant.
    #[must_use]
    pub fn new() -> Self {
        Clock {
            boot_ms: 0,
            epoch_at_boot: Self::BOOT_UNIX_SECS,
        }
    }

    /// Milliseconds since simulated boot (`GetTickCount`).
    #[must_use]
    pub fn tick_count_ms(&self) -> u64 {
        self.boot_ms
    }

    /// Current Unix time in seconds (`time()`).
    #[must_use]
    pub fn unix_secs(&self) -> u64 {
        self.epoch_at_boot + self.boot_ms / 1000
    }

    /// Current time as a `FILETIME` (`GetSystemTimeAsFileTime`).
    #[must_use]
    pub fn filetime(&self) -> FileTime {
        FileTime::from_unix_secs(self.unix_secs())
    }

    /// Advances simulated time (the executor charges each call a tick so
    /// timestamps move).
    pub fn advance_ms(&mut self, ms: u64) {
        self.boot_ms += ms;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn civil_roundtrip_known_dates() {
        assert_eq!(days_from_civil(1970, 1, 1), 0);
        assert_eq!(days_from_civil(2000, 1, 1), 10_957);
        assert_eq!(civil_from_days(0), (1970, 1, 1));
        assert_eq!(civil_from_days(10_957), (2000, 1, 1));
        assert_eq!(civil_from_days(days_from_civil(1601, 1, 1)), (1601, 1, 1));
    }

    #[test]
    fn leap_years() {
        assert!(is_leap_year(2000));
        assert!(!is_leap_year(1900));
        assert!(is_leap_year(1996));
        assert!(!is_leap_year(1999));
        assert_eq!(days_in_month(2000, 2), 29);
        assert_eq!(days_in_month(1999, 2), 28);
        assert_eq!(days_in_month(2000, 4), 30);
        assert_eq!(days_in_month(2000, 13), 0);
    }

    #[test]
    fn filetime_unix_conversion() {
        let ft = FileTime::from_unix_secs(0);
        assert_eq!(ft.0, FILETIME_UNIX_DELTA_SECS * TICKS_PER_SEC);
        assert_eq!(ft.to_unix_secs(), Some(0));
        assert_eq!(FileTime(0).to_unix_secs(), None); // before 1970
    }

    #[test]
    fn filetime_parts_roundtrip() {
        let ft = FileTime(0x0123_4567_89AB_CDEF);
        let (lo, hi) = ft.to_parts();
        assert_eq!(FileTime::from_parts(lo, hi), ft);
        assert_eq!(lo, 0x89AB_CDEF);
        assert_eq!(hi, 0x0123_4567);
    }

    #[test]
    fn filetime_to_systemtime_epoch() {
        // The FILETIME epoch itself.
        let st = filetime_to_systemtime(FileTime(0)).unwrap();
        assert_eq!((st.year, st.month, st.day), (1601, 1, 1));
        assert_eq!(st.day_of_week, 1); // Monday
        assert_eq!((st.hour, st.minute, st.second, st.milliseconds), (0, 0, 0, 0));
    }

    #[test]
    fn known_date_roundtrip() {
        let st = SystemTime {
            year: 2000,
            month: 6,
            day_of_week: 0,
            day: 25, // DSN 2000 began June 25 — a Sunday
            hour: 9,
            minute: 30,
            second: 15,
            milliseconds: 250,
        };
        let ft = systemtime_to_filetime(&st).unwrap();
        let back = filetime_to_systemtime(ft).unwrap();
        assert_eq!((back.year, back.month, back.day), (2000, 6, 25));
        assert_eq!(back.day_of_week, 0); // Sunday
        assert_eq!(
            (back.hour, back.minute, back.second, back.milliseconds),
            (9, 30, 15, 250)
        );
    }

    #[test]
    fn invalid_systemtime_rejected() {
        let mut st = SystemTime {
            year: 2000,
            month: 2,
            day: 30, // February 30 does not exist
            ..SystemTime::default()
        };
        assert!(systemtime_to_filetime(&st).is_none());
        st.day = 29; // leap year: fine
        assert!(systemtime_to_filetime(&st).is_some());
        st.year = 1999;
        assert!(systemtime_to_filetime(&st).is_none()); // not a leap year
        st = SystemTime {
            year: 2000,
            month: 13,
            day: 1,
            ..SystemTime::default()
        };
        assert!(systemtime_to_filetime(&st).is_none());
        st = SystemTime {
            year: 1600,
            month: 1,
            day: 1,
            ..SystemTime::default()
        };
        assert!(systemtime_to_filetime(&st).is_none()); // before FILETIME epoch
        st = SystemTime {
            year: 2000,
            month: 1,
            day: 1,
            hour: 24,
            ..SystemTime::default()
        };
        assert!(systemtime_to_filetime(&st).is_none());
    }

    #[test]
    fn huge_filetime_out_of_range() {
        assert!(filetime_to_systemtime(FileTime(u64::MAX)).is_none());
    }

    #[test]
    fn fuel_meter_exhausts_at_budget() {
        let mut f = FuelMeter::with_budget(10);
        assert!(f.consume(10), "exactly the budget is still alive");
        assert!(!f.exhausted());
        assert!(!f.consume(1), "one unit past the budget exhausts");
        assert!(f.exhausted());
        assert_eq!(f.consumed(), 11);
        assert_eq!(f.budget(), 10);
        // Exhaustion is sticky: no later consumption revives the meter.
        assert!(!f.consume(0));
    }

    #[test]
    fn fuel_meter_unlimited_never_exhausts() {
        let mut f = FuelMeter::unlimited();
        assert!(f.consume(u64::MAX));
        assert!(f.consume(u64::MAX), "consumption saturates, never wraps");
        assert!(!f.exhausted());
        assert_eq!(FuelMeter::default(), FuelMeter::unlimited());
    }

    #[test]
    fn clock_advances_deterministically() {
        let mut c = Clock::new();
        assert_eq!(c.unix_secs(), Clock::BOOT_UNIX_SECS);
        let st = filetime_to_systemtime(c.filetime()).unwrap();
        assert_eq!((st.year, st.month, st.day), (2000, 1, 1));
        c.advance_ms(2_500);
        assert_eq!(c.tick_count_ms(), 2_500);
        assert_eq!(c.unix_secs(), Clock::BOOT_UNIX_SECS + 2);
    }
}
