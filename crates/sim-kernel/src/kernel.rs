//! The [`Kernel`] facade: one simulated machine per test case.
//!
//! A `Kernel` bundles every subsystem into the unit of isolation the
//! Ballista executor creates and discards per test case — the simulator's
//! analog of the paper's process-per-test harness. It also carries the
//! *residue* counter that models the inter-test interference behind the
//! paper's `*`-marked Catastrophic failures (crashes reproducible only when
//! running the full test harness, not a single isolated case).

use crate::clock::{Clock, FuelMeter};
use crate::crash::CrashLatch;
use crate::outcome::ApiAbort;
use crate::subsystem::{Subsystem, SubsystemFuel};
use crate::env::Environment;
use crate::fs::FileSystem;
use crate::heap::{HeapId, HeapManager};
use crate::objects::{Handle, ObjectKind, ObjectTable};
use crate::process::ProcessTable;
use sim_core::memory::{AddressSpace, Protection};
use sim_core::SimPtr;

/// Filesystem / path personality of a machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MachineFlavor {
    /// Case-sensitive paths, lenient alignment (the Linux target).
    Posix,
    /// Case-insensitive paths, lenient alignment (desktop Windows).
    Windows,
    /// Case-insensitive paths, strict alignment (the Windows CE device).
    WindowsStrictAlign,
}

/// The complete simulated machine.
///
/// Fields are public by design: the API personality crates *are* the kernel
/// code and manipulate the subsystems directly, the way kernel modules
/// share a single address space.
#[derive(Debug, Clone, PartialEq)]
pub struct Kernel {
    /// The checked flat address space.
    pub space: AddressSpace,
    /// Kernel objects + handle table.
    pub objects: ObjectTable,
    /// The in-memory filesystem.
    pub fs: FileSystem,
    /// Processes and threads.
    pub procs: ProcessTable,
    /// All heaps.
    pub heaps: HeapManager,
    /// Simulated wall clock.
    pub clock: Clock,
    /// The watchdog's execution-fuel meter. Boots unlimited; the test
    /// executor installs a per-case budget so runaway calls surface as
    /// deterministic hangs instead of wedging a harness worker.
    pub fuel: FuelMeter,
    /// Per-subsystem attribution of the fuel burned on this machine.
    /// Zeroed at boot (machines are fresh per test case), so after a case
    /// it holds exactly that case's subsystem breakdown — the raw data
    /// behind the telemetry layer's flamegraph profile.
    pub subsys: SubsystemFuel,
    /// Environment block.
    pub env: Environment,
    /// The kernel-panic latch (Catastrophic outcomes).
    pub crash: CrashLatch,
    /// Accumulated uncleaned state from earlier test cases in the same
    /// harness run. Zero on a fresh machine; the executor raises it when
    /// cleanup between cases is imperfect. Vulnerabilities marked
    /// "interference-dependent" only fire above a threshold, reproducing
    /// the paper's `*` entries.
    pub residue: u32,
    /// Set when a simulated API consulted [`Kernel::residue`] through
    /// [`Kernel::probe_residue`] while deciding an outcome. The parallel
    /// campaign engine uses this to know which cases may depend on
    /// cross-case interference (and so must be replayed in session
    /// order); everything else is provably order-independent.
    pub residue_probed: bool,
    /// The process default heap (`GetProcessHeap` / `malloc` arena).
    pub default_heap: HeapId,
    /// Standard-stream handles (`GetStdHandle`).
    pub std_handles: [Handle; 3],
    /// Scratch state for user-space runtime libraries built on this kernel
    /// (e.g. the C library's `strtok` saved pointer or `tmpnam` counter),
    /// keyed by a library-chosen name.
    pub scratch: std::collections::BTreeMap<String, u64>,
}

impl Kernel {
    /// Boots a POSIX-flavoured machine.
    #[must_use]
    pub fn new() -> Self {
        Self::with_flavor(MachineFlavor::Posix)
    }

    /// Boots a machine with the given flavour.
    #[must_use]
    pub fn with_flavor(flavor: MachineFlavor) -> Self {
        let space = match flavor {
            MachineFlavor::WindowsStrictAlign => AddressSpace::with_strict_alignment(),
            _ => AddressSpace::new(),
        };
        let fs = match flavor {
            MachineFlavor::Posix => FileSystem::new_posix(),
            _ => FileSystem::new_windows(),
        };
        let mut heaps = HeapManager::new();
        let default_heap = heaps.create(0, 0).expect("growable heap is always valid");
        let mut objects = ObjectTable::new();
        let std_handles = [
            objects.insert(ObjectKind::ConsoleStream { stream: 0 }),
            objects.insert(ObjectKind::ConsoleStream { stream: 1 }),
            objects.insert(ObjectKind::ConsoleStream { stream: 2 }),
        ];
        let mut kernel = Kernel {
            space,
            objects,
            fs,
            procs: ProcessTable::new(),
            heaps,
            clock: Clock::new(),
            fuel: FuelMeter::unlimited(),
            subsys: SubsystemFuel::new(),
            env: Environment::with_defaults(),
            crash: CrashLatch::new(),
            residue: 0,
            residue_probed: false,
            default_heap,
            std_handles,
            scratch: std::collections::BTreeMap::new(),
        };
        kernel.populate_fs(flavor);
        kernel
    }

    fn populate_fs(&mut self, flavor: MachineFlavor) {
        // A minimal world for path-based calls to act on.
        let dirs: &[&str] = match flavor {
            MachineFlavor::Posix => &["/tmp", "/home", "/home/ballista", "/etc"],
            _ => &["C:\\TEMP", "C:\\WINDOWS", "C:\\WINDOWS\\SYSTEM"],
        };
        for d in dirs {
            self.fs.mkdir(d).expect("fresh filesystem");
        }
        let readme = match flavor {
            MachineFlavor::Posix => "/etc/motd",
            _ => "C:\\WINDOWS\\README.TXT",
        };
        self.fs
            .create_file(readme, b"simulated machine for ballista testing\n".to_vec())
            .expect("fresh filesystem");
    }

    /// Allocates scratch user memory (helper for test-value constructors).
    ///
    /// # Panics
    ///
    /// Panics when the simulated address space is exhausted, which a
    /// fresh-per-test machine never hits.
    pub fn alloc_user(&mut self, len: u64, tag: &'static str) -> SimPtr {
        self.space
            .map(len, Protection::READ_WRITE, tag)
            .expect("fresh machine never exhausts user space")
    }

    /// Keeps the clock moving: every simulated call costs a tick, so
    /// timestamps and `GetTickCount` behave plausibly. The tick also
    /// burns one unit of watchdog fuel — a call-count bound on cases
    /// whose individual calls are all cheap. The unit is attributed to
    /// [`Subsystem::Other`]; subsystem entry points use
    /// [`Kernel::charge_call_to`] instead.
    pub fn charge_call(&mut self) {
        self.charge_call_to(Subsystem::Other);
    }

    /// [`Kernel::charge_call`] with an explicit subsystem attribution —
    /// the telemetry taps the API personality crates call at the top of
    /// every heap/fs/sync/process/time entry point.
    pub fn charge_call_to(&mut self, sub: Subsystem) {
        self.fuel.consume(1);
        self.subsys.charge(sub, 1);
        self.clock.advance_ms(1);
        let now = self.clock.tick_count_ms();
        self.fs.set_now_ms(now);
    }

    /// Burns `units` of watchdog fuel, attributed to
    /// [`Subsystem::Wait`] (bulk burns model blocked or sleeping time).
    ///
    /// # Errors
    ///
    /// [`ApiAbort::Hang`] once the per-case budget is exhausted: the
    /// simulated call has been running longer than the harness tolerates,
    /// and the watchdog converts it into the paper's Restart outcome.
    pub fn burn(&mut self, units: u64) -> Result<(), ApiAbort> {
        self.subsys.charge(Subsystem::Wait, units);
        if self.fuel.consume(units) {
            Ok(())
        } else {
            Err(ApiAbort::Hang)
        }
    }

    /// Runs the machine forward `ms` simulated milliseconds: burns the
    /// equivalent fuel, then advances the clock (capped at one minute so
    /// hostile durations cannot warp timestamps into the far future).
    ///
    /// # Errors
    ///
    /// [`ApiAbort::Hang`] when the fuel budget cannot cover `ms` — the
    /// watchdog fires *before* time moves, so a timed-out case leaves the
    /// clock where the hang was detected.
    pub fn step_for(&mut self, ms: u64) -> Result<(), ApiAbort> {
        self.burn(ms)?;
        self.clock.advance_ms(ms.min(60_000));
        let now = self.clock.tick_count_ms();
        self.fs.set_now_ms(now);
        Ok(())
    }

    /// Whether the machine is still alive (no Catastrophic event yet).
    #[must_use]
    pub fn is_alive(&self) -> bool {
        self.crash.is_alive()
    }

    /// Reads the residue counter *and records that the outcome now
    /// depends on it*. Simulated APIs must use this — never the field
    /// directly — when residue feeds an outcome decision, so the
    /// campaign engine can tell interference-sensitive cases apart.
    pub fn probe_residue(&mut self) -> u32 {
        self.residue_probed = true;
        self.residue
    }

    /// Captures this machine as a reusable boot image. The image's dirty
    /// journal is cleared: machines later reset against this snapshot track
    /// their deltas relative to *this* state.
    #[must_use]
    pub fn snapshot(&self) -> MachineSnapshot {
        let mut image = self.clone();
        image.space.mark_clean();
        MachineSnapshot { image }
    }
}

/// A captured machine image. Restoring is a structural clone — much
/// cheaper than re-running the boot sequence — and, because booting is
/// fully deterministic (no hashing, no time, no randomness anywhere in
/// the machine state), `snapshot().restore()` of a freshly booted
/// machine is indistinguishable from another fresh boot.
#[derive(Debug, Clone)]
pub struct MachineSnapshot {
    image: Kernel,
}

impl MachineSnapshot {
    /// A pre-booted snapshot for the given flavour.
    #[must_use]
    pub fn boot(flavor: MachineFlavor) -> Self {
        Kernel::with_flavor(flavor).snapshot()
    }

    /// Materializes a fresh machine from the image.
    #[must_use]
    pub fn restore(&self) -> Kernel {
        self.image.clone()
    }

    /// Resets `machine` — which must have started as a clone of this image
    /// (via [`MachineSnapshot::restore`] or an earlier `restore_into`) —
    /// back to the image state, undoing only what was touched.
    ///
    /// The address space rolls back its dirty-region journal in O(touched);
    /// each kernel subsystem is deep-cloned only when its generation stamp
    /// says a structural mutator ran since the image was captured; the
    /// scalar state (clock, fuel, attribution ledger, crash latch, residue,
    /// handles, scratch) is restored unconditionally. The result is
    /// indistinguishable from a fresh [`MachineSnapshot::restore`] — the
    /// invariant the `reset_in_place_matches_fresh_restore` proptest and
    /// the campaign engines' cross-engine bit-identity checks enforce.
    pub fn restore_into(&self, machine: &mut Kernel) {
        let img = &self.image;
        machine.space.reset_from(&img.space);
        if machine.fs.generation() != img.fs.generation() {
            // Node-tree dirt: only a deep clone restores file contents.
            machine.fs = img.fs.clone();
        } else {
            if machine.fs.open_generation() != img.fs.open_generation() {
                // Descriptor-table dirt only (opens, closes, offset moves):
                // reset the tiny open table, leave the node tree alone.
                machine.fs.reset_open_from(&img.fs);
            }
            // The timestamp source is fed on every simulated call and is
            // restored as a scalar exactly because it must not count as
            // structural dirt.
            machine.fs.set_now_ms(img.fs.now_ms());
        }
        if machine.objects.generation() != img.objects.generation() {
            machine.objects = img.objects.clone();
        }
        if machine.heaps.generation() != img.heaps.generation() {
            machine.heaps = img.heaps.clone();
        }
        if machine.procs.generation() != img.procs.generation() {
            machine.procs = img.procs.clone();
        }
        if machine.env.generation() != img.env.generation() {
            machine.env = img.env.clone();
        }
        machine.clock = img.clock.clone();
        machine.fuel = img.fuel;
        machine.subsys = img.subsys;
        if machine.crash != img.crash {
            machine.crash = img.crash.clone();
        }
        machine.residue = img.residue;
        machine.residue_probed = img.residue_probed;
        machine.default_heap = img.default_heap;
        machine.std_handles = img.std_handles;
        if !machine.scratch.is_empty() || !img.scratch.is_empty() {
            machine.scratch.clear();
            machine.scratch.extend(img.scratch.iter().map(|(k, v)| (k.clone(), *v)));
        }
    }
}

impl Default for Kernel {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boots_alive_with_world() {
        let k = Kernel::new();
        assert!(k.is_alive());
        assert!(k.fs.exists("/tmp"));
        assert!(k.fs.exists("/etc/motd"));
        assert_eq!(k.residue, 0);
        assert!(k.heaps.exists(k.default_heap));
    }

    #[test]
    fn windows_flavor_world() {
        let k = Kernel::with_flavor(MachineFlavor::Windows);
        assert!(k.fs.exists("c:\\temp"));
        assert!(k.fs.exists("C:\\WINDOWS\\README.TXT"));
        assert!(!k.space.strict_alignment());
    }

    #[test]
    fn ce_flavor_is_strict_aligned() {
        let k = Kernel::with_flavor(MachineFlavor::WindowsStrictAlign);
        assert!(k.space.strict_alignment());
    }

    #[test]
    fn std_handles_resolve() {
        let k = Kernel::with_flavor(MachineFlavor::Windows);
        for (i, h) in k.std_handles.iter().enumerate() {
            match k.objects.get(*h).unwrap() {
                ObjectKind::ConsoleStream { stream } => assert_eq!(*stream as usize, i),
                other => panic!("expected console stream, got {other:?}"),
            }
        }
    }

    #[test]
    fn charge_call_advances_clock_and_fs_time() {
        let mut k = Kernel::new();
        let t0 = k.clock.tick_count_ms();
        k.charge_call();
        k.charge_call();
        assert_eq!(k.clock.tick_count_ms(), t0 + 2);
        k.fs.create_file("/tmp/stamped", vec![]).unwrap();
        assert_eq!(k.fs.stat("/tmp/stamped").unwrap().attrs.created_ms, t0 + 2);
    }

    #[test]
    fn alloc_user_is_usable() {
        let mut k = Kernel::new();
        let p = k.alloc_user(16, "scratch");
        k.space.write_u32(p, 5).unwrap();
        assert_eq!(k.space.read_u32(p).unwrap(), 5);
    }

    #[test]
    fn probe_residue_sets_flag() {
        let mut k = Kernel::new();
        k.residue = 7;
        assert!(!k.residue_probed);
        assert_eq!(k.probe_residue(), 7);
        assert!(k.residue_probed);
    }

    #[test]
    fn fuel_watchdog_converts_runaway_steps_into_hang() {
        let mut k = Kernel::new();
        k.fuel = FuelMeter::with_budget(1_000);
        assert_eq!(k.step_for(900), Ok(()));
        assert_eq!(k.clock.tick_count_ms(), 900);
        // The next big step blows the budget: hang, clock frozen.
        assert_eq!(k.step_for(500_000), Err(ApiAbort::Hang));
        assert_eq!(k.clock.tick_count_ms(), 900, "time stops where the watchdog fired");
        assert!(k.fuel.exhausted());
        assert!(k.is_alive(), "a hang is a task outcome, not a machine crash");
    }

    #[test]
    fn step_for_caps_clock_advance_not_fuel() {
        let mut k = Kernel::new();
        k.fuel = FuelMeter::with_budget(10_000_000);
        assert_eq!(k.step_for(2_000_000), Ok(()));
        assert_eq!(k.clock.tick_count_ms(), 60_000, "clock advance is capped");
        assert_eq!(k.fuel.consumed(), 2_000_000, "fuel is charged in full");
    }

    #[test]
    fn charge_call_burns_one_fuel_unit() {
        let mut k = Kernel::new();
        k.fuel = FuelMeter::with_budget(100);
        let before = k.fuel.consumed();
        k.charge_call();
        assert_eq!(k.fuel.consumed(), before + 1);
    }

    #[test]
    fn snapshot_restore_matches_fresh_boot() {
        for flavor in [
            MachineFlavor::Posix,
            MachineFlavor::Windows,
            MachineFlavor::WindowsStrictAlign,
        ] {
            let snap = MachineSnapshot::boot(flavor);
            let restored = snap.restore();
            let booted = Kernel::with_flavor(flavor);
            assert!(restored.is_alive());
            assert_eq!(restored.residue, 0);
            assert!(!restored.residue_probed);
            assert_eq!(
                restored.clock.tick_count_ms(),
                booted.clock.tick_count_ms()
            );
            // The boot-time world is present and identical.
            let probe = match flavor {
                MachineFlavor::Posix => "/etc/motd",
                _ => "C:\\WINDOWS\\README.TXT",
            };
            assert!(restored.fs.exists(probe));
            assert_eq!(
                restored.fs.stat(probe).unwrap().attrs,
                booted.fs.stat(probe).unwrap().attrs
            );
            assert_eq!(restored.std_handles, booted.std_handles);
        }
    }

    #[test]
    fn restore_into_matches_fresh_restore_after_heavy_mutation() {
        for flavor in [
            MachineFlavor::Posix,
            MachineFlavor::Windows,
            MachineFlavor::WindowsStrictAlign,
        ] {
            let snap = MachineSnapshot::boot(flavor);
            let mut m = snap.restore();
            // Touch every subsystem the way a hostile test case would.
            m.fuel = FuelMeter::with_budget(10_000);
            m.residue = 3;
            let p = m.alloc_user(64, "case-buf");
            m.space.write_u32(p, 0xDEAD_BEEF).unwrap();
            let hp = m.heaps.create(0, 0).unwrap();
            let q = m.heaps.alloc(hp, 32, &mut m.space).unwrap();
            m.space.write_u8(q, 1).unwrap();
            let dir = match flavor {
                MachineFlavor::Posix => "/tmp/newdir",
                _ => "C:\\TEMP\\NEWDIR",
            };
            m.fs.mkdir(dir).unwrap();
            let h = m.objects.insert(ObjectKind::Heap(hp));
            m.env.set("CASE", "1").unwrap();
            let pid = m.procs.spawn_process(m.procs.current_pid(), "child");
            m.procs.terminate(pid, 1).unwrap();
            m.charge_call();
            m.probe_residue();
            m.scratch.insert("strtok".into(), 42);
            m.crash.panic("call", "reason", None);
            assert!(m.objects.get(h).is_ok());

            snap.restore_into(&mut m);
            assert_eq!(m, snap.restore(), "reset-in-place == fresh restore");
            assert!(m.is_alive());
            assert!(!m.fs.exists(dir));
            assert!(m.space.read_u32(p).is_err());
        }
    }

    #[test]
    fn restore_into_untouched_machine_skips_subsystem_clones() {
        let snap = MachineSnapshot::boot(MachineFlavor::Windows);
        let mut m = snap.restore();
        // A read-only case: charges calls but mutates nothing structural.
        m.fuel = FuelMeter::with_budget(100);
        m.charge_call();
        let fs_gen = m.fs.generation();
        snap.restore_into(&mut m);
        assert_eq!(m, snap.restore());
        assert_eq!(m.fs.generation(), fs_gen, "no clone: generation stamp kept");
    }

    #[test]
    fn restore_into_is_reusable_across_many_cases() {
        let snap = MachineSnapshot::boot(MachineFlavor::Posix);
        let mut m = snap.restore();
        for i in 0..10 {
            let p = m.alloc_user(16, "loop");
            m.space.write_u64(p, i).unwrap();
            m.fs.create_file("/tmp/f", vec![1, 2, 3]).unwrap();
            snap.restore_into(&mut m);
        }
        assert_eq!(m, snap.restore());
    }

    #[test]
    fn restored_machines_are_independent() {
        let snap = MachineSnapshot::boot(MachineFlavor::Posix);
        let mut a = snap.restore();
        a.fs.create_file("/tmp/only-in-a", vec![]).unwrap();
        let b = snap.restore();
        assert!(!b.fs.exists("/tmp/only-in-a"));
    }
}
