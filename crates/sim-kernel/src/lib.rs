//! # sim-kernel — the simulated operating-system kernel
//!
//! A deterministic, in-process operating system substrate shared by the two
//! API personalities of this reproduction (`sim-win32` and `sim-posix`).
//! It owns everything a kernel owns:
//!
//! * [`objects`] — kernel objects and a generation-checked handle table,
//! * [`fs`] — an in-memory filesystem with open-file descriptions,
//! * [`process`] — processes, threads and register contexts,
//! * [`heap`] — heap managers built on the checked address space,
//! * [`sync`] — events, mutexes, semaphores and waits with hang detection,
//! * [`clock`] — simulated time plus `FILETIME`/`SYSTEMTIME`/`time_t` math,
//! * [`env`](mod@env) — the environment block,
//! * [`crash`] — the kernel-panic latch that records *Catastrophic* outcomes.
//!
//! The central type is [`Kernel`]: one instance per test
//! case, which is how the Ballista harness gets the process-per-test
//! isolation the paper achieved with `fork` and memory-mapped files.
//!
//! # Example
//!
//! ```
//! use sim_kernel::kernel::Kernel;
//! use sim_kernel::fs::OpenOptions;
//!
//! let mut k = Kernel::new();
//! k.fs.create_file("/tmp/demo", b"hello".to_vec()).unwrap();
//! let ofd = k.fs.open("/tmp/demo", OpenOptions::read_only()).unwrap();
//! let mut buf = [0u8; 5];
//! let n = k.fs.read(ofd, &mut buf).unwrap();
//! assert_eq!(&buf[..n], b"hello");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clock;
pub mod crash;
pub mod crashfs;
pub mod env;
pub mod fs;
pub mod heap;
pub mod kernel;
pub mod objects;
pub mod outcome;
pub mod process;
pub mod subsystem;
pub mod sync;
pub mod variant;

pub use crash::{CrashInfo, CrashLatch};
pub use kernel::{Kernel, MachineFlavor, MachineSnapshot};
pub use subsystem::{Subsystem, SubsystemFuel};
pub use objects::{Handle, ObjectKind, ObjectTable};
pub use outcome::{ApiAbort, ApiResult, ApiReturn};
pub use variant::OsVariant;
