//! Kernel objects and the generation-checked handle table.
//!
//! Both API personalities name kernel resources through small integers:
//! Win32 `HANDLE`s and POSIX file descriptors. Ballista's `HANDLE` test pool
//! includes closed handles, wrong-type handles, `INVALID_HANDLE_VALUE`,
//! negative values and garbage integers — so the table must diagnose *why* a
//! handle is bad, and must never resurrect a stale one (slot reuse bumps a
//! generation counter baked into the handle value).

use crate::sync::SyncState;
use serde::{Deserialize, Serialize};
use std::fmt;

/// An opaque kernel-object designator as handed to application code.
///
/// Layout: low 16 bits = slot index, high 16 bits = slot generation. The
/// pseudo-handles returned by `GetCurrentProcess()` / `GetCurrentThread()`
/// are the classic `-1` / `-2` sentinels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Handle(pub u32);

impl Handle {
    /// The Win32 `INVALID_HANDLE_VALUE` sentinel (also `(HANDLE)-1`).
    pub const INVALID: Handle = Handle(u32::MAX);
    /// Pseudo-handle for the current process (`GetCurrentProcess()`).
    pub const CURRENT_PROCESS: Handle = Handle(u32::MAX); // == INVALID, as on real Win32
    /// Pseudo-handle for the current thread (`GetCurrentThread()`).
    pub const CURRENT_THREAD: Handle = Handle(u32::MAX - 1);
    /// The null handle.
    pub const NULL: Handle = Handle(0);

    /// Raw 32-bit value.
    #[must_use]
    pub const fn raw(self) -> u32 {
        self.0
    }

    /// Whether this is one of the pseudo-handles.
    #[must_use]
    pub const fn is_pseudo(self) -> bool {
        self.0 == Handle::CURRENT_PROCESS.0 || self.0 == Handle::CURRENT_THREAD.0
    }

    fn slot(self) -> usize {
        (self.0 & 0xFFFF) as usize
    }

    fn generation(self) -> u32 {
        self.0 >> 16
    }

    fn from_parts(slot: usize, generation: u32) -> Handle {
        Handle(((generation & 0xFFFF) << 16) | (slot as u32 & 0xFFFF))
    }
}

impl fmt::Display for Handle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "handle(0x{:08x})", self.0)
    }
}

/// What a kernel object *is*.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ObjectKind {
    /// A process, by process id.
    Process(u32),
    /// A thread, by thread id.
    Thread(u32),
    /// An open file, by open-file-description id in the filesystem.
    File(u64),
    /// A console/standard device stream.
    ConsoleStream {
        /// 0 = stdin, 1 = stdout, 2 = stderr.
        stream: u8,
    },
    /// An event object.
    Event(SyncState),
    /// A mutex object.
    Mutex(SyncState),
    /// A semaphore object.
    Semaphore(SyncState),
    /// A heap created by `HeapCreate`, by heap id.
    Heap(u32),
    /// A file-mapping object, by backing file (or `None` for pagefile).
    FileMapping {
        /// Backing open-file id, if file-backed.
        file: Option<u64>,
        /// Mapping length.
        len: u64,
    },
    /// A directory-search handle (`FindFirstFile`).
    FindSearch {
        /// Remaining entries to report.
        entries: Vec<String>,
        /// Cursor into `entries`.
        cursor: usize,
    },
}

impl ObjectKind {
    /// Short type name used in handle-mismatch diagnostics.
    #[must_use]
    pub fn type_name(&self) -> &'static str {
        match self {
            ObjectKind::Process(_) => "process",
            ObjectKind::Thread(_) => "thread",
            ObjectKind::File(_) => "file",
            ObjectKind::ConsoleStream { .. } => "console",
            ObjectKind::Event(_) => "event",
            ObjectKind::Mutex(_) => "mutex",
            ObjectKind::Semaphore(_) => "semaphore",
            ObjectKind::Heap(_) => "heap",
            ObjectKind::FileMapping { .. } => "file-mapping",
            ObjectKind::FindSearch { .. } => "find-search",
        }
    }
}

/// Why a handle failed to resolve.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum HandleError {
    /// The null handle.
    Null,
    /// `INVALID_HANDLE_VALUE` used where a real handle was required.
    InvalidSentinel,
    /// Slot index out of table bounds or never allocated.
    NeverAllocated,
    /// The slot was valid once but the handle was closed (stale generation
    /// or empty slot).
    Closed,
    /// The handle resolves, but to an object of the wrong type.
    WrongType {
        /// The type the object actually has.
        actual: &'static str,
    },
}

impl fmt::Display for HandleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HandleError::Null => f.write_str("null handle"),
            HandleError::InvalidSentinel => f.write_str("INVALID_HANDLE_VALUE"),
            HandleError::NeverAllocated => f.write_str("handle was never allocated"),
            HandleError::Closed => f.write_str("handle has been closed"),
            HandleError::WrongType { actual } => {
                write!(f, "handle refers to a {actual} object")
            }
        }
    }
}

impl std::error::Error for HandleError {}

#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
struct Slot {
    generation: u32,
    entry: Option<Entry>,
}

#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
struct Entry {
    kind: ObjectKind,
    refcount: u32,
    inheritable: bool,
}

/// The per-process kernel handle table.
///
/// # Example
///
/// ```
/// use sim_kernel::objects::{ObjectTable, ObjectKind, HandleError};
/// use sim_kernel::sync::SyncState;
///
/// let mut table = ObjectTable::new();
/// let h = table.insert(ObjectKind::Event(SyncState::event(false, false)));
/// assert!(table.get(h).is_ok());
/// table.close(h).unwrap();
/// assert_eq!(table.get(h).unwrap_err(), HandleError::Closed);
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ObjectTable {
    slots: Vec<Slot>,
    /// Structural-mutation counter for the snapshot layer (see
    /// `FileSystem::generation` for the protocol). [`ObjectTable::get_mut`]
    /// bumps conservatively — the caller holds `&mut ObjectKind` and may
    /// mutate through it.
    #[serde(default)]
    gen: u64,
}

/// Equality covers the slots (including per-slot generations, which decide
/// which stale handles resolve) but not the table-level mutation counter.
impl PartialEq for ObjectTable {
    fn eq(&self, other: &Self) -> bool {
        self.slots == other.slots
    }
}

impl Eq for ObjectTable {}

impl ObjectTable {
    /// Creates an empty table. Slot 0 is reserved so that handle value 0
    /// (the null handle) never resolves.
    #[must_use]
    pub fn new() -> Self {
        ObjectTable {
            slots: vec![Slot {
                generation: 0,
                entry: None,
            }],
            gen: 0,
        }
    }

    /// Current structural generation (see `FileSystem::generation`).
    #[must_use]
    pub fn generation(&self) -> u64 {
        self.gen
    }

    fn touch(&mut self) {
        self.gen = self.gen.wrapping_add(1);
    }

    /// Inserts an object and returns a fresh handle with refcount 1.
    pub fn insert(&mut self, kind: ObjectKind) -> Handle {
        self.touch();
        let entry = Entry {
            kind,
            refcount: 1,
            inheritable: false,
        };
        // Reuse the first empty slot (bumping its generation), else append.
        for (i, slot) in self.slots.iter_mut().enumerate().skip(1) {
            if slot.entry.is_none() {
                slot.generation = slot.generation.wrapping_add(1) & 0xFFFF;
                slot.entry = Some(entry);
                return Handle::from_parts(i, slot.generation);
            }
        }
        let i = self.slots.len();
        self.slots.push(Slot {
            generation: 1,
            entry: Some(entry),
        });
        Handle::from_parts(i, 1)
    }

    fn resolve_slot(&self, handle: Handle) -> Result<usize, HandleError> {
        if handle == Handle::NULL {
            return Err(HandleError::Null);
        }
        if handle == Handle::INVALID || handle == Handle::CURRENT_THREAD {
            return Err(HandleError::InvalidSentinel);
        }
        let slot = handle.slot();
        if slot == 0 || slot >= self.slots.len() {
            return Err(HandleError::NeverAllocated);
        }
        let s = &self.slots[slot];
        if s.entry.is_none() || s.generation != handle.generation() {
            return Err(HandleError::Closed);
        }
        Ok(slot)
    }

    /// Resolves a handle to its object.
    ///
    /// # Errors
    ///
    /// A [`HandleError`] describing exactly why the handle is bad. The
    /// pseudo-handles are *not* resolved here — callers that accept them
    /// (e.g. `GetThreadContext`) must check [`Handle::is_pseudo`] first.
    pub fn get(&self, handle: Handle) -> Result<&ObjectKind, HandleError> {
        let slot = self.resolve_slot(handle)?;
        Ok(&self.slots[slot].entry.as_ref().expect("resolved").kind)
    }

    /// Resolves a handle to its object, mutably.
    ///
    /// # Errors
    ///
    /// Same conditions as [`ObjectTable::get`].
    pub fn get_mut(&mut self, handle: Handle) -> Result<&mut ObjectKind, HandleError> {
        let slot = self.resolve_slot(handle)?;
        self.touch();
        Ok(&mut self.slots[slot].entry.as_mut().expect("resolved").kind)
    }

    /// Closes a handle: drops one reference; the slot empties when the
    /// refcount reaches zero.
    ///
    /// # Errors
    ///
    /// Same conditions as [`ObjectTable::get`].
    pub fn close(&mut self, handle: Handle) -> Result<(), HandleError> {
        let slot = self.resolve_slot(handle)?;
        self.touch();
        let entry = self.slots[slot].entry.as_mut().expect("resolved");
        entry.refcount -= 1;
        if entry.refcount == 0 {
            self.slots[slot].entry = None;
        }
        Ok(())
    }

    /// Duplicates a handle: bumps the refcount and returns a second handle
    /// to the same slot (sharing the generation, as real `DuplicateHandle`
    /// shares the object).
    ///
    /// # Errors
    ///
    /// Same conditions as [`ObjectTable::get`].
    pub fn duplicate(&mut self, handle: Handle) -> Result<Handle, HandleError> {
        let slot = self.resolve_slot(handle)?;
        self.touch();
        let s = &mut self.slots[slot];
        s.entry.as_mut().expect("resolved").refcount += 1;
        Ok(Handle::from_parts(slot, s.generation))
    }

    /// Marks a handle inheritable (the `SetHandleInformation` bit the
    /// paper's pools poke at).
    ///
    /// # Errors
    ///
    /// Same conditions as [`ObjectTable::get`].
    pub fn set_inheritable(&mut self, handle: Handle, inheritable: bool) -> Result<(), HandleError> {
        let slot = self.resolve_slot(handle)?;
        self.touch();
        self.slots[slot].entry.as_mut().expect("resolved").inheritable = inheritable;
        Ok(())
    }

    /// Number of live objects.
    #[must_use]
    pub fn live_objects(&self) -> usize {
        self.slots.iter().filter(|s| s.entry.is_some()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sync::SyncState;

    fn event() -> ObjectKind {
        ObjectKind::Event(SyncState::event(false, false))
    }

    #[test]
    fn insert_and_get() {
        let mut t = ObjectTable::new();
        let h = t.insert(ObjectKind::Process(42));
        assert_eq!(t.get(h).unwrap(), &ObjectKind::Process(42));
        assert_eq!(t.live_objects(), 1);
    }

    #[test]
    fn null_and_sentinel_handles_fail() {
        let t = ObjectTable::new();
        assert_eq!(t.get(Handle::NULL).unwrap_err(), HandleError::Null);
        assert_eq!(
            t.get(Handle::INVALID).unwrap_err(),
            HandleError::InvalidSentinel
        );
        assert_eq!(
            t.get(Handle::CURRENT_THREAD).unwrap_err(),
            HandleError::InvalidSentinel
        );
    }

    #[test]
    fn garbage_handles_fail() {
        let t = ObjectTable::new();
        assert_eq!(
            t.get(Handle(0x0001_0005)).unwrap_err(),
            HandleError::NeverAllocated
        );
        assert_eq!(t.get(Handle(12345)).unwrap_err(), HandleError::NeverAllocated);
    }

    #[test]
    fn closed_handle_is_stale() {
        let mut t = ObjectTable::new();
        let h = t.insert(event());
        t.close(h).unwrap();
        assert_eq!(t.get(h).unwrap_err(), HandleError::Closed);
        // Closing again is an error too.
        assert_eq!(t.close(h).unwrap_err(), HandleError::Closed);
    }

    #[test]
    fn slot_reuse_does_not_resurrect_old_handle() {
        let mut t = ObjectTable::new();
        let old = t.insert(event());
        t.close(old).unwrap();
        let new = t.insert(ObjectKind::Thread(7));
        // Same slot, different generation.
        assert_ne!(old, new);
        assert_eq!(t.get(old).unwrap_err(), HandleError::Closed);
        assert_eq!(t.get(new).unwrap(), &ObjectKind::Thread(7));
    }

    #[test]
    fn duplicate_shares_object() {
        let mut t = ObjectTable::new();
        let a = t.insert(event());
        let b = t.duplicate(a).unwrap();
        t.close(a).unwrap();
        // Object still alive through b.
        assert!(t.get(b).is_ok());
        t.close(b).unwrap();
        assert_eq!(t.get(b).unwrap_err(), HandleError::Closed);
    }

    #[test]
    fn pseudo_handles_detected() {
        assert!(Handle::CURRENT_PROCESS.is_pseudo());
        assert!(Handle::CURRENT_THREAD.is_pseudo());
        assert!(!Handle(5).is_pseudo());
    }

    #[test]
    fn inheritable_flag() {
        let mut t = ObjectTable::new();
        let h = t.insert(event());
        t.set_inheritable(h, true).unwrap();
        assert!(t.set_inheritable(Handle::NULL, true).is_err());
    }

    #[test]
    fn type_names_cover_variants() {
        assert_eq!(ObjectKind::Process(1).type_name(), "process");
        assert_eq!(ObjectKind::Heap(1).type_name(), "heap");
        assert_eq!(
            ObjectKind::FindSearch {
                entries: vec![],
                cursor: 0
            }
            .type_name(),
            "find-search"
        );
    }
}
