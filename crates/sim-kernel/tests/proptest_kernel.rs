//! Property-based tests for kernel invariants: stale handles never resolve,
//! filesystem read/write behaves like a byte store, heaps never hand out
//! aliasing blocks.

use proptest::prelude::*;
use sim_core::memory::AddressSpace;
use sim_kernel::fs::{FileSystem, OpenOptions, SeekFrom};
use sim_kernel::heap::HeapManager;
use sim_kernel::objects::{HandleError, ObjectKind, ObjectTable};
use sim_kernel::sync::SyncState;

proptest! {
    /// However handles are opened and closed, a closed handle never
    /// resolves again — even after its slot is reused many times.
    #[test]
    fn stale_handles_never_resolve(script in proptest::collection::vec(any::<bool>(), 1..200)) {
        let mut table = ObjectTable::new();
        let mut live = Vec::new();
        let mut dead = Vec::new();
        for (i, open) in script.into_iter().enumerate() {
            if open || live.is_empty() {
                live.push(table.insert(ObjectKind::Thread(i as u32)));
            } else {
                let h = live.swap_remove(i % live.len());
                table.close(h).unwrap();
                dead.push(h);
            }
            for &h in &dead {
                prop_assert_eq!(table.get(h).unwrap_err(), HandleError::Closed);
            }
            for &h in &live {
                prop_assert!(table.get(h).is_ok());
            }
        }
    }

    /// File write-then-read-back through arbitrary seek positions matches a
    /// reference Vec<u8> model.
    #[test]
    fn file_io_matches_byte_store_model(
        ops in proptest::collection::vec(
            (0u64..256, proptest::collection::vec(any::<u8>(), 0..32)),
            1..40,
        )
    ) {
        let mut fs = FileSystem::new_posix();
        fs.create_file("/model", vec![]).unwrap();
        let ofd = fs.open("/model", OpenOptions::read_write()).unwrap();
        let mut model: Vec<u8> = Vec::new();
        for (pos, data) in ops {
            fs.seek(ofd, SeekFrom::Start(pos)).unwrap();
            fs.write(ofd, &data).unwrap();
            let end = pos as usize + data.len();
            if model.len() < end {
                model.resize(end, 0);
            }
            model[pos as usize..end].copy_from_slice(&data);
        }
        fs.seek(ofd, SeekFrom::Start(0)).unwrap();
        let mut buf = vec![0u8; model.len() + 8];
        let n = fs.read(ofd, &mut buf).unwrap();
        prop_assert_eq!(&buf[..n], model.as_slice());
    }

    /// Heap allocations never alias and sizes are tracked exactly.
    #[test]
    fn heap_blocks_disjoint(sizes in proptest::collection::vec(0u64..512, 1..30)) {
        let mut space = AddressSpace::new();
        let mut heaps = HeapManager::new();
        let id = heaps.create(0, 0).unwrap();
        let mut blocks = Vec::new();
        for &s in &sizes {
            let p = heaps.alloc(id, s, &mut space).unwrap();
            blocks.push((p, s.max(1)));
        }
        for (i, &(a, alen)) in blocks.iter().enumerate() {
            prop_assert_eq!(heaps.size_of(id, a).unwrap(), alen);
            for &(b, blen) in &blocks[i + 1..] {
                let disjoint = a.addr() + alen <= b.addr() || b.addr() + blen <= a.addr();
                prop_assert!(disjoint, "blocks {a} (+{alen}) and {b} (+{blen}) overlap");
            }
        }
        let total: u64 = blocks.iter().map(|&(_, s)| s).sum();
        prop_assert_eq!(heaps.in_use(id).unwrap(), total);
    }

    /// wait-style acquire/signal on a semaphore never exceeds its maximum
    /// and never goes negative.
    #[test]
    fn semaphore_count_bounded(
        initial in 0u32..10,
        max_extra in 0u32..10,
        ops in proptest::collection::vec(any::<bool>(), 0..100),
    ) {
        let max = initial + max_extra.max(1);
        let mut s = SyncState::semaphore(initial, max);
        for signal in ops {
            if signal {
                s.signal();
            } else {
                let _ = s.try_acquire(1);
            }
            prop_assert!(s.count <= max);
        }
    }

    /// Path splitting is idempotent under re-joining: split(join(split(p)))
    /// == split(p), and `..` never escapes the root.
    #[test]
    fn path_normalization_idempotent(parts in proptest::collection::vec("[a-zA-Z0-9.]{1,8}", 0..8)) {
        let fs = FileSystem::new_posix();
        let path = format!("/{}", parts.join("/"));
        let split = fs.split_path(&path).unwrap();
        let rejoined = format!("/{}", split.join("/"));
        prop_assert_eq!(fs.split_path(&rejoined).unwrap(), split);
    }
}
