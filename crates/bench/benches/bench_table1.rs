//! Regenerates and benchmarks **Table 1** (per-MuT failure statistics) at
//! the bench cap, printing the rows it produces.

use criterion::{criterion_group, criterion_main, Criterion};
use sim_kernel::variant::OsVariant;
use std::hint::black_box;

fn bench_table1(c: &mut Criterion) {
    // Print the regenerated rows once, so the bench doubles as the
    // artifact generator the paper's Table 1 corresponds to.
    let results = bench::bench_all_oses();
    println!("{}", report::tables::table1(&results));

    let mut group = c.benchmark_group("table1");
    group.sample_size(10);
    // The dominant cost: one OS campaign (Linux: no crashes, full case
    // lists).
    group.bench_function("campaign_linux", |b| {
        b.iter(|| black_box(bench::bench_campaign(OsVariant::Linux, false)))
    });
    // A 9x campaign (crash handling + isolation-free path).
    group.bench_function("campaign_win98", |b| {
        b.iter(|| black_box(bench::bench_campaign(OsVariant::Win98, false)))
    });
    // The statistics layer alone.
    let report_nt = bench::bench_campaign(OsVariant::WinNt4, false);
    group.bench_function("table1_row_stats", |b| {
        b.iter(|| black_box(report::normalize::table1_row(black_box(&report_nt))))
    });
    group.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
