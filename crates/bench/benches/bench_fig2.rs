//! Regenerates and benchmarks **Figure 2** (cross-version voting for
//! estimated Silent failure rates over the desktop Windows variants).

use criterion::{criterion_group, criterion_main, Criterion};
use sim_kernel::variant::OsVariant;
use std::hint::black_box;

fn bench_fig2(c: &mut Criterion) {
    let results = report::MultiOsResults {
        reports: OsVariant::DESKTOP_WINDOWS
            .into_iter()
            .map(|os| bench::bench_campaign(os, true))
            .collect(),
        warnings: Vec::new(),
    };
    println!("{}", report::figures::figure2(&results));

    let desktop: Vec<&ballista::campaign::CampaignReport> = results.reports.iter().collect();
    let mut group = c.benchmark_group("fig2");
    group.sample_size(20);
    // The vote itself: every shared case of every shared MuT, five ways.
    group.bench_function("vote_all_variants", |b| {
        b.iter(|| {
            for os in OsVariant::DESKTOP_WINDOWS {
                black_box(report::voting::vote_silent(black_box(&desktop), os));
            }
        })
    });
    group.bench_function("figure2_series", |b| {
        b.iter(|| black_box(report::figures::figure2_series(black_box(&results))))
    });
    group.bench_function("figure2_csv", |b| {
        b.iter(|| black_box(report::figures::figure2_csv(black_box(&results))))
    });
    group.finish();
}

criterion_group!(benches, bench_fig2);
criterion_main!(benches);
