//! Micro-benchmarks of the testing machinery itself: machine boot,
//! test-case enumeration, pool construction, single-case execution and
//! the hot simulated-API paths.

use ballista::exec::Session;
use ballista::sampling;
use criterion::{criterion_group, criterion_main, Criterion};
use sim_kernel::variant::OsVariant;
use sim_kernel::Kernel;
use std::hint::black_box;

fn bench_harness(c: &mut Criterion) {
    let mut group = c.benchmark_group("harness");

    // Per-test isolation cost: booting a fresh simulated machine.
    group.bench_function("kernel_boot_posix", |b| {
        b.iter(|| black_box(Kernel::new()))
    });
    group.bench_function("kernel_boot_windows", |b| {
        b.iter(|| black_box(Kernel::with_flavor(sim_kernel::kernel::MachineFlavor::Windows)))
    });

    // Case enumeration: exhaustive and capped sampling.
    group.bench_function("enumerate_exhaustive_3k", |b| {
        b.iter(|| black_box(sampling::enumerate(black_box(&[14, 14, 8]), 5000, "bench")))
    });
    group.bench_function("enumerate_sampled_5k_of_60k", |b| {
        b.iter(|| {
            black_box(sampling::enumerate(
                black_box(&[9, 9, 9, 9, 9]),
                sampling::PAPER_CAP,
                "bench",
            ))
        })
    });

    // Pool resolution (constructor closures + inheritance).
    let registry = ballista::catalog::registry_for(OsVariant::Win98);
    group.bench_function("resolve_handle_pool", |b| {
        b.iter(|| black_box(registry.pool(black_box("HANDLE"))))
    });

    // One full test case end-to-end (the campaign inner loop).
    let muts = ballista::catalog::catalog_for(OsVariant::Win98);
    let strlen = muts.iter().find(|m| m.name == "strlen").expect("in catalog");
    let pools = ballista::campaign::resolve_pools(&registry, strlen);
    group.bench_function("execute_case_strlen", |b| {
        let mut session = Session::new();
        b.iter(|| {
            black_box(ballista::exec::execute_case(
                OsVariant::Win98,
                strlen,
                &pools,
                &[0],
                &mut session,
            ))
        })
    });

    // Hot simulated-API paths.
    group.bench_function("simulated_readfile_4k", |b| {
        let mut k = Kernel::with_flavor(sim_kernel::kernel::MachineFlavor::Windows);
        let profile = sim_win32::Win32Profile::for_os(OsVariant::WinNt4);
        k.fs.create_file("C:\\TEMP\\bench.bin", vec![0xA5; 4096]).expect("fresh fs");
        let ofd = k
            .fs
            .open("C:\\TEMP\\bench.bin", sim_kernel::fs::OpenOptions::read_only())
            .expect("exists");
        let h = k.objects.insert(sim_kernel::objects::ObjectKind::File(ofd));
        let buf = k.alloc_user(4096, "bench");
        let nread = k.alloc_user(4, "nread");
        b.iter(|| {
            let _ = k
                .fs
                .seek(ofd, sim_kernel::fs::SeekFrom::Start(0))
                .expect("seekable");
            black_box(
                sim_win32::fileapi::ReadFile(&mut k, profile, h, buf, 4096, nread, sim_core::SimPtr::NULL)
                    .expect("robust call"),
            )
        })
    });

    group.finish();
}

criterion_group!(benches, bench_harness);
criterion_main!(benches);
