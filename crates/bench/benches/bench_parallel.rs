//! Benchmarks for the parallel campaign engine: the serial reference
//! path vs the two-phase engine at several worker counts, the legacy
//! (boot-per-case, eager-zero) provisioning model, and the underlying
//! boot-vs-restore micro-costs the snapshot cache trades between.

use ballista::campaign::{run_campaign, CampaignConfig};
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use sim_kernel::variant::OsVariant;
use sim_kernel::{Kernel, MachineFlavor, MachineSnapshot};

fn cfg(parallelism: usize) -> CampaignConfig {
    CampaignConfig {
        cap: bench::BENCH_CAP,
        record_raw: false,
        isolation_probe: true,
        perfect_cleanup: false,
        parallelism,
        fuel_budget: 0,
    }
}

fn campaign_benches(c: &mut Criterion) {
    let mut group = c.benchmark_group("campaign_engine");
    group.sample_size(10);
    group.bench_function("win98_serial", |b| {
        b.iter(|| black_box(run_campaign(OsVariant::Win98, &cfg(1))));
    });
    group.bench_function("win98_parallel_auto", |b| {
        b.iter(|| black_box(run_campaign(OsVariant::Win98, &cfg(0))));
    });
    group.bench_function("win98_parallel_4", |b| {
        b.iter(|| black_box(run_campaign(OsVariant::Win98, &cfg(4))));
    });
    group.bench_function("win98_legacy_provisioning", |b| {
        use std::sync::atomic::Ordering;
        ballista::exec::LEGACY_PROVISIONING.store(true, Ordering::SeqCst);
        b.iter(|| black_box(run_campaign(OsVariant::Win98, &cfg(1))));
        ballista::exec::LEGACY_PROVISIONING.store(false, Ordering::SeqCst);
    });
    group.finish();
}

fn provisioning_benches(c: &mut Criterion) {
    let mut group = c.benchmark_group("machine_provisioning");
    group.bench_function("full_boot", |b| {
        b.iter(|| black_box(Kernel::with_flavor(MachineFlavor::Windows)));
    });
    group.bench_function("snapshot_restore", |b| {
        let snap = MachineSnapshot::boot(MachineFlavor::Windows);
        b.iter(|| black_box(snap.restore()));
    });
    group.bench_function("snapshot_boot_capture", |b| {
        b.iter(|| black_box(MachineSnapshot::boot(MachineFlavor::Windows)));
    });
    group.finish();
}

criterion_group!(benches, campaign_benches, provisioning_benches);
criterion_main!(benches);
