//! Micro-benchmarks of machine provisioning: full clone-per-case
//! restore vs dirty-state reset-in-place, and the batched campaign
//! inner loop they feed. These are the numbers behind the O(touched)
//! restore claim in DESIGN.md — `reset_in_place_untouched` (the
//! generation-stamp fast path) should sit one to two orders of
//! magnitude under `restore_full_clone`. `reset_in_place_touched`
//! measures a whole dirty-then-reset cycle, so the case's own
//! mutations (file create/unlink, a 4 KiB fill) are part of its
//! number.

use ballista::exec::{CaseRunner, Session, DEFAULT_FUEL_BUDGET};
use criterion::{criterion_group, criterion_main, Criterion};
use sim_kernel::kernel::{MachineFlavor, MachineSnapshot};
use sim_kernel::variant::OsVariant;
use std::hint::black_box;

/// Dirties a machine the way a typical test case does: a few files, a
/// handle, a heap allocation, some writes.
fn dirty_typical(k: &mut sim_kernel::Kernel) {
    let _ = k.fs.create_file("C:\\TEMP\\case.bin", vec![0xA5; 512]);
    if let Ok(ofd) = k.fs.open("C:\\TEMP\\case.bin", sim_kernel::fs::OpenOptions::read_only()) {
        let h = k.objects.insert(sim_kernel::objects::ObjectKind::File(ofd));
        let _ = k.objects.close(h);
    }
    let buf = k.alloc_user(4096, "bench");
    k.space
        .fill(buf, 0x00, 4096, sim_core::addr::PrivilegeLevel::User)
        .expect("mapped");
    let _ = k.fs.unlink("C:\\TEMP\\case.bin");
}

fn bench_restore(c: &mut Criterion) {
    let mut group = c.benchmark_group("restore");

    // The old cost model: materialize a whole fresh machine per case.
    let snap = MachineSnapshot::boot(MachineFlavor::Windows);
    group.bench_function("restore_full_clone", |b| {
        b.iter(|| black_box(snap.restore()))
    });

    // Reset-in-place on a machine a typical case dirtied: O(touched).
    group.bench_function("reset_in_place_touched", |b| {
        let mut machine = snap.restore();
        b.iter(|| {
            dirty_typical(&mut machine);
            snap.restore_into(&mut machine);
            black_box(&machine);
        })
    });

    // Reset-in-place on a machine nothing touched: the generation-stamp
    // fast path, near-free.
    group.bench_function("reset_in_place_untouched", |b| {
        let mut machine = snap.restore();
        snap.restore_into(&mut machine);
        b.iter(|| {
            snap.restore_into(&mut machine);
            black_box(&machine);
        })
    });

    // The batched campaign inner loop end-to-end: resident machine,
    // one reset + one simulated call per iteration.
    let os = OsVariant::Win98;
    let registry = ballista::catalog::registry_for(os);
    let muts = ballista::catalog::catalog_for(os);
    let strlen = muts.iter().find(|m| m.name == "strlen").expect("in catalog");
    let pools = ballista::campaign::resolve_pools(&registry, strlen);
    group.bench_function("case_runner_batched_strlen", |b| {
        let mut runner = CaseRunner::new();
        let mut session = Session::new();
        b.iter(|| {
            black_box(runner.execute(
                os,
                strlen,
                &pools,
                &[0],
                &mut session,
                DEFAULT_FUEL_BUDGET,
            ))
        })
    });

    group.finish();
}

criterion_group!(benches, bench_restore);
criterion_main!(benches);
