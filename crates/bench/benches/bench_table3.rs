//! Regenerates and benchmarks **Table 3** (Catastrophic-failure discovery
//! with the `*` isolation probe) on the crash-prone variants.

use ballista::campaign::{run_campaign, CampaignConfig};
use criterion::{criterion_group, criterion_main, Criterion};
use sim_kernel::variant::OsVariant;
use std::hint::black_box;

fn bench_table3(c: &mut Criterion) {
    let results = report::MultiOsResults {
        reports: [OsVariant::Win95, OsVariant::Win98, OsVariant::Win98Se, OsVariant::WinCe]
            .into_iter()
            .map(|os| {
                run_campaign(
                    os,
                    &CampaignConfig {
                        cap: bench::BENCH_CAP,
                        record_raw: false,
                        isolation_probe: true,
                        perfect_cleanup: false,
                            parallelism: 1,
                            fuel_budget: 0,
                    },
                )
            })
            .collect(),
        warnings: Vec::new(),
    };
    println!("{}", report::tables::table3(&results));

    let mut group = c.benchmark_group("table3");
    group.sample_size(10);
    // Crash-set discovery on the most crash-prone target.
    group.bench_function("crash_discovery_wince", |b| {
        b.iter(|| {
            black_box(run_campaign(
                OsVariant::WinCe,
                &CampaignConfig {
                    cap: bench::BENCH_CAP,
                    record_raw: false,
                    isolation_probe: true,
                    perfect_cleanup: false,
                        parallelism: 1,
                        fuel_budget: 0,
                },
            ))
        })
    });
    // The isolation probe alone (re-running one crashing case).
    let muts = ballista::catalog::catalog_for(OsVariant::Win98);
    let registry = ballista::catalog::registry_for(OsVariant::Win98);
    let gtc = muts
        .iter()
        .find(|m| m.name == "GetThreadContext")
        .expect("in catalog");
    let pools = ballista::campaign::resolve_pools(&registry, gtc);
    // Listing 1's combo: pseudo-handle + NULL.
    let pseudo = pools[0]
        .iter()
        .position(|v| v.name == "pseudo current thread")
        .expect("pool value");
    let null = pools[1].iter().position(|v| v.name == "NULL").expect("pool value");
    group.bench_function("isolation_probe_listing1", |b| {
        b.iter(|| {
            black_box(ballista::exec::reproduce_in_isolation(
                OsVariant::Win98,
                gtc,
                &pools,
                &[pseudo, null],
            ))
        })
    });
    group.bench_function("collect_entries", |b| {
        b.iter(|| black_box(report::tables::catastrophic_entries(black_box(&results))))
    });
    group.finish();
}

criterion_group!(benches, bench_table3);
criterion_main!(benches);
