//! Regenerates and benchmarks **Table 2 / Figure 1** (failure rates by
//! functional grouping across the seven OS targets).

use criterion::{criterion_group, criterion_main, Criterion};
use report::normalize::{group_rate, overall_group_weighted, Metric};
use std::hint::black_box;

fn bench_table2_fig1(c: &mut Criterion) {
    let results = bench::bench_all_oses();
    println!("{}", report::tables::table2(&results));
    println!("{}", report::figures::figure1(&results));

    let mut group = c.benchmark_group("table2_fig1");
    group.sample_size(20);
    group.bench_function("group_normalization_all", |b| {
        b.iter(|| {
            for report in &results.reports {
                for g in ballista::muts::FunctionGroup::ALL {
                    black_box(group_rate(report, g, Metric::AbortPlusRestart));
                }
                black_box(overall_group_weighted(report, Metric::AbortPlusRestart));
            }
        })
    });
    group.bench_function("render_table2", |b| {
        b.iter(|| black_box(report::tables::table2(black_box(&results))))
    });
    group.bench_function("render_figure1", |b| {
        b.iter(|| black_box(report::figures::figure1(black_box(&results))))
    });
    group.bench_function("figure1_csv", |b| {
        b.iter(|| black_box(report::figures::figure1_csv(black_box(&results))))
    });
    group.finish();
}

criterion_group!(benches, bench_table2_fig1);
criterion_main!(benches);
