//! Shared helpers for the benchmark harness.
//!
//! Each `bench_*` target regenerates one paper artifact (table or figure)
//! at a reduced cap and benchmarks the regeneration; `bench_harness`
//! micro-benchmarks the testing machinery itself. The bench cap is small
//! so `cargo bench` stays fast; the `experiments` binaries run the
//! full-cap versions.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use ballista::campaign::{run_campaign, CampaignConfig, CampaignReport};
use sim_kernel::variant::OsVariant;

/// The reduced per-MuT cap used inside benches.
pub const BENCH_CAP: usize = 100;

/// Runs a reduced campaign for one OS (optionally recording raw outcomes
/// for voting benches).
#[must_use]
pub fn bench_campaign(os: OsVariant, record_raw: bool) -> CampaignReport {
    run_campaign(
        os,
        &CampaignConfig {
            cap: BENCH_CAP,
            record_raw,
            isolation_probe: false,
            perfect_cleanup: false,
            parallelism: 1,
            fuel_budget: 0,
        },
    )
}

/// Reduced campaigns for every OS (raw recording on desktop Windows).
#[must_use]
pub fn bench_all_oses() -> report::MultiOsResults {
    report::MultiOsResults {
        reports: OsVariant::ALL
            .into_iter()
            .map(|os| bench_campaign(os, OsVariant::DESKTOP_WINDOWS.contains(&os)))
            .collect(),
        warnings: Vec::new(),
    }
}
