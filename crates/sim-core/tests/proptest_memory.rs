//! Property-based tests for the simulated address space.
//!
//! The load-bearing invariant for the whole reproduction: *no access through
//! an invalid pointer ever succeeds*, and *every access through a valid
//! pointer behaves like ordinary memory*.

use proptest::prelude::*;
use sim_core::addr::{PrivilegeLevel, SimPtr, KERNEL_BASE};
use sim_core::fault::Fault;
use sim_core::memory::{AddressSpace, Protection};

proptest! {
    /// Whatever we write at a valid offset we read back, and neighbours are
    /// untouched.
    #[test]
    fn write_then_read_roundtrips(
        len in 1u64..4096,
        data in proptest::collection::vec(any::<u8>(), 1..128),
    ) {
        prop_assume!(data.len() as u64 <= len);
        let mut space = AddressSpace::new();
        let p = space.map(len, Protection::READ_WRITE, "prop").unwrap();
        let max_off = len - data.len() as u64;
        let off = max_off / 2;
        space.write_bytes(p.offset(off), &data).unwrap();
        prop_assert_eq!(space.read_bytes(p.offset(off), data.len() as u64).unwrap(), data);
        // A fresh region is zero-initialized outside the written window.
        if off > 0 {
            prop_assert_eq!(space.read_u8(p).unwrap(), 0);
        }
    }

    /// Reads never succeed outside any mapped region, for any address in the
    /// user half.
    #[test]
    fn unmapped_reads_always_fault(addr in 0u64..KERNEL_BASE) {
        let space = AddressSpace::new();
        prop_assert!(space.read_u8(SimPtr::new(addr)).is_err());
    }

    /// User-mode access to any kernel-half address faults even when mapped.
    #[test]
    fn user_never_reads_kernel(off in 0u64..0x1000) {
        let mut space = AddressSpace::new();
        let k = space.map_kernel(0x2000, Protection::READ_WRITE, "k").unwrap();
        prop_assert!(space.read_u8(k.offset(off)).is_err());
        prop_assert!(space
            .read_u8_priv(k.offset(off), PrivilegeLevel::Kernel)
            .is_ok());
    }

    /// Accesses crossing the end of a region fault rather than touching a
    /// neighbour, for every region size and overhang.
    #[test]
    fn cross_boundary_access_faults(len in 1u64..256, overhang in 1u64..32) {
        let mut space = AddressSpace::new();
        let p = space.map(len, Protection::READ_WRITE, "bounded").unwrap();
        let err = space.read_bytes(p, len + overhang).unwrap_err();
        let is_guard = matches!(err, Fault::GuardPage { .. });
        prop_assert!(is_guard);
    }

    /// After unmap, every byte of the old region faults as dangling.
    #[test]
    fn freed_regions_fault_everywhere(len in 1u64..128, off in 0u64..128) {
        prop_assume!(off < len);
        let mut space = AddressSpace::new();
        let p = space.map(len, Protection::READ_WRITE, "temp").unwrap();
        space.unmap(p).unwrap();
        prop_assert!(space.read_u8(p.offset(off)).is_err());
        prop_assert!(space.write_u8(p.offset(off), 1).is_err());
    }

    /// Distinct allocations never alias: writing one never changes another.
    #[test]
    fn allocations_do_not_alias(
        sizes in proptest::collection::vec(1u64..512, 2..10),
        victim_byte in any::<u8>(),
    ) {
        let mut space = AddressSpace::new();
        let ptrs: Vec<SimPtr> = sizes
            .iter()
            .map(|&s| space.map(s, Protection::READ_WRITE, "multi").unwrap())
            .collect();
        // Fill region 0 with a sentinel, then scribble over every other region.
        space.fill(ptrs[0], victim_byte, sizes[0], PrivilegeLevel::User).unwrap();
        for (i, (&p, &s)) in ptrs.iter().zip(&sizes).enumerate().skip(1) {
            space.fill(p, victim_byte.wrapping_add(i as u8), s, PrivilegeLevel::User).unwrap();
        }
        prop_assert_eq!(
            space.read_bytes(ptrs[0], sizes[0]).unwrap(),
            vec![victim_byte; sizes[0] as usize]
        );
    }

    /// check_access never panics for arbitrary pointers/lengths — it always
    /// returns a structured verdict.
    #[test]
    fn check_access_is_total(addr in any::<u64>(), len in 0u64..10_000) {
        let mut space = AddressSpace::new();
        let _ = space.map(64, Protection::READ_WRITE, "x").unwrap();
        let _ = space.check_access(
            SimPtr::new(addr),
            len,
            4,
            sim_core::AccessKind::Read,
            PrivilegeLevel::User,
        );
    }

    /// `accessible_span` agrees byte-for-byte with the per-byte
    /// `check_access` loop it replaces, over layouts mixing live, freed,
    /// read-only and partially materialized regions — including the fault
    /// the boundary byte raises.
    #[test]
    fn accessible_span_matches_byte_loop(
        sizes in proptest::collection::vec(1u64..64, 1..6),
        start_off in 0u64..96,
        n in 0u64..256,
        kind_w in any::<bool>(),
        free_mask in any::<u8>(),
        ro_mask in any::<u8>(),
    ) {
        let mut space = AddressSpace::new();
        let mut first = None;
        for (i, &s) in sizes.iter().enumerate() {
            let prot = if ro_mask & (1 << (i % 8)) != 0 {
                Protection::READ
            } else {
                Protection::READ_WRITE
            };
            let p = space.map(s, prot, "span").unwrap();
            first.get_or_insert(p);
            // Materialize only part of some regions.
            if prot.can_write() && s > 2 {
                space.write_bytes(p, &[i as u8 + 1; 2]).unwrap();
            }
            if free_mask & (1 << (i % 8)) != 0 {
                space.unmap(p).unwrap();
            }
        }
        let kind = if kind_w { sim_core::AccessKind::Write } else { sim_core::AccessKind::Read };
        let base = first.unwrap().offset(start_off);
        let fast = space.accessible_span(base, n, kind, PrivilegeLevel::User);
        let mut slow = n;
        for i in 0..n {
            if space.check_access(base.offset(i), 1, 1, kind, PrivilegeLevel::User).is_err() {
                slow = i;
                break;
            }
        }
        prop_assert_eq!(fast, slow);
        if fast < n {
            prop_assert!(
                space.check_access(base.offset(fast), 1, 1, kind, PrivilegeLevel::User).is_err()
            );
        }
    }

    /// The region-chunked C-string scan returns exactly what a per-byte
    /// `read_u8` loop returns — same bytes on success, same fault
    /// otherwise — over layouts with and without terminators, partial
    /// materialization, freed regions and guard gaps.
    #[test]
    fn read_cstr_matches_byte_loop(
        len in 1u64..96,
        data in proptest::collection::vec(any::<u8>(), 0..96),
        start_off in 0u64..8,
        free_it in any::<bool>(),
    ) {
        let mut space = AddressSpace::new();
        let p = space.map(len, Protection::READ_WRITE, "str").unwrap();
        let write = &data[..data.len().min(len as usize)];
        if !write.is_empty() {
            space.write_bytes(p, write).unwrap();
        }
        if free_it {
            space.unmap(p).unwrap();
        }
        let base = p.offset(start_off.min(len));
        // Reference: the old byte-at-a-time scan.
        let mut reference: Result<Vec<u8>, _> = Ok(Vec::new());
        let mut cursor = base;
        let mut out = Vec::new();
        for _ in 0..4096u32 {
            match space.read_u8_priv(cursor, PrivilegeLevel::User) {
                Err(f) => { reference = Err(f); break; }
                Ok(0) => { reference = Ok(out.clone()); break; }
                Ok(b) => { out.push(b); cursor = cursor.offset(1); reference = Ok(out.clone()); }
            }
        }
        let fast = sim_core::cstr::read_cstr(&space, base, PrivilegeLevel::User);
        match (reference, fast) {
            (Ok(a), Ok(b)) => prop_assert_eq!(a, b),
            (Err(a), Err(b)) => prop_assert_eq!(format!("{a:?}"), format!("{b:?}")),
            (a, b) => prop_assert!(false, "diverged: reference {a:?} vs chunked {b:?}"),
        }
    }
}
