//! Cursor-style codecs for C `struct`s living in simulated memory.
//!
//! The Win32 API traffics in pointer-to-struct parameters (`SYSTEMTIME*`,
//! `FILETIME*`, `CONTEXT*`, `SECURITY_ATTRIBUTES*`, …). Simulated API code
//! must read and write those structs *field by field through the checked
//! address space*, because the interesting robustness behaviour is exactly
//! what happens when the pointer is bad: on which field access the fault
//! occurs, and in whose privilege level.
//!
//! [`StructReader`] and [`StructWriter`] are sequential cursors that advance
//! through a struct layout, faulting at the first inaccessible field —
//! mirroring the order in which compiled C code would touch memory.

use crate::addr::{PrivilegeLevel, SimPtr};
use crate::fault::Fault;
use crate::memory::AddressSpace;

/// Sequential field reader over a struct at a simulated address.
///
/// # Example
///
/// ```
/// use sim_core::{AddressSpace, Protection, SimPtr};
/// use sim_core::layout::{StructReader, StructWriter};
/// use sim_core::addr::PrivilegeLevel;
///
/// let mut space = AddressSpace::new();
/// let p = space.map(8, Protection::READ_WRITE, "FILETIME").unwrap();
///
/// let mut w = StructWriter::new(p, PrivilegeLevel::User);
/// w.put_u32(&mut space, 0x1111_2222).unwrap();
/// w.put_u32(&mut space, 0x3333_4444).unwrap();
///
/// let mut r = StructReader::new(p, PrivilegeLevel::User);
/// assert_eq!(r.get_u32(&space).unwrap(), 0x1111_2222);
/// assert_eq!(r.get_u32(&space).unwrap(), 0x3333_4444);
/// assert_eq!(r.bytes_consumed(), 8);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct StructReader {
    cursor: SimPtr,
    start: SimPtr,
    privilege: PrivilegeLevel,
}

impl StructReader {
    /// Starts reading a struct at `base` with the given privilege.
    #[must_use]
    pub fn new(base: SimPtr, privilege: PrivilegeLevel) -> Self {
        StructReader {
            cursor: base,
            start: base,
            privilege,
        }
    }

    /// Bytes consumed so far.
    #[must_use]
    pub fn bytes_consumed(&self) -> u64 {
        self.cursor.addr().wrapping_sub(self.start.addr())
    }

    /// Skips `n` padding bytes.
    pub fn skip(&mut self, n: u64) {
        self.cursor = self.cursor.offset(n);
    }

    /// Reads the next `u16` field.
    ///
    /// # Errors
    ///
    /// Any [`Fault`] from the underlying access.
    pub fn get_u16(&mut self, space: &AddressSpace) -> Result<u16, Fault> {
        let v = space.read_u16_priv(self.cursor, self.privilege)?;
        self.cursor = self.cursor.offset(2);
        Ok(v)
    }

    /// Reads the next `u32` field.
    ///
    /// # Errors
    ///
    /// Any [`Fault`] from the underlying access.
    pub fn get_u32(&mut self, space: &AddressSpace) -> Result<u32, Fault> {
        let v = space.read_u32_priv(self.cursor, self.privilege)?;
        self.cursor = self.cursor.offset(4);
        Ok(v)
    }

    /// Reads the next `i32` field.
    ///
    /// # Errors
    ///
    /// Any [`Fault`] from the underlying access.
    pub fn get_i32(&mut self, space: &AddressSpace) -> Result<i32, Fault> {
        let v = space.read_i32_priv(self.cursor, self.privilege)?;
        self.cursor = self.cursor.offset(4);
        Ok(v)
    }

    /// Reads the next `u64` field.
    ///
    /// # Errors
    ///
    /// Any [`Fault`] from the underlying access.
    pub fn get_u64(&mut self, space: &AddressSpace) -> Result<u64, Fault> {
        let v = space.read_u64_priv(self.cursor, self.privilege)?;
        self.cursor = self.cursor.offset(8);
        Ok(v)
    }

    /// Reads the next pointer-sized (32-bit) field.
    ///
    /// # Errors
    ///
    /// Any [`Fault`] from the underlying access.
    pub fn get_ptr(&mut self, space: &AddressSpace) -> Result<SimPtr, Fault> {
        Ok(SimPtr::new(u64::from(self.get_u32(space)?)))
    }
}

/// Sequential field writer over a struct at a simulated address.
///
/// See [`StructReader`] for an example.
#[derive(Debug, Clone, Copy)]
pub struct StructWriter {
    cursor: SimPtr,
    start: SimPtr,
    privilege: PrivilegeLevel,
}

impl StructWriter {
    /// Starts writing a struct at `base` with the given privilege.
    #[must_use]
    pub fn new(base: SimPtr, privilege: PrivilegeLevel) -> Self {
        StructWriter {
            cursor: base,
            start: base,
            privilege,
        }
    }

    /// Bytes produced so far.
    #[must_use]
    pub fn bytes_produced(&self) -> u64 {
        self.cursor.addr().wrapping_sub(self.start.addr())
    }

    /// Skips `n` padding bytes (leaves them untouched).
    pub fn skip(&mut self, n: u64) {
        self.cursor = self.cursor.offset(n);
    }

    /// Writes the next `u16` field.
    ///
    /// # Errors
    ///
    /// Any [`Fault`] from the underlying access.
    pub fn put_u16(&mut self, space: &mut AddressSpace, v: u16) -> Result<(), Fault> {
        space.write_u16_priv(self.cursor, v, self.privilege)?;
        self.cursor = self.cursor.offset(2);
        Ok(())
    }

    /// Writes the next `u32` field.
    ///
    /// # Errors
    ///
    /// Any [`Fault`] from the underlying access.
    pub fn put_u32(&mut self, space: &mut AddressSpace, v: u32) -> Result<(), Fault> {
        space.write_u32_priv(self.cursor, v, self.privilege)?;
        self.cursor = self.cursor.offset(4);
        Ok(())
    }

    /// Writes the next `i32` field.
    ///
    /// # Errors
    ///
    /// Any [`Fault`] from the underlying access.
    pub fn put_i32(&mut self, space: &mut AddressSpace, v: i32) -> Result<(), Fault> {
        space.write_i32_priv(self.cursor, v, self.privilege)?;
        self.cursor = self.cursor.offset(4);
        Ok(())
    }

    /// Writes the next `u64` field.
    ///
    /// # Errors
    ///
    /// Any [`Fault`] from the underlying access.
    pub fn put_u64(&mut self, space: &mut AddressSpace, v: u64) -> Result<(), Fault> {
        space.write_u64_priv(self.cursor, v, self.privilege)?;
        self.cursor = self.cursor.offset(8);
        Ok(())
    }

    /// Writes the next pointer-sized (32-bit) field.
    ///
    /// # Errors
    ///
    /// Any [`Fault`] from the underlying access.
    pub fn put_ptr(&mut self, space: &mut AddressSpace, v: SimPtr) -> Result<(), Fault> {
        self.put_u32(space, v.addr() as u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::Protection;

    #[test]
    fn reader_faults_at_first_bad_field() {
        let mut space = AddressSpace::new();
        // Only 6 bytes: the second u32 runs into the guard gap.
        let p = space.map(6, Protection::READ_WRITE, "partial").unwrap();
        let mut r = StructReader::new(p, PrivilegeLevel::User);
        assert!(r.get_u32(&space).is_ok());
        assert!(r.get_u32(&space).is_err());
        assert_eq!(r.bytes_consumed(), 4);
    }

    #[test]
    fn writer_kernel_privilege_faults_user_visible() {
        let mut space = AddressSpace::new();
        // A kernel-mode writer hitting an unmapped user address produces a
        // kernel-mode fault — the seed of a Catastrophic outcome.
        let mut w = StructWriter::new(SimPtr::new(0x100), PrivilegeLevel::Kernel);
        let err = w.put_u32(&mut space, 7).unwrap_err();
        assert!(err.in_kernel_mode());
    }

    #[test]
    fn skip_advances_cursor() {
        let mut space = AddressSpace::new();
        let p = space.map(16, Protection::READ_WRITE, "padded").unwrap();
        let mut w = StructWriter::new(p, PrivilegeLevel::User);
        w.put_u16(&mut space, 1).unwrap();
        w.skip(2);
        w.put_u32(&mut space, 2).unwrap();
        assert_eq!(w.bytes_produced(), 8);

        let mut r = StructReader::new(p, PrivilegeLevel::User);
        assert_eq!(r.get_u16(&space).unwrap(), 1);
        r.skip(2);
        assert_eq!(r.get_u32(&space).unwrap(), 2);
    }

    #[test]
    fn mixed_field_roundtrip() {
        let mut space = AddressSpace::new();
        let p = space.map(32, Protection::READ_WRITE, "mixed").unwrap();
        let mut w = StructWriter::new(p, PrivilegeLevel::User);
        w.put_i32(&mut space, -5).unwrap();
        w.put_u64(&mut space, 0xAABB_CCDD_EEFF_0011).unwrap();
        w.put_ptr(&mut space, SimPtr::new(0xFEED)).unwrap();

        let mut r = StructReader::new(p, PrivilegeLevel::User);
        assert_eq!(r.get_i32(&space).unwrap(), -5);
        assert_eq!(r.get_u64(&space).unwrap(), 0xAABB_CCDD_EEFF_0011);
        assert_eq!(r.get_ptr(&space).unwrap(), SimPtr::new(0xFEED));
    }
}
