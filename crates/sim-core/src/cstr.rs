//! Checked access to C-style narrow and wide strings in simulated memory.
//!
//! C string handling is where most of the paper's Abort failures come from:
//! an unterminated buffer, a dangling `char*`, or a `NULL` passed to a
//! function that blindly scans for the terminator. These helpers perform the
//! scan exactly the way the C code would — byte by byte — so the fault
//! happens at the same place it would on real hardware (e.g. when the scan
//! runs off the end of the region into the guard gap).

use crate::addr::{PrivilegeLevel, SimPtr};
use crate::fault::Fault;
use crate::memory::AddressSpace;

/// Longest string any simulated routine will scan before concluding the
/// buffer is effectively unterminated garbage. Real hardware has no such
/// limit, but a fault always occurs first in practice because regions are
/// guard-gapped; this is a belt-and-braces bound for the simulator itself.
pub const MAX_SCAN: u64 = 1 << 20;

/// Reads a NUL-terminated narrow string starting at `ptr`.
///
/// The scan is performed byte-by-byte with full access checking, so a
/// missing terminator faults at the region boundary exactly like `strlen`
/// walking off the end of a buffer.
///
/// # Errors
///
/// Any [`Fault`] raised while scanning (including the guard-page fault for
/// unterminated buffers).
///
/// # Example
///
/// ```
/// use sim_core::{AddressSpace, Protection, SimPtr};
/// use sim_core::cstr;
/// use sim_core::addr::PrivilegeLevel;
///
/// let mut space = AddressSpace::new();
/// let p = space.map(16, Protection::READ_WRITE, "str").unwrap();
/// cstr::write_cstr(&mut space, p, "hi", PrivilegeLevel::User).unwrap();
/// assert_eq!(cstr::read_cstr(&space, p, PrivilegeLevel::User).unwrap(), b"hi");
/// ```
pub fn read_cstr(
    space: &AddressSpace,
    ptr: SimPtr,
    privilege: PrivilegeLevel,
) -> Result<Vec<u8>, Fault> {
    // Region-at-a-time scan: one access check per region instead of per
    // byte, faulting at exactly the byte the per-byte loop would (the
    // chunk helper performs the same 1-byte check). Bytes past a chunk's
    // materialized prefix are logically zero — an implicit terminator.
    let mut out = Vec::new();
    let mut cursor = ptr;
    let mut remaining = MAX_SCAN;
    while remaining > 0 {
        let (mat, span) = space.readable_chunk(cursor, privilege)?;
        let span = span.min(remaining);
        let mat = &mat[..mat.len().min(span as usize)];
        if let Some(pos) = mat.iter().position(|&b| b == 0) {
            out.extend_from_slice(&mat[..pos]);
            return Ok(out);
        }
        out.extend_from_slice(mat);
        if (mat.len() as u64) < span {
            return Ok(out);
        }
        cursor = cursor.offset(span);
        remaining -= span;
    }
    Ok(out)
}

/// Computes the length of a NUL-terminated narrow string (a checked
/// `strlen`).
///
/// # Errors
///
/// Any [`Fault`] raised while scanning.
pub fn strlen(space: &AddressSpace, ptr: SimPtr, privilege: PrivilegeLevel) -> Result<u64, Fault> {
    Ok(read_cstr(space, ptr, privilege)?.len() as u64)
}

/// Writes `s` plus a NUL terminator at `ptr`.
///
/// # Errors
///
/// Any [`Fault`] raised while writing (the destination must have room for
/// `s.len() + 1` bytes).
pub fn write_cstr(
    space: &mut AddressSpace,
    ptr: SimPtr,
    s: &str,
    privilege: PrivilegeLevel,
) -> Result<(), Fault> {
    write_bytes_nul(space, ptr, s.as_bytes(), privilege)
}

/// Writes raw `bytes` plus a NUL terminator at `ptr`.
///
/// # Errors
///
/// Any [`Fault`] raised while writing.
pub fn write_bytes_nul(
    space: &mut AddressSpace,
    ptr: SimPtr,
    bytes: &[u8],
    privilege: PrivilegeLevel,
) -> Result<(), Fault> {
    // Validate the whole span up front so a fault carries the same
    // payload the old single write reported, then the two writes below
    // cannot fail — no temporary concatenation buffer needed.
    space.check_access(
        ptr,
        bytes.len() as u64 + 1,
        1,
        crate::fault::AccessKind::Write,
        privilege,
    )?;
    space.write_bytes_at(ptr, bytes, privilege)?;
    space.write_u8_priv(ptr.offset(bytes.len() as u64), 0, privilege)
}

/// Reads a NUL-terminated UTF-16 ("wide", `wchar_t*` on Windows) string
/// starting at `ptr`. Used by the Windows CE UNICODE C library twins.
///
/// # Errors
///
/// Any [`Fault`] raised while scanning, including misalignment faults on
/// strict-alignment targets when `ptr` is odd.
pub fn read_wstr(
    space: &AddressSpace,
    ptr: SimPtr,
    privilege: PrivilegeLevel,
) -> Result<Vec<u16>, Fault> {
    // Region-at-a-time scan, mirroring the per-unit loop: the leading
    // 2-byte aligned check reproduces read_u16's fault (guard page on a
    // region with one byte left, misalignment on strict targets), and
    // the cursor's alignment is invariant across iterations.
    let mut out = Vec::new();
    let mut cursor = ptr;
    let mut remaining = MAX_SCAN;
    while remaining > 0 {
        space.check_access(cursor, 2, 2, crate::fault::AccessKind::Read, privilege)?;
        let (mat, span) = space.readable_chunk(cursor, privilege)?;
        let units = (span / 2).min(remaining);
        if units == 0 {
            // Fewer than 2 chunk bytes but the check passed: the unit
            // straddles the kernel-boundary clip. Read it the slow way.
            let unit = space.read_u16_priv(cursor, privilege)?;
            if unit == 0 {
                return Ok(out);
            }
            out.push(unit);
            cursor = cursor.offset(2);
            remaining -= 1;
            continue;
        }
        for u in 0..units as usize {
            let lo = mat.get(u * 2).copied().unwrap_or(0);
            let hi = mat.get(u * 2 + 1).copied().unwrap_or(0);
            let unit = u16::from_le_bytes([lo, hi]);
            if unit == 0 {
                return Ok(out);
            }
            out.push(unit);
        }
        cursor = cursor.offset(units * 2);
        remaining -= units;
    }
    Ok(out)
}

/// Writes `s` as UTF-16 plus a NUL terminator at `ptr`.
///
/// # Errors
///
/// Any [`Fault`] raised while writing.
pub fn write_wstr(
    space: &mut AddressSpace,
    ptr: SimPtr,
    s: &str,
    privilege: PrivilegeLevel,
) -> Result<(), Fault> {
    let mut cursor = ptr;
    for unit in s.encode_utf16() {
        space.write_u16_priv(cursor, unit, privilege)?;
        cursor = cursor.offset(2);
    }
    space.write_u16_priv(cursor, 0, privilege)
}

/// Length in code units of a NUL-terminated wide string (`wcslen`).
///
/// # Errors
///
/// Any [`Fault`] raised while scanning.
pub fn wcslen(space: &AddressSpace, ptr: SimPtr, privilege: PrivilegeLevel) -> Result<u64, Fault> {
    Ok(read_wstr(space, ptr, privilege)?.len() as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::Protection;

    const U: PrivilegeLevel = PrivilegeLevel::User;

    fn space_with(s: &str) -> (AddressSpace, SimPtr) {
        let mut space = AddressSpace::new();
        let p = space
            .map(s.len() as u64 + 1, Protection::READ_WRITE, "str")
            .unwrap();
        write_cstr(&mut space, p, s, U).unwrap();
        (space, p)
    }

    #[test]
    fn roundtrip_narrow() {
        let (space, p) = space_with("ballista");
        assert_eq!(read_cstr(&space, p, U).unwrap(), b"ballista");
        assert_eq!(strlen(&space, p, U).unwrap(), 8);
    }

    #[test]
    fn empty_string() {
        let (space, p) = space_with("");
        assert_eq!(read_cstr(&space, p, U).unwrap(), b"");
        assert_eq!(strlen(&space, p, U).unwrap(), 0);
    }

    #[test]
    fn unterminated_string_faults_at_region_end() {
        let mut space = AddressSpace::new();
        let p = space.map(4, Protection::READ_WRITE, "raw").unwrap();
        space.write_bytes(p, b"abcd").unwrap(); // no terminator fits
        // The byte-wise scan steps one past the region end and hits the
        // unmapped guard gap.
        let err = read_cstr(&space, p, U).unwrap_err();
        assert_eq!(err.addr(), Some(p.addr() + 4));
        assert!(err.is_access_violation());
    }

    #[test]
    fn null_string_faults() {
        let space = AddressSpace::new();
        assert!(read_cstr(&space, SimPtr::NULL, U).is_err());
        assert!(strlen(&space, SimPtr::NULL, U).is_err());
    }

    #[test]
    fn write_into_too_small_buffer_faults() {
        let mut space = AddressSpace::new();
        let p = space.map(3, Protection::READ_WRITE, "tiny").unwrap();
        // "abc" + NUL needs 4 bytes.
        assert!(write_cstr(&mut space, p, "abc", U).is_err());
        assert!(write_cstr(&mut space, p, "ab", U).is_ok());
    }

    #[test]
    fn roundtrip_wide() {
        let mut space = AddressSpace::new();
        let p = space.map(32, Protection::READ_WRITE, "wstr").unwrap();
        write_wstr(&mut space, p, "wide", U).unwrap();
        let units = read_wstr(&space, p, U).unwrap();
        assert_eq!(String::from_utf16(&units).unwrap(), "wide");
        assert_eq!(wcslen(&space, p, U).unwrap(), 4);
    }

    #[test]
    fn wide_scan_on_odd_pointer_faults_on_strict_target() {
        let mut space = AddressSpace::with_strict_alignment();
        let p = space.map(16, Protection::READ_WRITE, "wstr").unwrap();
        write_wstr(&mut space, p, "x", U).unwrap();
        let err = read_wstr(&space, p.offset(1), U).unwrap_err();
        assert!(matches!(err, Fault::Misalignment { .. }));
    }

    #[test]
    fn narrow_string_via_kernel_privilege_reads_kernel_half() {
        let mut space = AddressSpace::new();
        let k = space.map_kernel(8, Protection::READ_WRITE, "kstr").unwrap();
        write_cstr(&mut space, k, "krn", PrivilegeLevel::Kernel).unwrap();
        // User scan faults; kernel scan succeeds.
        assert!(read_cstr(&space, k, U).is_err());
        assert_eq!(
            read_cstr(&space, k, PrivilegeLevel::Kernel).unwrap(),
            b"krn"
        );
    }
}
