//! Hardware-level faults raised by the simulated machine.
//!
//! A [`Fault`] is the simulator's analog of a CPU exception: the price of
//! touching memory you do not own. What a fault *means* depends on who was
//! executing when it happened — the layers above translate user-mode faults
//! into POSIX signals (`SIGSEGV`, `SIGBUS`) or Win32 structured exceptions
//! (`EXCEPTION_ACCESS_VIOLATION`, …), and unhandled kernel-mode faults into a
//! whole-system crash (the paper's *Catastrophic* outcome).

use crate::addr::PrivilegeLevel;
use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;

/// Direction of the memory access that faulted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccessKind {
    /// A load.
    Read,
    /// A store.
    Write,
    /// An instruction fetch (jumping through a bad function pointer).
    Execute,
}

impl fmt::Display for AccessKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccessKind::Read => f.write_str("read"),
            AccessKind::Write => f.write_str("write"),
            AccessKind::Execute => f.write_str("execute"),
        }
    }
}

/// Why an address was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ViolationCause {
    /// The address has never been mapped.
    Unmapped,
    /// The address was mapped once but has been freed (a dangling pointer).
    Dangling,
    /// The region is mapped but its protection forbids this access kind.
    Protection,
    /// A user-mode access touched a kernel-half address.
    KernelAddress,
    /// The address does not fit in the simulated address space at all.
    NonCanonical,
}

impl fmt::Display for ViolationCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ViolationCause::Unmapped => "unmapped address",
            ViolationCause::Dangling => "freed (dangling) region",
            ViolationCause::Protection => "protection violation",
            ViolationCause::KernelAddress => "user access to kernel address",
            ViolationCause::NonCanonical => "non-canonical address",
        };
        f.write_str(s)
    }
}

/// A simulated CPU exception.
///
/// # Example
///
/// ```
/// use sim_core::fault::{Fault, AccessKind, ViolationCause};
/// use sim_core::addr::PrivilegeLevel;
///
/// let f = Fault::AccessViolation {
///     addr: 0,
///     access: AccessKind::Write,
///     cause: ViolationCause::Unmapped,
///     privilege: PrivilegeLevel::User,
/// };
/// assert!(f.is_access_violation());
/// assert!(!f.in_kernel_mode());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Fault {
    /// Memory access to an address the executing code may not touch.
    AccessViolation {
        /// The faulting address.
        addr: u64,
        /// Load, store or fetch.
        access: AccessKind,
        /// Why the address was refused.
        cause: ViolationCause,
        /// Who was executing.
        privilege: PrivilegeLevel,
    },
    /// Misaligned access on a strict-alignment target (the Windows CE
    /// device; x86 targets never raise this).
    Misalignment {
        /// The faulting address.
        addr: u64,
        /// Alignment the access required.
        required: u32,
        /// Who was executing.
        privilege: PrivilegeLevel,
    },
    /// The simulated task ran out of stack (deep recursion driven by a
    /// hostile argument).
    StackOverflow,
    /// Integer division by zero.
    DivideByZero,
    /// A guard page was hit (one past a heap allocation).
    GuardPage {
        /// The faulting address.
        addr: u64,
    },
}

impl Fault {
    /// Whether this is an access violation of any cause.
    #[must_use]
    pub fn is_access_violation(&self) -> bool {
        matches!(self, Fault::AccessViolation { .. })
    }

    /// Whether the fault was raised while executing in kernel mode.
    ///
    /// Unhandled kernel-mode faults crash the whole simulated system; the
    /// user-mode equivalents merely kill the task.
    #[must_use]
    pub fn in_kernel_mode(&self) -> bool {
        matches!(
            self,
            Fault::AccessViolation {
                privilege: PrivilegeLevel::Kernel,
                ..
            } | Fault::Misalignment {
                privilege: PrivilegeLevel::Kernel,
                ..
            }
        )
    }

    /// The faulting address, when the fault has one.
    #[must_use]
    pub fn addr(&self) -> Option<u64> {
        match self {
            Fault::AccessViolation { addr, .. }
            | Fault::Misalignment { addr, .. }
            | Fault::GuardPage { addr } => Some(*addr),
            Fault::StackOverflow | Fault::DivideByZero => None,
        }
    }
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Fault::AccessViolation {
                addr,
                access,
                cause,
                privilege,
            } => write!(
                f,
                "access violation: {privilege}-mode {access} at 0x{addr:08x} ({cause})"
            ),
            Fault::Misalignment {
                addr,
                required,
                privilege,
            } => write!(
                f,
                "datatype misalignment: {privilege}-mode access at 0x{addr:08x} requires {required}-byte alignment"
            ),
            Fault::StackOverflow => f.write_str("stack overflow"),
            Fault::DivideByZero => f.write_str("integer divide by zero"),
            Fault::GuardPage { addr } => write!(f, "guard page hit at 0x{addr:08x}"),
        }
    }
}

impl Error for Fault {}

#[cfg(test)]
mod tests {
    use super::*;

    fn av(privilege: PrivilegeLevel) -> Fault {
        Fault::AccessViolation {
            addr: 0x10,
            access: AccessKind::Read,
            cause: ViolationCause::Unmapped,
            privilege,
        }
    }

    #[test]
    fn kernel_mode_detection() {
        assert!(!av(PrivilegeLevel::User).in_kernel_mode());
        assert!(av(PrivilegeLevel::Kernel).in_kernel_mode());
        assert!(!Fault::StackOverflow.in_kernel_mode());
        assert!(Fault::Misalignment {
            addr: 1,
            required: 4,
            privilege: PrivilegeLevel::Kernel
        }
        .in_kernel_mode());
    }

    #[test]
    fn addr_extraction() {
        assert_eq!(av(PrivilegeLevel::User).addr(), Some(0x10));
        assert_eq!(Fault::StackOverflow.addr(), None);
        assert_eq!(Fault::GuardPage { addr: 0x99 }.addr(), Some(0x99));
    }

    #[test]
    fn display_is_informative() {
        let msg = av(PrivilegeLevel::User).to_string();
        assert!(msg.contains("access violation"));
        assert!(msg.contains("0x00000010"));
        assert!(msg.contains("unmapped"));
        assert!(Fault::DivideByZero.to_string().contains("divide"));
    }

    #[test]
    fn is_error_trait_object() {
        let e: Box<dyn Error + Send + Sync> = Box::new(Fault::StackOverflow);
        assert_eq!(e.to_string(), "stack overflow");
    }
}
