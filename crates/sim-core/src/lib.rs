//! # sim-core — simulated machine substrate
//!
//! This crate provides the lowest layer of the Ballista/Win32 reproduction: a
//! deterministic, fully checked **simulated address space** on which the
//! simulated kernel (`sim-kernel`), C libraries and API personalities are
//! built.
//!
//! The real Ballista experiment fed wild pointers, bogus handles and
//! out-of-range integers into live operating systems and watched what the OS
//! did. Our substitute needs exactly one property to make that measurement
//! meaningful: *memory access through an invalid pointer must be detected and
//! reported the same way real hardware would report it* — as an access
//! violation, misalignment or stack-overflow fault, at the precise point of
//! the access, distinguishing user-mode from kernel-mode accesses (a
//! kernel-mode wild write is how Windows 9x dies; a user-mode one is how a
//! task aborts).
//!
//! # Layers
//!
//! * [`addr`] — the [`SimPtr`] pointer newtype and the
//!   user/kernel address split.
//! * [`fault`] — hardware-level [`Fault`]s.
//! * [`memory`] — the [`AddressSpace`]: region table,
//!   page protections, checked typed access, dangling-region tracking.
//! * [`cstr`] — checked narrow (`char*`) and wide (`wchar_t*`) string access.
//! * [`layout`] — codecs for reading and writing C `struct`s field-wise.
//!
//! # Example
//!
//! ```
//! use sim_core::memory::{AddressSpace, Protection};
//! use sim_core::addr::SimPtr;
//! use sim_core::fault::Fault;
//!
//! let mut space = AddressSpace::new();
//! let buf = space.map(16, Protection::READ_WRITE, "example").unwrap();
//! space.write_u32(buf, 0xdead_beef).unwrap();
//! assert_eq!(space.read_u32(buf).unwrap(), 0xdead_beef);
//!
//! // Dereferencing NULL faults instead of corrupting anything.
//! assert!(matches!(space.read_u32(SimPtr::NULL), Err(Fault::AccessViolation { .. })));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod addr;
pub mod cstr;
pub mod fault;
pub mod layout;
pub mod memory;

pub use addr::SimPtr;
pub use fault::{AccessKind, Fault};
pub use memory::{AddressSpace, Protection, RegionState};
