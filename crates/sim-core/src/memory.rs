//! The simulated address space: region table, protections, checked access.
//!
//! [`AddressSpace`] is the simulator's MMU plus physical memory. Every load
//! and store made by simulated application code, C-library code or kernel
//! code goes through it and is checked the way real hardware would check it:
//!
//! * unmapped addresses fault,
//! * freed regions stay on the books so dangling pointers fault (and can be
//!   diagnosed as such),
//! * page protections are enforced,
//! * user-mode accesses to the kernel half fault,
//! * on strict-alignment targets (Windows CE's hardware in the paper),
//!   misaligned typed accesses fault.
//!
//! Allocations are separated by unmapped guard gaps, so walking off the end
//! of a buffer faults instead of silently reading a neighbour — matching the
//! behaviour Ballista's buffer test values rely on.

use crate::addr::{PrivilegeLevel, SimPtr, ADDR_MAX, KERNEL_BASE};
use crate::fault::{AccessKind, Fault, ViolationCause};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

/// Page-protection flags for a mapped region.
///
/// A tiny hand-rolled flag set (the `bitflags` crate is not among the
/// approved dependencies). Supports the combinations the Win32 and POSIX
/// memory APIs need.
///
/// # Example
///
/// ```
/// use sim_core::memory::Protection;
///
/// let p = Protection::READ_WRITE;
/// assert!(p.can_read() && p.can_write() && !p.can_execute());
/// assert_eq!(format!("{p}"), "rw-");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct Protection(u8);

impl Protection {
    /// No access at all (`PAGE_NOACCESS` / `PROT_NONE`).
    pub const NONE: Protection = Protection(0);
    /// Read-only.
    pub const READ: Protection = Protection(1);
    /// Write-only is not a thing on real MMUs; write implies read here.
    pub const READ_WRITE: Protection = Protection(1 | 2);
    /// Read + execute.
    pub const READ_EXECUTE: Protection = Protection(1 | 4);
    /// Read + write + execute.
    pub const READ_WRITE_EXECUTE: Protection = Protection(1 | 2 | 4);

    /// Whether loads are permitted.
    #[must_use]
    pub const fn can_read(self) -> bool {
        self.0 & 1 != 0
    }

    /// Whether stores are permitted.
    #[must_use]
    pub const fn can_write(self) -> bool {
        self.0 & 2 != 0
    }

    /// Whether instruction fetches are permitted.
    #[must_use]
    pub const fn can_execute(self) -> bool {
        self.0 & 4 != 0
    }

    /// Whether `kind` is permitted under this protection.
    #[must_use]
    pub const fn permits(self, kind: AccessKind) -> bool {
        match kind {
            AccessKind::Read => self.can_read(),
            AccessKind::Write => self.can_write(),
            AccessKind::Execute => self.can_execute(),
        }
    }
}

impl fmt::Display for Protection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}{}{}",
            if self.can_read() { 'r' } else { '-' },
            if self.can_write() { 'w' } else { '-' },
            if self.can_execute() { 'x' } else { '-' },
        )
    }
}

/// Lifecycle state of a region.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RegionState {
    /// Mapped and usable (subject to protection).
    Allocated,
    /// Unmapped; kept on the books so dangling pointers are diagnosable.
    Freed,
}

/// One mapped (or historically mapped) region.
#[derive(Debug, Clone)]
struct Region {
    base: u64,
    len: u64,
    prot: Protection,
    state: RegionState,
    tag: String,
    /// Materialized prefix of the region's contents; bytes at offsets
    /// `>= bytes.len()` are logically zero. Fresh mappings start empty,
    /// so a huge allocation (a wrapped `calloc`, a large `VirtualAlloc`)
    /// costs host memory proportional to the bytes actually written —
    /// which also keeps machine snapshots cheap to clone.
    bytes: Vec<u8>,
}

impl Region {
    fn contains(&self, addr: u64) -> bool {
        addr >= self.base && addr - self.base < self.len
    }

    fn contains_range(&self, addr: u64, len: u64) -> bool {
        self.contains(addr) && len <= self.len - (addr - self.base)
    }

    /// Copies `[off, off + out.len())` into `out`, reading zeros past the
    /// materialized prefix. Bounds must have been checked already.
    fn read_into(&self, off: usize, out: &mut [u8]) {
        out.fill(0);
        let have = self.bytes.len().saturating_sub(off);
        if have > 0 {
            let n = have.min(out.len());
            out[..n].copy_from_slice(&self.bytes[off..off + n]);
        }
    }

    /// Returns the writable slice `[off, off + len)`, materializing the
    /// prefix as needed. Bounds must have been checked already.
    fn write_slice(&mut self, off: usize, len: usize) -> &mut [u8] {
        let end = off + len;
        if self.bytes.len() < end {
            self.bytes.resize(end, 0);
        }
        &mut self.bytes[off..end]
    }
}

/// Error returned when the simulated machine cannot satisfy an allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AllocError {
    /// The user half of the address space is exhausted.
    OutOfMemory,
    /// An explicit placement collided with an existing region.
    Collision {
        /// Requested base address.
        base: u64,
    },
    /// Zero-length or kernel-crossing request.
    BadRequest,
}

impl fmt::Display for AllocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AllocError::OutOfMemory => f.write_str("simulated address space exhausted"),
            AllocError::Collision { base } => {
                write!(f, "placement at 0x{base:08x} collides with an existing region")
            }
            AllocError::BadRequest => f.write_str("invalid allocation request"),
        }
    }
}

impl Error for AllocError {}

/// Gap of unmapped addresses left between consecutive allocations so that
/// buffer overruns fault.
const GUARD_GAP: u64 = 0x1000;

/// Base of the bump allocator for user allocations. Everything below this
/// (including page zero) is permanently unmapped, so small-integer "pointers"
/// always fault.
const USER_ALLOC_BASE: u64 = 0x0001_0000;

/// The simulated flat address space.
///
/// See the [module documentation](self) for the checking rules.
#[derive(Debug, Clone)]
pub struct AddressSpace {
    regions: BTreeMap<u64, Region>,
    next_user: u64,
    next_kernel: u64,
    strict_alignment: bool,
    eager_zero: bool,
}

impl Default for AddressSpace {
    fn default() -> Self {
        Self::new()
    }
}

impl AddressSpace {
    /// Creates an empty address space with x86-style (lenient) alignment.
    #[must_use]
    pub fn new() -> Self {
        AddressSpace {
            regions: BTreeMap::new(),
            next_user: USER_ALLOC_BASE,
            next_kernel: KERNEL_BASE + GUARD_GAP,
            strict_alignment: false,
            eager_zero: false,
        }
    }

    /// Creates an address space that faults on misaligned typed accesses,
    /// modelling the StrongARM hardware of the paper's Windows CE device.
    #[must_use]
    pub fn with_strict_alignment() -> Self {
        AddressSpace {
            strict_alignment: true,
            ..Self::new()
        }
    }

    /// Whether this space enforces strict alignment.
    #[must_use]
    pub fn strict_alignment(&self) -> bool {
        self.strict_alignment
    }

    /// Switches region backing to eager zero-filled allocation — the
    /// pre-sparse-storage behaviour, where mapping N bytes materialized
    /// all N immediately. Observable behaviour is identical (fresh pages
    /// read as zero either way); only the cost model changes. Kept as a
    /// reference mode so the benchmark suite can measure what the lazy
    /// prefix representation actually buys.
    pub fn set_eager_zero(&mut self, eager: bool) {
        self.eager_zero = eager;
    }

    /// Number of live (allocated) regions.
    #[must_use]
    pub fn live_regions(&self) -> usize {
        self.regions
            .values()
            .filter(|r| r.state == RegionState::Allocated)
            .count()
    }

    /// Total bytes currently mapped.
    #[must_use]
    pub fn live_bytes(&self) -> u64 {
        self.regions
            .values()
            .filter(|r| r.state == RegionState::Allocated)
            .map(|r| r.len)
            .sum()
    }

    /// Maps a fresh region of `len` bytes in the user half and returns its
    /// base address. Regions are zero-initialized and separated from their
    /// neighbours by unmapped guard gaps.
    ///
    /// # Errors
    ///
    /// [`AllocError::BadRequest`] for zero-length requests,
    /// [`AllocError::OutOfMemory`] when the user half is exhausted.
    pub fn map(&mut self, len: u64, prot: Protection, tag: &str) -> Result<SimPtr, AllocError> {
        if len == 0 {
            return Err(AllocError::BadRequest);
        }
        let base = self.next_user;
        let end = base.checked_add(len).ok_or(AllocError::OutOfMemory)?;
        if end >= KERNEL_BASE {
            return Err(AllocError::OutOfMemory);
        }
        self.next_user = (end + GUARD_GAP + 0xF) & !0xF;
        self.insert_region(base, len, prot, tag);
        Ok(SimPtr::new(base))
    }

    /// Maps a fresh region in the *kernel* half (for kernel data structures
    /// and for Ballista's "kernel pointer" test values).
    ///
    /// # Errors
    ///
    /// Same conditions as [`AddressSpace::map`].
    pub fn map_kernel(
        &mut self,
        len: u64,
        prot: Protection,
        tag: &str,
    ) -> Result<SimPtr, AllocError> {
        if len == 0 {
            return Err(AllocError::BadRequest);
        }
        let base = self.next_kernel;
        let end = base.checked_add(len).ok_or(AllocError::OutOfMemory)?;
        if end > ADDR_MAX {
            return Err(AllocError::OutOfMemory);
        }
        self.next_kernel = (end + GUARD_GAP + 0xF) & !0xF;
        self.insert_region(base, len, prot, tag);
        Ok(SimPtr::new(base))
    }

    /// Maps a region at an explicit base address (used by loaders and by
    /// `mmap(addr, MAP_FIXED)`-style calls).
    ///
    /// # Errors
    ///
    /// [`AllocError::Collision`] if the range overlaps any region (live or
    /// freed), [`AllocError::BadRequest`] for degenerate ranges.
    pub fn map_at(
        &mut self,
        base: SimPtr,
        len: u64,
        prot: Protection,
        tag: &str,
    ) -> Result<(), AllocError> {
        let base = base.addr();
        if len == 0 || base.checked_add(len).is_none() || base + len > ADDR_MAX + 1 {
            return Err(AllocError::BadRequest);
        }
        if self.range_overlaps(base, len) {
            return Err(AllocError::Collision { base });
        }
        self.insert_region(base, len, prot, tag);
        Ok(())
    }

    fn range_overlaps(&self, base: u64, len: u64) -> bool {
        let end = base + len;
        // Any region starting before `end` and ending after `base`.
        self.regions
            .range(..end)
            .next_back()
            .is_some_and(|(_, r)| r.base + r.len > base)
    }

    fn insert_region(&mut self, base: u64, len: u64, prot: Protection, tag: &str) {
        self.regions.insert(
            base,
            Region {
                base,
                len,
                prot,
                state: RegionState::Allocated,
                tag: tag.to_owned(),
                bytes: if self.eager_zero {
                    vec![0; len as usize]
                } else {
                    Vec::new()
                },
            },
        );
    }

    /// Unmaps the region whose *base* is `ptr`. The region is remembered as
    /// freed so later dereferences report a dangling pointer.
    ///
    /// # Errors
    ///
    /// A user-mode read access violation if `ptr` is not the base of a live
    /// region (mirroring how `free`/`VirtualFree` misuse surfaces).
    pub fn unmap(&mut self, ptr: SimPtr) -> Result<(), Fault> {
        match self.regions.get_mut(&ptr.addr()) {
            Some(r) if r.state == RegionState::Allocated => {
                r.state = RegionState::Freed;
                r.bytes = Vec::new();
                Ok(())
            }
            Some(_) | None => Err(Fault::AccessViolation {
                addr: ptr.addr(),
                access: AccessKind::Read,
                cause: ViolationCause::Unmapped,
                privilege: PrivilegeLevel::User,
            }),
        }
    }

    /// Changes the protection of the live region whose base is `ptr`.
    ///
    /// # Errors
    ///
    /// An access-violation fault if there is no live region based at `ptr`.
    pub fn protect(&mut self, ptr: SimPtr, prot: Protection) -> Result<(), Fault> {
        match self.regions.get_mut(&ptr.addr()) {
            Some(r) if r.state == RegionState::Allocated => {
                r.prot = prot;
                Ok(())
            }
            _ => Err(Fault::AccessViolation {
                addr: ptr.addr(),
                access: AccessKind::Read,
                cause: ViolationCause::Unmapped,
                privilege: PrivilegeLevel::User,
            }),
        }
    }

    /// Looks up the live region containing `ptr`, returning `(base, len,
    /// prot, tag)`. Freed regions are not returned.
    #[must_use]
    pub fn region_containing(&self, ptr: SimPtr) -> Option<(SimPtr, u64, Protection, &str)> {
        let (_, r) = self.regions.range(..=ptr.addr()).next_back()?;
        if r.state == RegionState::Allocated && r.contains(ptr.addr()) {
            Some((SimPtr::new(r.base), r.len, r.prot, r.tag.as_str()))
        } else {
            None
        }
    }

    /// Central access check: validates that `[ptr, ptr+len)` may be accessed
    /// as `kind` at `privilege`, with `align`-byte alignment.
    ///
    /// # Errors
    ///
    /// The precise [`Fault`] real hardware would raise, without performing
    /// any access.
    pub fn check_access(
        &self,
        ptr: SimPtr,
        len: u64,
        align: u32,
        kind: AccessKind,
        privilege: PrivilegeLevel,
    ) -> Result<(), Fault> {
        let addr = ptr.addr();
        let violation = |cause| Fault::AccessViolation {
            addr,
            access: kind,
            cause,
            privilege,
        };
        if ptr.is_non_canonical() {
            return Err(violation(ViolationCause::NonCanonical));
        }
        if privilege == PrivilegeLevel::User && ptr.is_kernel() {
            return Err(violation(ViolationCause::KernelAddress));
        }
        if self.strict_alignment && align > 1 && !ptr.is_aligned(u64::from(align)) {
            return Err(Fault::Misalignment {
                addr,
                required: align,
                privilege,
            });
        }
        let Some((_, region)) = self.regions.range(..=addr).next_back() else {
            return Err(violation(ViolationCause::Unmapped));
        };
        if !region.contains(addr) {
            return Err(violation(ViolationCause::Unmapped));
        }
        if region.state == RegionState::Freed {
            return Err(violation(ViolationCause::Dangling));
        }
        if !region.contains_range(addr, len) {
            // Running off the end of a region into the guard gap.
            return Err(Fault::GuardPage {
                addr: region.base + region.len,
            });
        }
        if !region.prot.permits(kind) {
            return Err(violation(ViolationCause::Protection));
        }
        Ok(())
    }

    /// Reads `len` bytes at `ptr` with full checking.
    ///
    /// # Errors
    ///
    /// Any [`Fault`] from [`AddressSpace::check_access`].
    pub fn read_bytes_at(
        &self,
        ptr: SimPtr,
        len: u64,
        privilege: PrivilegeLevel,
    ) -> Result<Vec<u8>, Fault> {
        self.check_access(ptr, len, 1, AccessKind::Read, privilege)?;
        let (_, r) = self.regions.range(..=ptr.addr()).next_back().expect("checked");
        let off = (ptr.addr() - r.base) as usize;
        let mut out = vec![0u8; len as usize];
        r.read_into(off, &mut out);
        Ok(out)
    }

    /// Writes `bytes` at `ptr` with full checking.
    ///
    /// # Errors
    ///
    /// Any [`Fault`] from [`AddressSpace::check_access`].
    pub fn write_bytes_at(
        &mut self,
        ptr: SimPtr,
        bytes: &[u8],
        privilege: PrivilegeLevel,
    ) -> Result<(), Fault> {
        self.check_access(ptr, bytes.len() as u64, 1, AccessKind::Write, privilege)?;
        let (_, r) = self
            .regions
            .range_mut(..=ptr.addr())
            .next_back()
            .expect("checked");
        let off = (ptr.addr() - r.base) as usize;
        r.write_slice(off, bytes.len()).copy_from_slice(bytes);
        Ok(())
    }

    /// Fills `len` bytes at `ptr` with `value`.
    ///
    /// # Errors
    ///
    /// Any [`Fault`] from [`AddressSpace::check_access`].
    pub fn fill(
        &mut self,
        ptr: SimPtr,
        value: u8,
        len: u64,
        privilege: PrivilegeLevel,
    ) -> Result<(), Fault> {
        self.check_access(ptr, len, 1, AccessKind::Write, privilege)?;
        let (_, r) = self
            .regions
            .range_mut(..=ptr.addr())
            .next_back()
            .expect("checked");
        let off = (ptr.addr() - r.base) as usize;
        if value == 0 {
            // Anything past the materialized prefix is already zero, so
            // only the overlap needs clearing — a zero fill of a fresh
            // region (calloc's hot path) is O(1).
            let have = r.bytes.len().saturating_sub(off);
            if have > 0 {
                let n = have.min(len as usize);
                r.bytes[off..off + n].fill(0);
            }
        } else {
            r.write_slice(off, len as usize).fill(value);
        }
        Ok(())
    }

    fn read_scalar<const N: usize>(
        &self,
        ptr: SimPtr,
        privilege: PrivilegeLevel,
    ) -> Result<[u8; N], Fault> {
        self.check_access(ptr, N as u64, N as u32, AccessKind::Read, privilege)?;
        let (_, r) = self.regions.range(..=ptr.addr()).next_back().expect("checked");
        let off = (ptr.addr() - r.base) as usize;
        let mut out = [0u8; N];
        r.read_into(off, &mut out);
        Ok(out)
    }

    fn write_scalar<const N: usize>(
        &mut self,
        ptr: SimPtr,
        bytes: [u8; N],
        privilege: PrivilegeLevel,
    ) -> Result<(), Fault> {
        self.check_access(ptr, N as u64, N as u32, AccessKind::Write, privilege)?;
        let (_, r) = self
            .regions
            .range_mut(..=ptr.addr())
            .next_back()
            .expect("checked");
        let off = (ptr.addr() - r.base) as usize;
        r.write_slice(off, N).copy_from_slice(&bytes);
        Ok(())
    }
}

/// Generates user-mode typed accessors plus `_priv` variants taking an
/// explicit privilege level.
macro_rules! typed_access {
    ($read:ident, $read_priv:ident, $write:ident, $write_priv:ident, $ty:ty, $n:expr) => {
        impl AddressSpace {
            #[doc = concat!("Reads a little-endian `", stringify!($ty), "` at `ptr` as user-mode code.")]
            ///
            /// # Errors
            ///
            /// Any [`Fault`] from [`AddressSpace::check_access`].
            pub fn $read(&self, ptr: SimPtr) -> Result<$ty, Fault> {
                self.$read_priv(ptr, PrivilegeLevel::User)
            }

            #[doc = concat!("Reads a little-endian `", stringify!($ty), "` at `ptr` at the given privilege.")]
            ///
            /// # Errors
            ///
            /// Any [`Fault`] from [`AddressSpace::check_access`].
            pub fn $read_priv(&self, ptr: SimPtr, privilege: PrivilegeLevel) -> Result<$ty, Fault> {
                Ok(<$ty>::from_le_bytes(self.read_scalar::<$n>(ptr, privilege)?))
            }

            #[doc = concat!("Writes a little-endian `", stringify!($ty), "` at `ptr` as user-mode code.")]
            ///
            /// # Errors
            ///
            /// Any [`Fault`] from [`AddressSpace::check_access`].
            pub fn $write(&mut self, ptr: SimPtr, value: $ty) -> Result<(), Fault> {
                self.$write_priv(ptr, value, PrivilegeLevel::User)
            }

            #[doc = concat!("Writes a little-endian `", stringify!($ty), "` at `ptr` at the given privilege.")]
            ///
            /// # Errors
            ///
            /// Any [`Fault`] from [`AddressSpace::check_access`].
            pub fn $write_priv(
                &mut self,
                ptr: SimPtr,
                value: $ty,
                privilege: PrivilegeLevel,
            ) -> Result<(), Fault> {
                self.write_scalar::<$n>(ptr, value.to_le_bytes(), privilege)
            }
        }
    };
}

typed_access!(read_u8, read_u8_priv, write_u8, write_u8_priv, u8, 1);
typed_access!(read_u16, read_u16_priv, write_u16, write_u16_priv, u16, 2);
typed_access!(read_u32, read_u32_priv, write_u32, write_u32_priv, u32, 4);
typed_access!(read_u64, read_u64_priv, write_u64, write_u64_priv, u64, 8);
typed_access!(read_i8, read_i8_priv, write_i8, write_i8_priv, i8, 1);
typed_access!(read_i16, read_i16_priv, write_i16, write_i16_priv, i16, 2);
typed_access!(read_i32, read_i32_priv, write_i32, write_i32_priv, i32, 4);
typed_access!(read_i64, read_i64_priv, write_i64, write_i64_priv, i64, 8);
typed_access!(read_f64, read_f64_priv, write_f64, write_f64_priv, f64, 8);

impl AddressSpace {
    /// Reads a 32-bit pointer-sized value (the simulated machine is ILP32).
    ///
    /// # Errors
    ///
    /// Any [`Fault`] from [`AddressSpace::check_access`].
    pub fn read_ptr(&self, ptr: SimPtr) -> Result<SimPtr, Fault> {
        Ok(SimPtr::new(u64::from(self.read_u32(ptr)?)))
    }

    /// Writes a 32-bit pointer-sized value.
    ///
    /// # Errors
    ///
    /// Any [`Fault`] from [`AddressSpace::check_access`].
    pub fn write_ptr(&mut self, ptr: SimPtr, value: SimPtr) -> Result<(), Fault> {
        self.write_u32(ptr, value.addr() as u32)
    }

    /// Convenience: user-mode read of `len` bytes.
    ///
    /// # Errors
    ///
    /// Any [`Fault`] from [`AddressSpace::check_access`].
    pub fn read_bytes(&self, ptr: SimPtr, len: u64) -> Result<Vec<u8>, Fault> {
        self.read_bytes_at(ptr, len, PrivilegeLevel::User)
    }

    /// Convenience: user-mode write of `bytes`.
    ///
    /// # Errors
    ///
    /// Any [`Fault`] from [`AddressSpace::check_access`].
    pub fn write_bytes(&mut self, ptr: SimPtr, bytes: &[u8]) -> Result<(), Fault> {
        self.write_bytes_at(ptr, bytes, PrivilegeLevel::User)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_read_write_roundtrip() {
        let mut space = AddressSpace::new();
        let p = space.map(64, Protection::READ_WRITE, "buf").unwrap();
        space.write_bytes(p, b"hello").unwrap();
        assert_eq!(space.read_bytes(p, 5).unwrap(), b"hello");
        assert_eq!(space.read_u8(p.offset(1)).unwrap(), b'e');
    }

    #[test]
    fn null_deref_faults() {
        let space = AddressSpace::new();
        let err = space.read_u32(SimPtr::NULL).unwrap_err();
        assert!(matches!(
            err,
            Fault::AccessViolation {
                cause: ViolationCause::Unmapped,
                ..
            }
        ));
    }

    #[test]
    fn near_null_faults() {
        // Page zero is never mapped: offset-from-NULL pointers fault too.
        let space = AddressSpace::new();
        assert!(space.read_u8(SimPtr::new(0x10)).is_err());
        assert!(space.read_u8(SimPtr::new(0xFFFF)).is_err());
    }

    #[test]
    fn user_access_to_kernel_faults() {
        let mut space = AddressSpace::new();
        let k = space.map_kernel(32, Protection::READ_WRITE, "kdata").unwrap();
        let err = space.read_u8(k).unwrap_err();
        assert!(matches!(
            err,
            Fault::AccessViolation {
                cause: ViolationCause::KernelAddress,
                ..
            }
        ));
        // Kernel-mode access succeeds.
        assert!(space.read_u8_priv(k, PrivilegeLevel::Kernel).is_ok());
    }

    #[test]
    fn kernel_access_to_unmapped_faults_in_kernel_mode() {
        let space = AddressSpace::new();
        let err = space
            .read_u32_priv(SimPtr::new(KERNEL_BASE + 0x100), PrivilegeLevel::Kernel)
            .unwrap_err();
        assert!(err.in_kernel_mode());
    }

    #[test]
    fn dangling_pointer_faults_as_dangling() {
        let mut space = AddressSpace::new();
        let p = space.map(16, Protection::READ_WRITE, "short-lived").unwrap();
        space.unmap(p).unwrap();
        let err = space.read_u8(p).unwrap_err();
        assert!(matches!(
            err,
            Fault::AccessViolation {
                cause: ViolationCause::Dangling,
                ..
            }
        ));
    }

    #[test]
    fn double_free_faults() {
        let mut space = AddressSpace::new();
        let p = space.map(16, Protection::READ_WRITE, "x").unwrap();
        space.unmap(p).unwrap();
        assert!(space.unmap(p).is_err());
        assert!(space.unmap(SimPtr::new(0x5555)).is_err());
    }

    #[test]
    fn write_to_readonly_faults() {
        let mut space = AddressSpace::new();
        let p = space.map(16, Protection::READ, "ro").unwrap();
        assert!(space.read_u8(p).is_ok());
        let err = space.write_u8(p, 1).unwrap_err();
        assert!(matches!(
            err,
            Fault::AccessViolation {
                cause: ViolationCause::Protection,
                access: AccessKind::Write,
                ..
            }
        ));
    }

    #[test]
    fn noaccess_region_faults_on_read() {
        let mut space = AddressSpace::new();
        let p = space.map(16, Protection::NONE, "guard").unwrap();
        assert!(space.read_u8(p).is_err());
        space.protect(p, Protection::READ).unwrap();
        assert!(space.read_u8(p).is_ok());
    }

    #[test]
    fn overrun_hits_guard_page() {
        let mut space = AddressSpace::new();
        let p = space.map(8, Protection::READ_WRITE, "small").unwrap();
        let err = space.read_bytes(p, 9).unwrap_err();
        assert!(matches!(err, Fault::GuardPage { .. }));
        // One past the end is plain unmapped.
        assert!(space.read_u8(p.offset(8)).is_err());
    }

    #[test]
    fn allocations_are_separated() {
        let mut space = AddressSpace::new();
        let a = space.map(16, Protection::READ_WRITE, "a").unwrap();
        let b = space.map(16, Protection::READ_WRITE, "b").unwrap();
        assert!(b.addr() >= a.addr() + 16 + GUARD_GAP);
    }

    #[test]
    fn strict_alignment_faults_misaligned_typed_access() {
        let mut space = AddressSpace::with_strict_alignment();
        let p = space.map(16, Protection::READ_WRITE, "buf").unwrap();
        assert!(space.read_u32(p).is_ok());
        let err = space.read_u32(p.offset(1)).unwrap_err();
        assert!(matches!(err, Fault::Misalignment { required: 4, .. }));
        // Byte access is always fine.
        assert!(space.read_u8(p.offset(1)).is_ok());
        // Lenient (x86) space does not fault.
        let mut x86 = AddressSpace::new();
        let q = x86.map(16, Protection::READ_WRITE, "buf").unwrap();
        assert!(x86.read_u32(q.offset(1)).is_ok());
    }

    #[test]
    fn non_canonical_pointer_faults() {
        let space = AddressSpace::new();
        let err = space.read_u8(SimPtr::new(u64::MAX - 10)).unwrap_err();
        assert!(matches!(
            err,
            Fault::AccessViolation {
                cause: ViolationCause::NonCanonical,
                ..
            }
        ));
    }

    #[test]
    fn map_at_collision_detected() {
        let mut space = AddressSpace::new();
        space
            .map_at(SimPtr::new(0x4000_0000), 0x100, Protection::READ_WRITE, "fixed")
            .unwrap();
        let err = space
            .map_at(SimPtr::new(0x4000_0080), 0x100, Protection::READ, "overlap")
            .unwrap_err();
        assert!(matches!(err, AllocError::Collision { .. }));
        // Adjacent is fine.
        space
            .map_at(SimPtr::new(0x4000_0100), 0x100, Protection::READ, "adjacent")
            .unwrap();
    }

    #[test]
    fn zero_length_map_rejected() {
        let mut space = AddressSpace::new();
        assert_eq!(
            space.map(0, Protection::READ, "nil").unwrap_err(),
            AllocError::BadRequest
        );
    }

    #[test]
    fn typed_values_roundtrip() {
        let mut space = AddressSpace::new();
        let p = space.map(64, Protection::READ_WRITE, "scalars").unwrap();
        space.write_u16(p, 0xBEEF).unwrap();
        assert_eq!(space.read_u16(p).unwrap(), 0xBEEF);
        space.write_i32(p.offset(4), -7).unwrap();
        assert_eq!(space.read_i32(p.offset(4)).unwrap(), -7);
        space.write_u64(p.offset(8), u64::MAX).unwrap();
        assert_eq!(space.read_u64(p.offset(8)).unwrap(), u64::MAX);
        space.write_f64(p.offset(16), -0.5).unwrap();
        assert_eq!(space.read_f64(p.offset(16)).unwrap(), -0.5);
        space.write_ptr(p.offset(24), SimPtr::new(0x1234)).unwrap();
        assert_eq!(space.read_ptr(p.offset(24)).unwrap(), SimPtr::new(0x1234));
    }

    #[test]
    fn region_containing_reports_metadata() {
        let mut space = AddressSpace::new();
        let p = space.map(32, Protection::READ, "tagged").unwrap();
        let (base, len, prot, tag) = space.region_containing(p.offset(5)).unwrap();
        assert_eq!(base, p);
        assert_eq!(len, 32);
        assert_eq!(prot, Protection::READ);
        assert_eq!(tag, "tagged");
        assert!(space.region_containing(SimPtr::new(0x30)).is_none());
    }

    #[test]
    fn live_accounting() {
        let mut space = AddressSpace::new();
        assert_eq!(space.live_regions(), 0);
        let a = space.map(10, Protection::READ_WRITE, "a").unwrap();
        let _b = space.map(20, Protection::READ_WRITE, "b").unwrap();
        assert_eq!(space.live_regions(), 2);
        assert_eq!(space.live_bytes(), 30);
        space.unmap(a).unwrap();
        assert_eq!(space.live_regions(), 1);
        assert_eq!(space.live_bytes(), 20);
    }

    #[test]
    fn protection_display_and_permits() {
        assert_eq!(Protection::NONE.to_string(), "---");
        assert_eq!(Protection::READ.to_string(), "r--");
        assert_eq!(Protection::READ_WRITE.to_string(), "rw-");
        assert_eq!(Protection::READ_WRITE_EXECUTE.to_string(), "rwx");
        assert!(Protection::READ_EXECUTE.permits(AccessKind::Execute));
        assert!(!Protection::READ.permits(AccessKind::Write));
    }

    #[test]
    fn fill_fills() {
        let mut space = AddressSpace::new();
        let p = space.map(8, Protection::READ_WRITE, "f").unwrap();
        space.fill(p, 0xAA, 8, PrivilegeLevel::User).unwrap();
        assert_eq!(space.read_bytes(p, 8).unwrap(), vec![0xAA; 8]);
    }
}
