//! The simulated address space: region table, protections, checked access.
//!
//! [`AddressSpace`] is the simulator's MMU plus physical memory. Every load
//! and store made by simulated application code, C-library code or kernel
//! code goes through it and is checked the way real hardware would check it:
//!
//! * unmapped addresses fault,
//! * freed regions stay on the books so dangling pointers fault (and can be
//!   diagnosed as such),
//! * page protections are enforced,
//! * user-mode accesses to the kernel half fault,
//! * on strict-alignment targets (Windows CE's hardware in the paper),
//!   misaligned typed accesses fault.
//!
//! Allocations are separated by unmapped guard gaps, so walking off the end
//! of a buffer faults instead of silently reading a neighbour — matching the
//! behaviour Ballista's buffer test values rely on.

use crate::addr::{PrivilegeLevel, SimPtr, ADDR_MAX, KERNEL_BASE};
use crate::fault::{AccessKind, Fault, ViolationCause};
use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;

/// Page-protection flags for a mapped region.
///
/// A tiny hand-rolled flag set (the `bitflags` crate is not among the
/// approved dependencies). Supports the combinations the Win32 and POSIX
/// memory APIs need.
///
/// # Example
///
/// ```
/// use sim_core::memory::Protection;
///
/// let p = Protection::READ_WRITE;
/// assert!(p.can_read() && p.can_write() && !p.can_execute());
/// assert_eq!(format!("{p}"), "rw-");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct Protection(u8);

impl Protection {
    /// No access at all (`PAGE_NOACCESS` / `PROT_NONE`).
    pub const NONE: Protection = Protection(0);
    /// Read-only.
    pub const READ: Protection = Protection(1);
    /// Write-only is not a thing on real MMUs; write implies read here.
    pub const READ_WRITE: Protection = Protection(1 | 2);
    /// Read + execute.
    pub const READ_EXECUTE: Protection = Protection(1 | 4);
    /// Read + write + execute.
    pub const READ_WRITE_EXECUTE: Protection = Protection(1 | 2 | 4);

    /// Whether loads are permitted.
    #[must_use]
    pub const fn can_read(self) -> bool {
        self.0 & 1 != 0
    }

    /// Whether stores are permitted.
    #[must_use]
    pub const fn can_write(self) -> bool {
        self.0 & 2 != 0
    }

    /// Whether instruction fetches are permitted.
    #[must_use]
    pub const fn can_execute(self) -> bool {
        self.0 & 4 != 0
    }

    /// Whether `kind` is permitted under this protection.
    #[must_use]
    pub const fn permits(self, kind: AccessKind) -> bool {
        match kind {
            AccessKind::Read => self.can_read(),
            AccessKind::Write => self.can_write(),
            AccessKind::Execute => self.can_execute(),
        }
    }
}

impl fmt::Display for Protection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}{}{}",
            if self.can_read() { 'r' } else { '-' },
            if self.can_write() { 'w' } else { '-' },
            if self.can_execute() { 'x' } else { '-' },
        )
    }
}

/// Lifecycle state of a region.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RegionState {
    /// Mapped and usable (subject to protection).
    Allocated,
    /// Unmapped; kept on the books so dangling pointers are diagnosable.
    Freed,
}

/// One mapped (or historically mapped) region.
#[derive(Debug, Clone)]
struct Region {
    base: u64,
    len: u64,
    prot: Protection,
    state: RegionState,
    tag: &'static str,
    /// Materialized prefix of the region's contents; bytes at offsets
    /// `>= bytes.len()` are logically zero. Fresh mappings start empty,
    /// so a huge allocation (a wrapped `calloc`, a large `VirtualAlloc`)
    /// costs host memory proportional to the bytes actually written —
    /// which also keeps machine snapshots cheap to clone.
    bytes: Vec<u8>,
}

/// Logical content equality: bytes past the materialized prefix are zero,
/// so `[1, 0, 0]` and `[1]` describe the same region contents.
fn logical_bytes_eq(a: &[u8], b: &[u8]) -> bool {
    let (short, long) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    long[..short.len()] == *short && long[short.len()..].iter().all(|&x| x == 0)
}

impl PartialEq for Region {
    fn eq(&self, other: &Self) -> bool {
        self.base == other.base
            && self.len == other.len
            && self.prot == other.prot
            && self.state == other.state
            && self.tag == other.tag
            && logical_bytes_eq(&self.bytes, &other.bytes)
    }
}

impl Eq for Region {}

impl Region {
    fn contains(&self, addr: u64) -> bool {
        addr >= self.base && addr - self.base < self.len
    }

    fn contains_range(&self, addr: u64, len: u64) -> bool {
        self.contains(addr) && len <= self.len - (addr - self.base)
    }

    /// Copies `[off, off + out.len())` into `out`, reading zeros past the
    /// materialized prefix. Bounds must have been checked already.
    fn read_into(&self, off: usize, out: &mut [u8]) {
        out.fill(0);
        let have = self.bytes.len().saturating_sub(off);
        if have > 0 {
            let n = have.min(out.len());
            out[..n].copy_from_slice(&self.bytes[off..off + n]);
        }
    }

    /// Returns the writable slice `[off, off + len)`, materializing the
    /// prefix as needed. Bounds must have been checked already.
    fn write_slice(&mut self, off: usize, len: usize) -> &mut [u8] {
        let end = off + len;
        if self.bytes.len() < end {
            self.bytes.resize(end, 0);
        }
        &mut self.bytes[off..end]
    }
}

/// Error returned when the simulated machine cannot satisfy an allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AllocError {
    /// The user half of the address space is exhausted.
    OutOfMemory,
    /// An explicit placement collided with an existing region.
    Collision {
        /// Requested base address.
        base: u64,
    },
    /// Zero-length or kernel-crossing request.
    BadRequest,
}

impl fmt::Display for AllocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AllocError::OutOfMemory => f.write_str("simulated address space exhausted"),
            AllocError::Collision { base } => {
                write!(f, "placement at 0x{base:08x} collides with an existing region")
            }
            AllocError::BadRequest => f.write_str("invalid allocation request"),
        }
    }
}

impl Error for AllocError {}

/// Gap of unmapped addresses left between consecutive allocations so that
/// buffer overruns fault.
const GUARD_GAP: u64 = 0x1000;

/// Base of the bump allocator for user allocations. Everything below this
/// (including page zero) is permanently unmapped, so small-integer "pointers"
/// always fault.
const USER_ALLOC_BASE: u64 = 0x0001_0000;

/// The simulated flat address space.
///
/// See the [module documentation](self) for the checking rules.
#[derive(Debug, Clone)]
pub struct AddressSpace {
    /// Region table, kept sorted by base (the bump allocators hand out
    /// monotonically increasing bases, so inserts are almost always
    /// appends and lookups are a binary search over a dense `Vec`).
    regions: Vec<Region>,
    next_user: u64,
    next_kernel: u64,
    strict_alignment: bool,
    eager_zero: bool,
    /// Recycled byte buffers from regions dropped by
    /// [`AddressSpace::reset_from`]: per-case argument regions are mapped
    /// and discarded at the same bases every case, so reusing their
    /// backing allocation turns the per-case materialize/free churn into
    /// a pop/push. Not architectural state (equality ignores it).
    spare: Vec<Vec<u8>>,
    /// Bases of regions touched (mapped, unmapped, protected or written)
    /// since the last [`AddressSpace::mark_clean`]. The journal is recorded
    /// *before* each mutation, so a mutator that panics midway still leaves
    /// enough information for [`AddressSpace::reset_from`] to undo it. A
    /// short `Vec` with linear-scan dedup beats any set structure here: a
    /// single test case touches a handful of regions.
    dirty: Vec<u64>,
}

/// Equality is over the *architectural* state — the region table, bump
/// cursors and configuration — not the dirty journal, which is restore
/// bookkeeping rather than machine state.
impl PartialEq for AddressSpace {
    fn eq(&self, other: &Self) -> bool {
        self.next_user == other.next_user
            && self.next_kernel == other.next_kernel
            && self.strict_alignment == other.strict_alignment
            && self.regions == other.regions
    }
}

impl Eq for AddressSpace {}

impl Default for AddressSpace {
    fn default() -> Self {
        Self::new()
    }
}

impl AddressSpace {
    /// Creates an empty address space with x86-style (lenient) alignment.
    #[must_use]
    pub fn new() -> Self {
        AddressSpace {
            regions: Vec::new(),
            next_user: USER_ALLOC_BASE,
            next_kernel: KERNEL_BASE + GUARD_GAP,
            strict_alignment: false,
            eager_zero: false,
            spare: Vec::new(),
            dirty: Vec::new(),
        }
    }

    /// Creates an address space that faults on misaligned typed accesses,
    /// modelling the StrongARM hardware of the paper's Windows CE device.
    #[must_use]
    pub fn with_strict_alignment() -> Self {
        AddressSpace {
            strict_alignment: true,
            ..Self::new()
        }
    }

    /// Whether this space enforces strict alignment.
    #[must_use]
    pub fn strict_alignment(&self) -> bool {
        self.strict_alignment
    }

    /// Switches region backing to eager zero-filled allocation — the
    /// pre-sparse-storage behaviour, where mapping N bytes materialized
    /// all N immediately. Observable behaviour is identical (fresh pages
    /// read as zero either way); only the cost model changes. Kept as a
    /// reference mode so the benchmark suite can measure what the lazy
    /// prefix representation actually buys.
    pub fn set_eager_zero(&mut self, eager: bool) {
        self.eager_zero = eager;
    }

    /// Records `base` in the dirty journal (idempotent).
    fn note_dirty(dirty: &mut Vec<u64>, base: u64) {
        if !dirty.contains(&base) {
            dirty.push(base);
        }
    }

    /// Number of regions touched since the last [`AddressSpace::mark_clean`].
    #[must_use]
    pub fn dirty_regions(&self) -> usize {
        self.dirty.len()
    }

    /// Base addresses of the regions touched since the last
    /// [`AddressSpace::mark_clean`], in touch order. Lets harness layers
    /// that snapshot *around* the address space (e.g. the crashcon
    /// remount loop) assert their own bookkeeping stays O(touched) —
    /// swapping a filesystem image into a resident kernel must not dirty
    /// any memory region.
    #[must_use]
    pub fn dirty_bases(&self) -> &[u64] {
        &self.dirty
    }

    /// Declares the current state pristine: subsequent mutations start a new
    /// dirty journal. Called when a machine image is captured as a restore
    /// baseline.
    pub fn mark_clean(&mut self) {
        self.dirty.clear();
    }

    /// Rolls every region touched since the last [`AddressSpace::mark_clean`]
    /// back to its state in `baseline`, in O(touched) instead of O(space).
    ///
    /// `self` must have started as a clone of `baseline` (the resident
    /// machine of a batched campaign, reset between test cases). Regions the
    /// baseline never had are removed outright; that is safe because the
    /// bump allocators never reuse a base — a freed region stays on the
    /// books, and [`AddressSpace::map_at`] refuses ranges overlapping any
    /// historical region — so removing a post-baseline region cannot
    /// resurrect an address an earlier case observed as dangling.
    pub fn reset_from(&mut self, baseline: &AddressSpace) {
        while let Some(base) = self.dirty.pop() {
            match baseline.regions.binary_search_by_key(&base, |r| r.base) {
                Ok(bi) => match self.regions.binary_search_by_key(&base, |r| r.base) {
                    // `clone_from` reuses the live region's byte buffer
                    // instead of allocating a fresh one every reset.
                    Ok(li) => self.regions[li].clone_from(&baseline.regions[bi]),
                    Err(li) => self.regions.insert(li, baseline.regions[bi].clone()),
                },
                Err(_) => {
                    if let Ok(li) = self.regions.binary_search_by_key(&base, |r| r.base) {
                        let mut gone = self.regions.remove(li);
                        if self.spare.len() < 8 && gone.bytes.capacity() > 0 {
                            gone.bytes.clear();
                            self.spare.push(gone.bytes);
                        }
                    }
                }
            }
        }
        self.next_user = baseline.next_user;
        self.next_kernel = baseline.next_kernel;
        self.eager_zero = baseline.eager_zero;
    }

    /// Number of live (allocated) regions.
    #[must_use]
    pub fn live_regions(&self) -> usize {
        self.regions
            .iter()
            .filter(|r| r.state == RegionState::Allocated)
            .count()
    }

    /// Total bytes currently mapped.
    #[must_use]
    pub fn live_bytes(&self) -> u64 {
        self.regions
            .iter()
            .filter(|r| r.state == RegionState::Allocated)
            .map(|r| r.len)
            .sum()
    }

    /// Maps a fresh region of `len` bytes in the user half and returns its
    /// base address. Regions are zero-initialized and separated from their
    /// neighbours by unmapped guard gaps.
    ///
    /// # Errors
    ///
    /// [`AllocError::BadRequest`] for zero-length requests,
    /// [`AllocError::OutOfMemory`] when the user half is exhausted.
    pub fn map(&mut self, len: u64, prot: Protection, tag: &'static str) -> Result<SimPtr, AllocError> {
        if len == 0 {
            return Err(AllocError::BadRequest);
        }
        let base = self.next_user;
        let end = base.checked_add(len).ok_or(AllocError::OutOfMemory)?;
        if end >= KERNEL_BASE {
            return Err(AllocError::OutOfMemory);
        }
        self.next_user = (end + GUARD_GAP + 0xF) & !0xF;
        self.insert_region(base, len, prot, tag);
        Ok(SimPtr::new(base))
    }

    /// Maps a fresh region in the *kernel* half (for kernel data structures
    /// and for Ballista's "kernel pointer" test values).
    ///
    /// # Errors
    ///
    /// Same conditions as [`AddressSpace::map`].
    pub fn map_kernel(
        &mut self,
        len: u64,
        prot: Protection,
        tag: &'static str,
    ) -> Result<SimPtr, AllocError> {
        if len == 0 {
            return Err(AllocError::BadRequest);
        }
        let base = self.next_kernel;
        let end = base.checked_add(len).ok_or(AllocError::OutOfMemory)?;
        if end > ADDR_MAX {
            return Err(AllocError::OutOfMemory);
        }
        self.next_kernel = (end + GUARD_GAP + 0xF) & !0xF;
        self.insert_region(base, len, prot, tag);
        Ok(SimPtr::new(base))
    }

    /// Maps a region at an explicit base address (used by loaders and by
    /// `mmap(addr, MAP_FIXED)`-style calls).
    ///
    /// # Errors
    ///
    /// [`AllocError::Collision`] if the range overlaps any region (live or
    /// freed), [`AllocError::BadRequest`] for degenerate ranges.
    pub fn map_at(
        &mut self,
        base: SimPtr,
        len: u64,
        prot: Protection,
        tag: &'static str,
    ) -> Result<(), AllocError> {
        let base = base.addr();
        if len == 0 || base.checked_add(len).is_none() || base + len > ADDR_MAX + 1 {
            return Err(AllocError::BadRequest);
        }
        if self.range_overlaps(base, len) {
            return Err(AllocError::Collision { base });
        }
        self.insert_region(base, len, prot, tag);
        Ok(())
    }

    /// Index of the last region whose base is `<= addr`.
    #[inline]
    fn region_idx_le(&self, addr: u64) -> Option<usize> {
        self.regions.partition_point(|r| r.base <= addr).checked_sub(1)
    }

    /// The last region whose base is `<= addr` — the candidate for any
    /// containment check, mirroring `BTreeMap::range(..=addr).next_back()`.
    #[inline]
    fn region_le(&self, addr: u64) -> Option<&Region> {
        self.region_idx_le(addr).map(|i| &self.regions[i])
    }

    fn range_overlaps(&self, base: u64, len: u64) -> bool {
        let end = base + len;
        // Any region starting before `end` and ending after `base`.
        self.regions
            .partition_point(|r| r.base < end)
            .checked_sub(1)
            .is_some_and(|i| {
                let r = &self.regions[i];
                r.base + r.len > base
            })
    }

    fn insert_region(&mut self, base: u64, len: u64, prot: Protection, tag: &'static str) {
        Self::note_dirty(&mut self.dirty, base);
        let region = Region {
            base,
            len,
            prot,
            state: RegionState::Allocated,
            tag,
            bytes: if self.eager_zero {
                vec![0; len as usize]
            } else {
                Vec::new()
            },
        };
        // Bump allocation appends; only `map_at` can land mid-table.
        match self.regions.last() {
            Some(last) if last.base < base => self.regions.push(region),
            _ => {
                let i = self.regions.partition_point(|r| r.base < base);
                self.regions.insert(i, region);
            }
        }
    }

    /// Unmaps the region whose *base* is `ptr`. The region is remembered as
    /// freed so later dereferences report a dangling pointer.
    ///
    /// # Errors
    ///
    /// A user-mode read access violation if `ptr` is not the base of a live
    /// region (mirroring how `free`/`VirtualFree` misuse surfaces).
    pub fn unmap(&mut self, ptr: SimPtr) -> Result<(), Fault> {
        match self.regions.binary_search_by_key(&ptr.addr(), |r| r.base) {
            Ok(i) if self.regions[i].state == RegionState::Allocated => {
                Self::note_dirty(&mut self.dirty, ptr.addr());
                let r = &mut self.regions[i];
                r.state = RegionState::Freed;
                r.bytes = Vec::new();
                Ok(())
            }
            Ok(_) | Err(_) => Err(Fault::AccessViolation {
                addr: ptr.addr(),
                access: AccessKind::Read,
                cause: ViolationCause::Unmapped,
                privilege: PrivilegeLevel::User,
            }),
        }
    }

    /// Changes the protection of the live region whose base is `ptr`.
    ///
    /// # Errors
    ///
    /// An access-violation fault if there is no live region based at `ptr`.
    pub fn protect(&mut self, ptr: SimPtr, prot: Protection) -> Result<(), Fault> {
        match self.regions.binary_search_by_key(&ptr.addr(), |r| r.base) {
            Ok(i) if self.regions[i].state == RegionState::Allocated => {
                Self::note_dirty(&mut self.dirty, ptr.addr());
                self.regions[i].prot = prot;
                Ok(())
            }
            _ => Err(Fault::AccessViolation {
                addr: ptr.addr(),
                access: AccessKind::Read,
                cause: ViolationCause::Unmapped,
                privilege: PrivilegeLevel::User,
            }),
        }
    }

    /// Looks up the live region containing `ptr`, returning `(base, len,
    /// prot, tag)`. Freed regions are not returned.
    #[must_use]
    pub fn region_containing(&self, ptr: SimPtr) -> Option<(SimPtr, u64, Protection, &str)> {
        let r = self.region_le(ptr.addr())?;
        if r.state == RegionState::Allocated && r.contains(ptr.addr()) {
            Some((SimPtr::new(r.base), r.len, r.prot, r.tag))
        } else {
            None
        }
    }

    /// Central access check: validates that `[ptr, ptr+len)` may be accessed
    /// as `kind` at `privilege`, with `align`-byte alignment.
    ///
    /// # Errors
    ///
    /// The precise [`Fault`] real hardware would raise, without performing
    /// any access.
    pub fn check_access(
        &self,
        ptr: SimPtr,
        len: u64,
        align: u32,
        kind: AccessKind,
        privilege: PrivilegeLevel,
    ) -> Result<(), Fault> {
        let addr = ptr.addr();
        let violation = |cause| Fault::AccessViolation {
            addr,
            access: kind,
            cause,
            privilege,
        };
        if ptr.is_non_canonical() {
            return Err(violation(ViolationCause::NonCanonical));
        }
        if privilege == PrivilegeLevel::User && ptr.is_kernel() {
            return Err(violation(ViolationCause::KernelAddress));
        }
        if self.strict_alignment && align > 1 && !ptr.is_aligned(u64::from(align)) {
            return Err(Fault::Misalignment {
                addr,
                required: align,
                privilege,
            });
        }
        let Some(region) = self.region_le(addr) else {
            return Err(violation(ViolationCause::Unmapped));
        };
        if !region.contains(addr) {
            return Err(violation(ViolationCause::Unmapped));
        }
        if region.state == RegionState::Freed {
            return Err(violation(ViolationCause::Dangling));
        }
        if !region.contains_range(addr, len) {
            // Running off the end of a region into the guard gap.
            return Err(Fault::GuardPage {
                addr: region.base + region.len,
            });
        }
        if !region.prot.permits(kind) {
            return Err(violation(ViolationCause::Protection));
        }
        Ok(())
    }

    /// Reads `len` bytes at `ptr` with full checking.
    ///
    /// # Errors
    ///
    /// Any [`Fault`] from [`AddressSpace::check_access`].
    pub fn read_bytes_at(
        &self,
        ptr: SimPtr,
        len: u64,
        privilege: PrivilegeLevel,
    ) -> Result<Vec<u8>, Fault> {
        self.check_access(ptr, len, 1, AccessKind::Read, privilege)?;
        let r = self.region_le(ptr.addr()).expect("checked");
        let off = (ptr.addr() - r.base) as usize;
        let mut out = vec![0u8; len as usize];
        r.read_into(off, &mut out);
        Ok(out)
    }

    /// Writes `bytes` at `ptr` with full checking.
    ///
    /// # Errors
    ///
    /// Any [`Fault`] from [`AddressSpace::check_access`].
    pub fn write_bytes_at(
        &mut self,
        ptr: SimPtr,
        bytes: &[u8],
        privilege: PrivilegeLevel,
    ) -> Result<(), Fault> {
        self.check_access(ptr, bytes.len() as u64, 1, AccessKind::Write, privilege)?;
        let i = self.region_idx_le(ptr.addr()).expect("checked");
        Self::note_dirty(&mut self.dirty, self.regions[i].base);
        if self.regions[i].bytes.capacity() == 0 {
            if let Some(buf) = self.spare.pop() {
                self.regions[i].bytes = buf;
            }
        }
        let r = &mut self.regions[i];
        let off = (ptr.addr() - r.base) as usize;
        r.write_slice(off, bytes.len()).copy_from_slice(bytes);
        Ok(())
    }

    /// Fills `len` bytes at `ptr` with `value`.
    ///
    /// # Errors
    ///
    /// Any [`Fault`] from [`AddressSpace::check_access`].
    pub fn fill(
        &mut self,
        ptr: SimPtr,
        value: u8,
        len: u64,
        privilege: PrivilegeLevel,
    ) -> Result<(), Fault> {
        self.check_access(ptr, len, 1, AccessKind::Write, privilege)?;
        let i = self.region_idx_le(ptr.addr()).expect("checked");
        Self::note_dirty(&mut self.dirty, self.regions[i].base);
        if self.regions[i].bytes.capacity() == 0 {
            if let Some(buf) = self.spare.pop() {
                self.regions[i].bytes = buf;
            }
        }
        let r = &mut self.regions[i];
        let off = (ptr.addr() - r.base) as usize;
        if value == 0 {
            // Anything past the materialized prefix is already zero, so
            // only the overlap needs clearing — a zero fill of a fresh
            // region (calloc's hot path) is O(1).
            let have = r.bytes.len().saturating_sub(off);
            if have > 0 {
                let n = have.min(len as usize);
                r.bytes[off..off + n].fill(0);
            }
        } else {
            r.write_slice(off, len as usize).fill(value);
        }
        Ok(())
    }

    /// One maximal readable chunk starting at `ptr`: the materialized
    /// bytes plus the chunk's logical length in bytes. The chunk runs to
    /// the end of the containing region — clipped at the kernel boundary
    /// for user-mode accesses, where the byte-wise scan would fault —
    /// and bytes past the materialized slice are logically zero.
    ///
    /// The access check performed is exactly the 1-byte check
    /// [`AddressSpace::read_u8_priv`] would make at `ptr`, so scanning
    /// loops built on this helper fault at the same byte, with the same
    /// [`Fault`], as their byte-at-a-time equivalents.
    ///
    /// # Errors
    ///
    /// Any [`Fault`] from [`AddressSpace::check_access`] for a 1-byte
    /// read at `ptr`.
    pub fn readable_chunk(
        &self,
        ptr: SimPtr,
        privilege: PrivilegeLevel,
    ) -> Result<(&[u8], u64), Fault> {
        self.check_access(ptr, 1, 1, AccessKind::Read, privilege)?;
        let r = self.region_le(ptr.addr()).expect("checked");
        let off = (ptr.addr() - r.base) as usize;
        let mut span = r.len - (ptr.addr() - r.base);
        if privilege == PrivilegeLevel::User && ptr.addr() < KERNEL_BASE {
            span = span.min(KERNEL_BASE - ptr.addr());
        }
        let mat = r.bytes.len().saturating_sub(off).min(span as usize);
        Ok((r.bytes.get(off..off + mat).unwrap_or(&[]), span))
    }

    /// Length of the longest prefix of `[ptr, ptr + n)` every byte of
    /// which passes the 1-byte `check_access` as `kind` at `privilege`.
    /// Returns `n` when the whole range is accessible; otherwise the
    /// 1-byte access at `ptr + accessible_span(..)` is exactly the one
    /// that faults. Walks regions, not bytes, so it is O(regions
    /// overlapped), letting `mem*`-style loops run bulk operations over
    /// the accessible prefix while faulting byte-exactly.
    #[must_use]
    pub fn accessible_span(
        &self,
        ptr: SimPtr,
        n: u64,
        kind: AccessKind,
        privilege: PrivilegeLevel,
    ) -> u64 {
        let mut l = 0u64;
        while l < n {
            let p = ptr.offset(l);
            if self.check_access(p, 1, 1, kind, privilege).is_err() {
                return l;
            }
            let r = self.region_le(p.addr()).expect("checked");
            let mut span = r.len - (p.addr() - r.base);
            if privilege == PrivilegeLevel::User && p.addr() < KERNEL_BASE {
                span = span.min(KERNEL_BASE - p.addr());
            }
            l = l.saturating_add(span).min(n);
        }
        n
    }

    /// Bytes from `ptr` to the end of its containing live region
    /// (clipped at the kernel boundary for user-mode accesses), or 0
    /// when `ptr` is not within an accessible region. Used by bulk
    /// loops to size per-region chunks inside an already-validated
    /// accessible span.
    #[must_use]
    pub fn contiguous_span(&self, ptr: SimPtr, privilege: PrivilegeLevel) -> u64 {
        let Some(r) = self.region_le(ptr.addr()) else {
            return 0;
        };
        if !r.contains(ptr.addr()) {
            return 0;
        }
        let mut span = r.len - (ptr.addr() - r.base);
        if privilege == PrivilegeLevel::User && ptr.addr() < KERNEL_BASE {
            span = span.min(KERNEL_BASE - ptr.addr());
        }
        span
    }

    fn read_scalar<const N: usize>(
        &self,
        ptr: SimPtr,
        privilege: PrivilegeLevel,
    ) -> Result<[u8; N], Fault> {
        self.check_access(ptr, N as u64, N as u32, AccessKind::Read, privilege)?;
        let r = self.region_le(ptr.addr()).expect("checked");
        let off = (ptr.addr() - r.base) as usize;
        let mut out = [0u8; N];
        r.read_into(off, &mut out);
        Ok(out)
    }

    fn write_scalar<const N: usize>(
        &mut self,
        ptr: SimPtr,
        bytes: [u8; N],
        privilege: PrivilegeLevel,
    ) -> Result<(), Fault> {
        self.check_access(ptr, N as u64, N as u32, AccessKind::Write, privilege)?;
        let i = self.region_idx_le(ptr.addr()).expect("checked");
        Self::note_dirty(&mut self.dirty, self.regions[i].base);
        if self.regions[i].bytes.capacity() == 0 {
            if let Some(buf) = self.spare.pop() {
                self.regions[i].bytes = buf;
            }
        }
        let r = &mut self.regions[i];
        let off = (ptr.addr() - r.base) as usize;
        r.write_slice(off, N).copy_from_slice(&bytes);
        Ok(())
    }
}

/// Generates user-mode typed accessors plus `_priv` variants taking an
/// explicit privilege level.
macro_rules! typed_access {
    ($read:ident, $read_priv:ident, $write:ident, $write_priv:ident, $ty:ty, $n:expr) => {
        impl AddressSpace {
            #[doc = concat!("Reads a little-endian `", stringify!($ty), "` at `ptr` as user-mode code.")]
            ///
            /// # Errors
            ///
            /// Any [`Fault`] from [`AddressSpace::check_access`].
            pub fn $read(&self, ptr: SimPtr) -> Result<$ty, Fault> {
                self.$read_priv(ptr, PrivilegeLevel::User)
            }

            #[doc = concat!("Reads a little-endian `", stringify!($ty), "` at `ptr` at the given privilege.")]
            ///
            /// # Errors
            ///
            /// Any [`Fault`] from [`AddressSpace::check_access`].
            pub fn $read_priv(&self, ptr: SimPtr, privilege: PrivilegeLevel) -> Result<$ty, Fault> {
                Ok(<$ty>::from_le_bytes(self.read_scalar::<$n>(ptr, privilege)?))
            }

            #[doc = concat!("Writes a little-endian `", stringify!($ty), "` at `ptr` as user-mode code.")]
            ///
            /// # Errors
            ///
            /// Any [`Fault`] from [`AddressSpace::check_access`].
            pub fn $write(&mut self, ptr: SimPtr, value: $ty) -> Result<(), Fault> {
                self.$write_priv(ptr, value, PrivilegeLevel::User)
            }

            #[doc = concat!("Writes a little-endian `", stringify!($ty), "` at `ptr` at the given privilege.")]
            ///
            /// # Errors
            ///
            /// Any [`Fault`] from [`AddressSpace::check_access`].
            pub fn $write_priv(
                &mut self,
                ptr: SimPtr,
                value: $ty,
                privilege: PrivilegeLevel,
            ) -> Result<(), Fault> {
                self.write_scalar::<$n>(ptr, value.to_le_bytes(), privilege)
            }
        }
    };
}

typed_access!(read_u8, read_u8_priv, write_u8, write_u8_priv, u8, 1);
typed_access!(read_u16, read_u16_priv, write_u16, write_u16_priv, u16, 2);
typed_access!(read_u32, read_u32_priv, write_u32, write_u32_priv, u32, 4);
typed_access!(read_u64, read_u64_priv, write_u64, write_u64_priv, u64, 8);
typed_access!(read_i8, read_i8_priv, write_i8, write_i8_priv, i8, 1);
typed_access!(read_i16, read_i16_priv, write_i16, write_i16_priv, i16, 2);
typed_access!(read_i32, read_i32_priv, write_i32, write_i32_priv, i32, 4);
typed_access!(read_i64, read_i64_priv, write_i64, write_i64_priv, i64, 8);
typed_access!(read_f64, read_f64_priv, write_f64, write_f64_priv, f64, 8);

impl AddressSpace {
    /// Reads a 32-bit pointer-sized value (the simulated machine is ILP32).
    ///
    /// # Errors
    ///
    /// Any [`Fault`] from [`AddressSpace::check_access`].
    pub fn read_ptr(&self, ptr: SimPtr) -> Result<SimPtr, Fault> {
        Ok(SimPtr::new(u64::from(self.read_u32(ptr)?)))
    }

    /// Writes a 32-bit pointer-sized value.
    ///
    /// # Errors
    ///
    /// Any [`Fault`] from [`AddressSpace::check_access`].
    pub fn write_ptr(&mut self, ptr: SimPtr, value: SimPtr) -> Result<(), Fault> {
        self.write_u32(ptr, value.addr() as u32)
    }

    /// Convenience: user-mode read of `len` bytes.
    ///
    /// # Errors
    ///
    /// Any [`Fault`] from [`AddressSpace::check_access`].
    pub fn read_bytes(&self, ptr: SimPtr, len: u64) -> Result<Vec<u8>, Fault> {
        self.read_bytes_at(ptr, len, PrivilegeLevel::User)
    }

    /// Convenience: user-mode write of `bytes`.
    ///
    /// # Errors
    ///
    /// Any [`Fault`] from [`AddressSpace::check_access`].
    pub fn write_bytes(&mut self, ptr: SimPtr, bytes: &[u8]) -> Result<(), Fault> {
        self.write_bytes_at(ptr, bytes, PrivilegeLevel::User)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_read_write_roundtrip() {
        let mut space = AddressSpace::new();
        let p = space.map(64, Protection::READ_WRITE, "buf").unwrap();
        space.write_bytes(p, b"hello").unwrap();
        assert_eq!(space.read_bytes(p, 5).unwrap(), b"hello");
        assert_eq!(space.read_u8(p.offset(1)).unwrap(), b'e');
    }

    #[test]
    fn null_deref_faults() {
        let space = AddressSpace::new();
        let err = space.read_u32(SimPtr::NULL).unwrap_err();
        assert!(matches!(
            err,
            Fault::AccessViolation {
                cause: ViolationCause::Unmapped,
                ..
            }
        ));
    }

    #[test]
    fn near_null_faults() {
        // Page zero is never mapped: offset-from-NULL pointers fault too.
        let space = AddressSpace::new();
        assert!(space.read_u8(SimPtr::new(0x10)).is_err());
        assert!(space.read_u8(SimPtr::new(0xFFFF)).is_err());
    }

    #[test]
    fn user_access_to_kernel_faults() {
        let mut space = AddressSpace::new();
        let k = space.map_kernel(32, Protection::READ_WRITE, "kdata").unwrap();
        let err = space.read_u8(k).unwrap_err();
        assert!(matches!(
            err,
            Fault::AccessViolation {
                cause: ViolationCause::KernelAddress,
                ..
            }
        ));
        // Kernel-mode access succeeds.
        assert!(space.read_u8_priv(k, PrivilegeLevel::Kernel).is_ok());
    }

    #[test]
    fn kernel_access_to_unmapped_faults_in_kernel_mode() {
        let space = AddressSpace::new();
        let err = space
            .read_u32_priv(SimPtr::new(KERNEL_BASE + 0x100), PrivilegeLevel::Kernel)
            .unwrap_err();
        assert!(err.in_kernel_mode());
    }

    #[test]
    fn dangling_pointer_faults_as_dangling() {
        let mut space = AddressSpace::new();
        let p = space.map(16, Protection::READ_WRITE, "short-lived").unwrap();
        space.unmap(p).unwrap();
        let err = space.read_u8(p).unwrap_err();
        assert!(matches!(
            err,
            Fault::AccessViolation {
                cause: ViolationCause::Dangling,
                ..
            }
        ));
    }

    #[test]
    fn double_free_faults() {
        let mut space = AddressSpace::new();
        let p = space.map(16, Protection::READ_WRITE, "x").unwrap();
        space.unmap(p).unwrap();
        assert!(space.unmap(p).is_err());
        assert!(space.unmap(SimPtr::new(0x5555)).is_err());
    }

    #[test]
    fn write_to_readonly_faults() {
        let mut space = AddressSpace::new();
        let p = space.map(16, Protection::READ, "ro").unwrap();
        assert!(space.read_u8(p).is_ok());
        let err = space.write_u8(p, 1).unwrap_err();
        assert!(matches!(
            err,
            Fault::AccessViolation {
                cause: ViolationCause::Protection,
                access: AccessKind::Write,
                ..
            }
        ));
    }

    #[test]
    fn noaccess_region_faults_on_read() {
        let mut space = AddressSpace::new();
        let p = space.map(16, Protection::NONE, "guard").unwrap();
        assert!(space.read_u8(p).is_err());
        space.protect(p, Protection::READ).unwrap();
        assert!(space.read_u8(p).is_ok());
    }

    #[test]
    fn overrun_hits_guard_page() {
        let mut space = AddressSpace::new();
        let p = space.map(8, Protection::READ_WRITE, "small").unwrap();
        let err = space.read_bytes(p, 9).unwrap_err();
        assert!(matches!(err, Fault::GuardPage { .. }));
        // One past the end is plain unmapped.
        assert!(space.read_u8(p.offset(8)).is_err());
    }

    #[test]
    fn allocations_are_separated() {
        let mut space = AddressSpace::new();
        let a = space.map(16, Protection::READ_WRITE, "a").unwrap();
        let b = space.map(16, Protection::READ_WRITE, "b").unwrap();
        assert!(b.addr() >= a.addr() + 16 + GUARD_GAP);
    }

    #[test]
    fn strict_alignment_faults_misaligned_typed_access() {
        let mut space = AddressSpace::with_strict_alignment();
        let p = space.map(16, Protection::READ_WRITE, "buf").unwrap();
        assert!(space.read_u32(p).is_ok());
        let err = space.read_u32(p.offset(1)).unwrap_err();
        assert!(matches!(err, Fault::Misalignment { required: 4, .. }));
        // Byte access is always fine.
        assert!(space.read_u8(p.offset(1)).is_ok());
        // Lenient (x86) space does not fault.
        let mut x86 = AddressSpace::new();
        let q = x86.map(16, Protection::READ_WRITE, "buf").unwrap();
        assert!(x86.read_u32(q.offset(1)).is_ok());
    }

    #[test]
    fn non_canonical_pointer_faults() {
        let space = AddressSpace::new();
        let err = space.read_u8(SimPtr::new(u64::MAX - 10)).unwrap_err();
        assert!(matches!(
            err,
            Fault::AccessViolation {
                cause: ViolationCause::NonCanonical,
                ..
            }
        ));
    }

    #[test]
    fn map_at_collision_detected() {
        let mut space = AddressSpace::new();
        space
            .map_at(SimPtr::new(0x4000_0000), 0x100, Protection::READ_WRITE, "fixed")
            .unwrap();
        let err = space
            .map_at(SimPtr::new(0x4000_0080), 0x100, Protection::READ, "overlap")
            .unwrap_err();
        assert!(matches!(err, AllocError::Collision { .. }));
        // Adjacent is fine.
        space
            .map_at(SimPtr::new(0x4000_0100), 0x100, Protection::READ, "adjacent")
            .unwrap();
    }

    #[test]
    fn zero_length_map_rejected() {
        let mut space = AddressSpace::new();
        assert_eq!(
            space.map(0, Protection::READ, "nil").unwrap_err(),
            AllocError::BadRequest
        );
    }

    #[test]
    fn typed_values_roundtrip() {
        let mut space = AddressSpace::new();
        let p = space.map(64, Protection::READ_WRITE, "scalars").unwrap();
        space.write_u16(p, 0xBEEF).unwrap();
        assert_eq!(space.read_u16(p).unwrap(), 0xBEEF);
        space.write_i32(p.offset(4), -7).unwrap();
        assert_eq!(space.read_i32(p.offset(4)).unwrap(), -7);
        space.write_u64(p.offset(8), u64::MAX).unwrap();
        assert_eq!(space.read_u64(p.offset(8)).unwrap(), u64::MAX);
        space.write_f64(p.offset(16), -0.5).unwrap();
        assert_eq!(space.read_f64(p.offset(16)).unwrap(), -0.5);
        space.write_ptr(p.offset(24), SimPtr::new(0x1234)).unwrap();
        assert_eq!(space.read_ptr(p.offset(24)).unwrap(), SimPtr::new(0x1234));
    }

    #[test]
    fn region_containing_reports_metadata() {
        let mut space = AddressSpace::new();
        let p = space.map(32, Protection::READ, "tagged").unwrap();
        let (base, len, prot, tag) = space.region_containing(p.offset(5)).unwrap();
        assert_eq!(base, p);
        assert_eq!(len, 32);
        assert_eq!(prot, Protection::READ);
        assert_eq!(tag, "tagged");
        assert!(space.region_containing(SimPtr::new(0x30)).is_none());
    }

    #[test]
    fn live_accounting() {
        let mut space = AddressSpace::new();
        assert_eq!(space.live_regions(), 0);
        let a = space.map(10, Protection::READ_WRITE, "a").unwrap();
        let _b = space.map(20, Protection::READ_WRITE, "b").unwrap();
        assert_eq!(space.live_regions(), 2);
        assert_eq!(space.live_bytes(), 30);
        space.unmap(a).unwrap();
        assert_eq!(space.live_regions(), 1);
        assert_eq!(space.live_bytes(), 20);
    }

    #[test]
    fn protection_display_and_permits() {
        assert_eq!(Protection::NONE.to_string(), "---");
        assert_eq!(Protection::READ.to_string(), "r--");
        assert_eq!(Protection::READ_WRITE.to_string(), "rw-");
        assert_eq!(Protection::READ_WRITE_EXECUTE.to_string(), "rwx");
        assert!(Protection::READ_EXECUTE.permits(AccessKind::Execute));
        assert!(!Protection::READ.permits(AccessKind::Write));
    }

    #[test]
    fn reset_from_restores_touched_regions_only() {
        let mut baseline = AddressSpace::new();
        let keep = baseline.map(16, Protection::READ_WRITE, "keep").unwrap();
        baseline.write_bytes(keep, b"original").unwrap();
        let gone = baseline.map(16, Protection::READ, "gone").unwrap();
        baseline.mark_clean();

        let mut live = baseline.clone();
        // Touch an existing region, free another, map a new one.
        live.write_bytes(keep, b"scribble").unwrap();
        live.protect(gone, Protection::READ_WRITE).unwrap();
        live.unmap(gone).unwrap();
        let fresh = live.map(32, Protection::READ_WRITE, "fresh").unwrap();
        live.write_u32(fresh, 7).unwrap();
        assert!(live.dirty_regions() > 0);
        assert_ne!(live, baseline);

        live.reset_from(&baseline);
        assert_eq!(live, baseline);
        assert_eq!(live.dirty_regions(), 0);
        assert_eq!(live.read_bytes(keep, 8).unwrap(), b"original");
        assert!(live.read_u8(gone).is_ok());
        assert!(live.read_u8(fresh).is_err(), "post-baseline region removed");
        // The bump cursor rewound: the next map reuses the same base.
        assert_eq!(live.map(32, Protection::READ_WRITE, "fresh").unwrap(), fresh);
    }

    #[test]
    fn reset_from_is_idempotent_and_cheap_when_clean() {
        let mut baseline = AddressSpace::new();
        let p = baseline.map(8, Protection::READ_WRITE, "p").unwrap();
        baseline.mark_clean();
        let mut live = baseline.clone();
        live.reset_from(&baseline);
        live.reset_from(&baseline);
        assert_eq!(live, baseline);
        assert!(live.read_u8(p).is_ok());
    }

    #[test]
    fn dirty_journal_dedups_repeated_writes() {
        let mut space = AddressSpace::new();
        let p = space.map(64, Protection::READ_WRITE, "buf").unwrap();
        space.mark_clean();
        for i in 0..50 {
            space.write_u8(p.offset(i), i as u8).unwrap();
        }
        assert_eq!(space.dirty_regions(), 1);
    }

    #[test]
    fn failed_mutations_do_not_dirty() {
        let mut space = AddressSpace::new();
        let p = space.map(8, Protection::READ, "ro").unwrap();
        space.mark_clean();
        assert!(space.write_u8(p, 1).is_err());
        assert!(space.write_bytes(SimPtr::new(0x33), b"x").is_err());
        assert!(space.unmap(SimPtr::new(0x44)).is_err());
        assert_eq!(space.dirty_regions(), 0);
    }

    #[test]
    fn logical_bytes_equality_ignores_zero_tails() {
        let mut eager = AddressSpace::new();
        eager.set_eager_zero(true);
        let mut lazy = AddressSpace::new();
        let a = eager.map(32, Protection::READ_WRITE, "b").unwrap();
        let b = lazy.map(32, Protection::READ_WRITE, "b").unwrap();
        assert_eq!(a, b);
        eager.write_u8(a, 9).unwrap();
        lazy.write_u8(b, 9).unwrap();
        assert_eq!(eager, lazy, "representation differs, contents agree");
    }

    #[test]
    fn fill_fills() {
        let mut space = AddressSpace::new();
        let p = space.map(8, Protection::READ_WRITE, "f").unwrap();
        space.fill(p, 0xAA, 8, PrivilegeLevel::User).unwrap();
        assert_eq!(space.read_bytes(p, 8).unwrap(), vec![0xAA; 8]);
    }
}
