//! Simulated pointers and the user/kernel address split.
//!
//! The simulated machine uses a flat 32-bit-style address space (held in a
//! `u64` so that test values such as `-1` cast to a pointer stay
//! representable). Addresses at or above [`KERNEL_BASE`] belong to the
//! simulated kernel, mirroring the classic Win32 2 GB split; user-mode code
//! touching them faults, while kernel-mode code may touch them freely — and a
//! *kernel*-mode touch of an unmapped or user-hostile address is precisely
//! the mechanism by which the Windows 9x family dies in this reproduction.

use serde::{Deserialize, Serialize};
use std::fmt;

/// First address belonging to the simulated kernel half of the address space.
///
/// Mirrors the classic Win32 2 GB user / 2 GB kernel split.
pub const KERNEL_BASE: u64 = 0x8000_0000;

/// Last valid simulated address (inclusive). Anything above this is treated
/// as non-canonical garbage such as `(void*)-1`.
pub const ADDR_MAX: u64 = 0xFFFF_FFFF;

/// A pointer value inside the simulated address space.
///
/// `SimPtr` is a plain value — copying it never implies any access. All
/// dereferencing goes through [`AddressSpace`](crate::memory::AddressSpace),
/// which performs the checks a real MMU would.
///
/// # Example
///
/// ```
/// use sim_core::addr::SimPtr;
///
/// let p = SimPtr::new(0x1000);
/// assert_eq!(p.offset(16).addr(), 0x1010);
/// assert!(SimPtr::NULL.is_null());
/// assert!(SimPtr::INVALID.is_kernel());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimPtr(u64);

impl SimPtr {
    /// The null pointer.
    pub const NULL: SimPtr = SimPtr(0);

    /// The all-ones pointer, i.e. `(void*)-1` / `INVALID_HANDLE_VALUE`-style
    /// sentinel when interpreted as an address.
    pub const INVALID: SimPtr = SimPtr(ADDR_MAX);

    /// Creates a pointer from a raw simulated address.
    #[must_use]
    pub const fn new(addr: u64) -> Self {
        SimPtr(addr)
    }

    /// Raw simulated address.
    #[must_use]
    pub const fn addr(self) -> u64 {
        self.0
    }

    /// Whether this is the null pointer.
    #[must_use]
    pub const fn is_null(self) -> bool {
        self.0 == 0
    }

    /// Whether the address lies in the simulated kernel half.
    #[must_use]
    pub const fn is_kernel(self) -> bool {
        self.0 >= KERNEL_BASE
    }

    /// Whether the address is outside the representable simulated space
    /// entirely (e.g. a 64-bit garbage value).
    #[must_use]
    pub const fn is_non_canonical(self) -> bool {
        self.0 > ADDR_MAX
    }

    /// Pointer arithmetic: `self + bytes`, wrapping like C pointer math on a
    /// flat machine would.
    #[must_use]
    pub const fn offset(self, bytes: u64) -> Self {
        SimPtr(self.0.wrapping_add(bytes))
    }

    /// Whether the address is a multiple of `align` (which must be a power
    /// of two; non-power-of-two alignments are rejected as unaligned).
    #[must_use]
    pub const fn is_aligned(self, align: u64) -> bool {
        align.is_power_of_two() && self.0.is_multiple_of(align)
    }
}

impl fmt::Display for SimPtr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{:08x}", self.0)
    }
}

impl fmt::LowerHex for SimPtr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl fmt::UpperHex for SimPtr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::UpperHex::fmt(&self.0, f)
    }
}

impl From<u64> for SimPtr {
    fn from(addr: u64) -> Self {
        SimPtr(addr)
    }
}

impl From<SimPtr> for u64 {
    fn from(ptr: SimPtr) -> Self {
        ptr.0
    }
}

/// Privilege level of a simulated memory access.
///
/// User-mode accesses to kernel addresses fault (the task dies with an
/// access violation). Kernel-mode accesses bypass the user/kernel check —
/// which is exactly why an OS that passes an unvalidated user pointer into
/// kernel code can be crashed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PrivilegeLevel {
    /// Access performed by application code.
    User,
    /// Access performed by (simulated) kernel code on behalf of a call.
    Kernel,
}

impl fmt::Display for PrivilegeLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PrivilegeLevel::User => f.write_str("user"),
            PrivilegeLevel::Kernel => f.write_str("kernel"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_is_null() {
        assert!(SimPtr::NULL.is_null());
        assert!(!SimPtr::new(4).is_null());
    }

    #[test]
    fn kernel_split() {
        assert!(!SimPtr::new(KERNEL_BASE - 1).is_kernel());
        assert!(SimPtr::new(KERNEL_BASE).is_kernel());
        assert!(SimPtr::INVALID.is_kernel());
    }

    #[test]
    fn non_canonical() {
        assert!(!SimPtr::INVALID.is_non_canonical());
        assert!(SimPtr::new(ADDR_MAX + 1).is_non_canonical());
        assert!(SimPtr::new(u64::MAX).is_non_canonical());
    }

    #[test]
    fn offset_wraps() {
        assert_eq!(SimPtr::new(u64::MAX).offset(1), SimPtr::NULL);
        assert_eq!(SimPtr::new(0x100).offset(0x10).addr(), 0x110);
    }

    #[test]
    fn alignment() {
        assert!(SimPtr::new(0x1000).is_aligned(8));
        assert!(!SimPtr::new(0x1001).is_aligned(2));
        // Non-power-of-two alignment is never satisfied.
        assert!(!SimPtr::new(0x9).is_aligned(3));
        // Everything is 1-aligned.
        assert!(SimPtr::new(0x7).is_aligned(1));
    }

    #[test]
    fn display_is_hex() {
        assert_eq!(SimPtr::new(0xdead_beef).to_string(), "0xdeadbeef");
        assert_eq!(format!("{:x}", SimPtr::new(0xff)), "ff");
        assert_eq!(format!("{:X}", SimPtr::new(0xff)), "FF");
    }

    #[test]
    fn conversions_roundtrip() {
        let p: SimPtr = 0x1234u64.into();
        let back: u64 = p.into();
        assert_eq!(back, 0x1234);
    }
}
