#!/usr/bin/env sh
# One-liner observability demo: run a telemetry-enabled win95 campaign
# and produce a Perfetto-loadable trace, metrics.json and a
# flamegraph-ready collapsed-stack profile under results/.
#
#   ./scripts/trace-demo.sh [extra telemetry-bin flags]
#
# See OBSERVABILITY.md for the full operator guide.
set -eu
cd "$(dirname "$0")/.."
exec cargo run --release -p experiments --bin telemetry -- --demo "$@"
