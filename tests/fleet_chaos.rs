//! Chaos suite for the supervised process fleet: workers are killed at
//! deterministic (env-latched) shard boundaries, with real SIGKILLs,
//! with garbled replies, with hangs, and with spawn forced to fail —
//! and in every case the merged tallies must stay **bit-identical** to
//! the serial engine, every death must leave a warning, and the
//! campaign must complete instead of aborting.
//!
//! All tests serialize on one mutex: the fault latches are process
//! environment variables, inherited by every worker the supervisor
//! spawns.

use ballista::campaign::{fingerprint, run_campaign, CampaignConfig};
use ballista::fleet::{
    live_worker_pids, run_campaign_fleet_observed, FleetConfig, FleetProgress,
};
use ballista::server::{CampaignSpec, Server, ServerConfig};
use ballista::telemetry::{Hub, TelemetryConfig};
use sim_kernel::variant::OsVariant;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Mutex;

static ENV_GUARD: Mutex<()> = Mutex::new(());

const WORKER: &str = env!("CARGO_BIN_EXE_fleet_worker");

/// RAII environment latch: sets the vars, restores the previous values
/// on drop so a panicking test cannot leak chaos into its neighbors.
struct EnvLatch {
    saved: Vec<(&'static str, Option<String>)>,
}

impl EnvLatch {
    fn set(vars: &[(&'static str, &str)]) -> EnvLatch {
        let saved = vars
            .iter()
            .map(|(k, _)| (*k, std::env::var(*k).ok()))
            .collect();
        for (k, v) in vars {
            std::env::set_var(k, v);
        }
        EnvLatch { saved }
    }
}

impl Drop for EnvLatch {
    fn drop(&mut self) {
        for (k, v) in &self.saved {
            match v {
                Some(v) => std::env::set_var(k, v),
                None => std::env::remove_var(k),
            }
        }
    }
}

fn cfg(cap: usize) -> CampaignConfig {
    CampaignConfig {
        cap,
        ..CampaignConfig::default()
    }
}

/// Tally bytes: the bit-identity unit of comparison (stats and
/// warnings are host-dependent by contract; the tallies are not).
fn tally_json(report: &ballista::campaign::CampaignReport) -> String {
    serde_json::to_string(&report.muts).expect("tallies serialize")
}

fn fleet(shards: usize, workers: usize) -> FleetConfig {
    FleetConfig {
        shards,
        workers,
        process: true,
        ..FleetConfig::default()
    }
}

/// Warnings recording a worker death all share this prefix — the
/// supervisor emits exactly one per death.
fn death_warnings(report: &ballista::campaign::CampaignReport) -> usize {
    report
        .warnings
        .iter()
        .filter(|w| w.starts_with("fleet worker"))
        .count()
}

/// Env-latched worker self-kill at a deterministic shard boundary, on
/// three variants at cap 200 — the ISSUE's chaos-determinism gate. The
/// per-variant kill schedule is seeded from the variant index, so every
/// run kills workers at the same shard boundaries; the merged tallies
/// must not move a bit, and every death must be warned.
#[test]
fn seeded_worker_deaths_keep_tallies_bit_identical() {
    let _guard = ENV_GUARD.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    let variants = [OsVariant::Win95, OsVariant::WinNt4, OsVariant::WinCe];
    let mut total_deaths = 0u64;
    for (i, os) in variants.into_iter().enumerate() {
        // xorshift over the variant index: a deterministic, seeded
        // schedule of which shard each worker lifetime dies on.
        let mut seed = 0x5EED_u64 ^ ((i as u64 + 1) * 0x9E37_79B9);
        seed ^= seed << 13;
        seed ^= seed >> 7;
        let die_at = 2 + (seed % 2); // die on the 2nd or 3rd shard received
        let latch = EnvLatch::set(&[
            ("BALLISTA_WORKER_CMD", WORKER),
            ("BALLISTA_FLEET_FAULT", &format!("die:{die_at}")),
        ]);
        let serial = run_campaign(os, &cfg(200));
        let progress = FleetProgress::default();
        let report =
            run_campaign_fleet_observed(os, &cfg(200), &fleet(12, 3), Some(&progress));
        drop(latch);

        assert_eq!(
            tally_json(&serial),
            tally_json(&report),
            "{}: tallies must be bit-identical to serial under worker deaths",
            os.short_name()
        );
        let deaths = progress.worker_deaths.load(std::sync::atomic::Ordering::Relaxed);
        assert!(deaths >= 1, "{}: the latch must kill workers", os.short_name());
        assert_eq!(
            death_warnings(&report),
            deaths as usize,
            "{}: one warning per death",
            os.short_name()
        );
        assert!(
            progress.shard_retries.load(std::sync::atomic::Ordering::Relaxed) >= 1,
            "{}: dead workers' shards must be retried",
            os.short_name()
        );
        total_deaths += deaths;
    }
    assert!(
        total_deaths >= 3,
        "the schedule must kill at least 3 workers across the variants, got {total_deaths}"
    );
}

/// A worker that answers with a garbled result frame is treated exactly
/// like a dead one: protocol fault counted, shard retried elsewhere,
/// tallies unmoved.
#[test]
fn garbled_reply_counts_a_protocol_fault_and_retries() {
    let _guard = ENV_GUARD.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    let hub = Hub::install(TelemetryConfig::default());
    let latch = EnvLatch::set(&[
        ("BALLISTA_WORKER_CMD", WORKER),
        ("BALLISTA_FLEET_FAULT", "garble:2"),
    ]);
    let os = OsVariant::Win98;
    let serial = run_campaign(os, &cfg(120));
    let progress = FleetProgress::default();
    let report = run_campaign_fleet_observed(os, &cfg(120), &fleet(8, 2), Some(&progress));
    drop(latch);
    let metrics = hub.metrics_snapshot();
    Hub::uninstall();

    assert_eq!(tally_json(&serial), tally_json(&report));
    assert!(
        metrics.host.wire_protocol_faults >= 1,
        "garbled replies must count protocol faults"
    );
    assert!(
        metrics.host.worker_deaths >= 1,
        "a garbling worker is replaced like a dead one"
    );
    assert!(
        report.warnings.iter().any(|w| w.contains("malformed")),
        "the malformed reply must be warned: {:?}",
        report.warnings
    );
}

/// A worker that goes silent past the heartbeat deadline is killed and
/// its shard re-executed — hang detection in milliseconds via the env
/// deadline override.
#[test]
fn hung_worker_hits_the_heartbeat_deadline_and_is_replaced() {
    let _guard = ENV_GUARD.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    let latch = EnvLatch::set(&[
        ("BALLISTA_WORKER_CMD", WORKER),
        ("BALLISTA_FLEET_FAULT", "hang:2"),
        ("BALLISTA_FLEET_DEADLINE_MS", "400"),
    ]);
    let os = OsVariant::Win95;
    let serial = run_campaign(os, &cfg(100));
    let progress = FleetProgress::default();
    let report = run_campaign_fleet_observed(os, &cfg(100), &fleet(6, 2), Some(&progress));
    drop(latch);

    assert_eq!(tally_json(&serial), tally_json(&report));
    assert!(
        progress.worker_deaths.load(std::sync::atomic::Ordering::Relaxed) >= 1,
        "the hang must be detected"
    );
    assert!(
        report
            .warnings
            .iter()
            .any(|w| w.contains("heartbeat deadline")),
        "the hang must be warned as a missed deadline: {:?}",
        report.warnings
    );
}

/// Zero-worker degradation (the ISSUE's acceptance gate): with spawn
/// forced to fail, the campaign completes on the in-process pool with
/// the degraded marker — never an abort or panic.
#[test]
fn unspawnable_workers_degrade_to_the_thread_pool() {
    let _guard = ENV_GUARD.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    let latch = EnvLatch::set(&[(
        "BALLISTA_WORKER_CMD",
        "/nonexistent/fleet_worker_that_cannot_spawn",
    )]);
    let os = OsVariant::Win98Se;
    let serial = run_campaign(os, &cfg(120));
    let progress = FleetProgress::default();
    let report = run_campaign_fleet_observed(os, &cfg(120), &fleet(8, 2), Some(&progress));
    drop(latch);

    assert_eq!(tally_json(&serial), tally_json(&report));
    assert!(report.fleet_degraded, "the report must carry the degraded marker");
    assert!(
        !report.degraded,
        "fleet degradation must not claim the tallies are partial"
    );
    assert!(
        report.warnings.iter().any(|w| w.contains("degraded")),
        "degradation must be warned: {:?}",
        report.warnings
    );
}

/// Real SIGKILLs, not latches: an external killer shoots live worker
/// PIDs mid-campaign and the supervisor recovers to the identical
/// tallies.
#[cfg(unix)]
#[test]
fn real_sigkill_mid_campaign_recovers_bit_identically() {
    let _guard = ENV_GUARD.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    let latch = EnvLatch::set(&[
        ("BALLISTA_WORKER_CMD", WORKER),
        ("BALLISTA_FLEET_SHARD_DELAY_MS", "60"),
    ]);
    let os = OsVariant::Win95;
    let serial = run_campaign(os, &cfg(150));
    let progress = FleetProgress::default();
    let mut kills = 0;
    let report = std::thread::scope(|s| {
        let progress = &progress;
        let handle = s.spawn(move || {
            run_campaign_fleet_observed(os, &cfg(150), &fleet(16, 2), Some(progress))
        });
        // Kill up to two workers as soon as their PIDs surface; the
        // 60ms shard delay guarantees a window where the victim is
        // mid-shard.
        for _ in 0..200 {
            if kills >= 2 || handle.is_finished() {
                break;
            }
            if let Some(&pid) = live_worker_pids().first() {
                let killed = std::process::Command::new("kill")
                    .args(["-9", &pid.to_string()])
                    .status()
                    .map(|s| s.success())
                    .unwrap_or(false);
                if killed {
                    kills += 1;
                    // Give the supervisor time to notice and respawn so
                    // the second kill hits a different process.
                    std::thread::sleep(std::time::Duration::from_millis(150));
                    continue;
                }
            }
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        handle.join().expect("supervised campaign must not panic")
    });
    drop(latch);

    assert!(kills >= 1, "the test must land at least one real SIGKILL");
    assert_eq!(
        tally_json(&serial),
        tally_json(&report),
        "real SIGKILLs must not move a tally bit"
    );
    assert!(
        progress.worker_deaths.load(std::sync::atomic::Ordering::Relaxed) >= 1,
        "the SIGKILL must be observed as a worker death"
    );
}

/// Minimal HTTP client for the in-flight progress test.
fn http(addr: std::net::SocketAddr, method: &str, path: &str, body: &str) -> (u16, Vec<u8>) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes()).expect("send head");
    stream.write_all(body.as_bytes()).expect("send body");
    let mut response = Vec::new();
    stream.read_to_end(&mut response).expect("read response");
    let split = response
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .expect("header terminator");
    let status: u16 = std::str::from_utf8(&response[..split])
        .expect("header utf8")
        .split_whitespace()
        .nth(1)
        .expect("status code")
        .parse()
        .expect("numeric status");
    (status, response[split + 4..].to_vec())
}

/// `GET /campaign/<fp>` while the campaign is in flight answers with
/// structured progress (shards done/total, cases, degraded flag) fed
/// from the fleet, then flips to the full report once done.
#[test]
fn inflight_campaign_get_streams_structured_progress() {
    let _guard = ENV_GUARD.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    // Stretch every shard so the campaign is observably in flight.
    let latch = EnvLatch::set(&[("BALLISTA_FLEET_SHARD_DELAY_MS", "60")]);
    let dir = std::env::temp_dir().join("ballista-fleet-chaos-progress");
    let _ = std::fs::remove_dir_all(&dir);
    let addr = Server::bind(&ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        cache_dir: dir,
        cache_capacity: 8,
    })
    .expect("bind server")
    .spawn()
    .addr;

    let os = OsVariant::Win2000;
    let spec = CampaignSpec {
        cap: 150,
        shards: 24,
        workers: 2,
        ..CampaignSpec::new(os)
    };
    let fp = fingerprint(os, &spec.config());
    let body = serde_json::to_string(&spec).expect("spec serializes");

    let (seen_running, post_status) = std::thread::scope(|s| {
        let post = s.spawn(|| http(addr, "POST", "/campaign", &body).0);
        let mut seen = None;
        while !post.is_finished() {
            let (status, body) = http(addr, "GET", &format!("/campaign/{fp}"), "");
            if status == 202 {
                let text = String::from_utf8(body).expect("progress is utf8");
                assert!(text.contains("\"status\":\"running\""), "{text}");
                assert!(text.contains("\"shards_done\":"), "{text}");
                assert!(text.contains("\"cases_done\":"), "{text}");
                assert!(text.contains("\"degraded\":"), "{text}");
                // The leader registers the shard count a moment after
                // election; only a populated snapshot counts as seen.
                if text.contains("\"shards_total\":24") {
                    seen = Some(text);
                }
            }
            std::thread::sleep(std::time::Duration::from_millis(15));
        }
        (seen, post.join().expect("post thread"))
    });
    drop(latch);

    assert_eq!(post_status, 200);
    let progress = seen_running.expect("the campaign must be observable in flight");
    assert!(progress.contains("\"worker_deaths\":0"), "{progress}");
    // Once complete, the same URL serves the cached report.
    let (status, report) = http(addr, "GET", &format!("/campaign/{fp}"), "");
    assert_eq!(status, 200);
    let report: ballista::campaign::CampaignReport =
        serde_json::from_slice(&report).expect("report parses");
    assert_eq!(report.os, os);
}
