//! Verifies the paper's cross-variant protocol: "the same pseudorandom
//! sampling of test cases was performed in the same order for each system
//! call or C function tested across the different Windows variants" — the
//! precondition for the Figure 2 voting.

use ballista::campaign::{resolve_pools, run_mut_campaign, CampaignConfig};
use ballista::catalog;
use ballista::sampling;
use sim_kernel::variant::OsVariant;

#[test]
fn identical_case_lists_across_desktop_windows() {
    // For every shared C-library MuT, the selected case list must be
    // byte-identical on every desktop Windows variant.
    let registries: Vec<_> = OsVariant::DESKTOP_WINDOWS
        .iter()
        .map(|&os| (os, catalog::registry_for(os), catalog::catalog_for(os)))
        .collect();
    let (_, ref_registry, ref_muts) = &registries[0];
    for m in ref_muts.iter().filter(|m| m.group.is_c_library()).take(25) {
        let dims: Vec<usize> = resolve_pools(ref_registry, m).iter().map(Vec::len).collect();
        if dims.is_empty() {
            continue;
        }
        let reference = sampling::enumerate(&dims, 300, m.name);
        for (os, registry, muts) in &registries[1..] {
            let peer = muts
                .iter()
                .find(|p| p.name == m.name)
                .unwrap_or_else(|| panic!("{} missing on {os}", m.name));
            let peer_dims: Vec<usize> =
                resolve_pools(registry, peer).iter().map(Vec::len).collect();
            assert_eq!(peer_dims, dims, "{}: pool sizes differ on {os}", m.name);
            let sample = sampling::enumerate(&peer_dims, 300, peer.name);
            assert_eq!(sample, reference, "{}: case order differs on {os}", m.name);
        }
    }
}

#[test]
fn raw_outcome_streams_align_for_voting() {
    // Run the same MuT with raw recording on two variants and confirm the
    // streams are index-aligned (same length, and the NT stream really
    // reflects validation where 98's reflects silence).
    let cfg = CampaignConfig {
        cap: 200,
        record_raw: true,
        isolation_probe: false,
        perfect_cleanup: false,
        parallelism: 1,
        fuel_budget: 0,
    };
    let find = |os: OsVariant| {
        let muts = catalog::catalog_for(os);
        let m = muts.iter().find(|m| m.name == "CloseHandle").unwrap().clone();
        run_mut_campaign(os, &m, &cfg)
    };
    let t98 = find(OsVariant::Win98);
    let tnt = find(OsVariant::WinNt4);
    assert_eq!(t98.raw_outcomes.len(), tnt.raw_outcomes.len());
    assert!(!t98.raw_outcomes.is_empty());
    // 98 accepts garbage silently; NT rejects it: ground truth must show
    // far more Silent on 98.
    assert!(
        t98.silents > tnt.silents * 2,
        "98 silents = {}, NT silents = {}",
        t98.silents,
        tnt.silents
    );
    assert!(tnt.error_reports > t98.error_reports);
}

#[test]
fn sampling_respects_cap_at_paper_scale() {
    for os in [OsVariant::Win98, OsVariant::Linux] {
        let registry = catalog::registry_for(os);
        for m in catalog::catalog_for(os) {
            let pools = resolve_pools(&registry, &m);
            if pools.is_empty() {
                continue;
            }
            let dims: Vec<usize> = pools.iter().map(Vec::len).collect();
            let set = sampling::enumerate(&dims, sampling::PAPER_CAP, m.name);
            assert!(
                set.cases.len() <= sampling::PAPER_CAP,
                "{}: {} cases",
                m.name,
                set.cases.len()
            );
            assert_eq!(
                set.exhaustive,
                sampling::combination_count(&dims) <= sampling::PAPER_CAP as u64,
                "{}",
                m.name
            );
        }
    }
}
