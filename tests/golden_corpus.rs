//! Workspace-level snapshot test against the golden CRASH corpus: the
//! serial engine on every variant at cap 200 must serialize to exactly
//! the pinned per-variant tallies under `results/golden/`. The corpus is
//! regenerable only through `conformance --bless`; an unexpected diff
//! here means a kernel, catalog, pool or sampling change silently moved
//! observed robustness behaviour. The crash-consistency corpus
//! (`crashcon_<os>.json`, blessed by `crashcon --bless`) is pinned the
//! same way.

use ballista::campaign::{run_campaign, CampaignConfig, MutTally};
use ballista::crashcon::{run_crashcon, CrashTally};
use serde::Deserialize;
use sim_kernel::variant::OsVariant;
use std::fs;
use std::path::PathBuf;

/// The corpus cap — must match `GOLDEN_CAP` in the conformance binary.
const GOLDEN_CAP: usize = 200;

#[derive(Deserialize)]
struct GoldenEntry {
    cap: usize,
    muts: Vec<MutTally>,
}

#[derive(Deserialize)]
struct CrashconGoldenEntry {
    cap: usize,
    muts: Vec<CrashTally>,
}

fn golden_path(os: OsVariant) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../results/golden")
        .join(format!("{}.json", os.short_name()))
}

fn crashcon_golden_path(os: OsVariant) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../results/golden")
        .join(format!("crashcon_{}.json", os.short_name()))
}

#[test]
fn serial_tallies_match_golden_corpus_on_every_variant() {
    let cfg = CampaignConfig {
        cap: GOLDEN_CAP,
        record_raw: true,
        isolation_probe: true,
        perfect_cleanup: false,
        parallelism: 1,
        fuel_budget: 0,
    };
    for os in OsVariant::ALL {
        let name = os.short_name();
        let path = golden_path(os);
        let text = fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!(
                "{name}: missing golden corpus {} ({e}); regenerate with \
                 `cargo run --release -p experiments --bin conformance -- --bless`",
                path.display()
            )
        });
        let golden: GoldenEntry =
            serde_json::from_str(&text).unwrap_or_else(|e| panic!("{name}: corrupt corpus: {e}"));
        assert_eq!(golden.cap, GOLDEN_CAP, "{name}: corpus blessed at a different cap");

        let report = run_campaign(os, &cfg);
        let live = serde_json::to_string(&report.muts).expect("serialize");
        let pinned = serde_json::to_string(&golden.muts).expect("serialize");
        if live != pinned {
            let diverged: Vec<&str> = report
                .muts
                .iter()
                .zip(&golden.muts)
                .filter(|(a, b)| {
                    serde_json::to_string(a).unwrap() != serde_json::to_string(b).unwrap()
                })
                .map(|(a, _)| a.name.as_str())
                .collect();
            panic!(
                "{name}: live tallies drifted from the golden corpus \
                 (diverged MuTs: {diverged:?}); if the behaviour change is \
                 intentional, re-bless with `conformance -- --bless`"
            );
        }
    }
}

#[test]
fn crashcon_tallies_match_golden_corpus_on_every_variant() {
    let cfg = CampaignConfig {
        cap: GOLDEN_CAP,
        record_raw: true,
        isolation_probe: true,
        perfect_cleanup: false,
        parallelism: 1,
        fuel_budget: 0,
    };
    for os in OsVariant::ALL {
        let name = os.short_name();
        let path = crashcon_golden_path(os);
        let text = fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!(
                "{name}: missing crashcon golden corpus {} ({e}); regenerate with \
                 `cargo run --release -p experiments --bin crashcon -- --bless`",
                path.display()
            )
        });
        let golden: CrashconGoldenEntry =
            serde_json::from_str(&text).unwrap_or_else(|e| panic!("{name}: corrupt corpus: {e}"));
        assert_eq!(golden.cap, GOLDEN_CAP, "{name}: corpus blessed at a different cap");

        let report = run_crashcon(os, &cfg);
        assert!(
            report.consistent(),
            "{name}: the unbroken filesystem must pass every bounded crash point"
        );
        let live = serde_json::to_string(&report.muts).expect("serialize");
        let pinned = serde_json::to_string(&golden.muts).expect("serialize");
        if live != pinned {
            let diverged: Vec<&str> = report
                .muts
                .iter()
                .zip(&golden.muts)
                .filter(|(a, b)| a != b)
                .map(|(a, _)| a.name.as_str())
                .collect();
            panic!(
                "{name}: live crashcon tallies drifted from the golden corpus \
                 (diverged MuTs: {diverged:?}); if the behaviour change is \
                 intentional, re-bless with `crashcon -- --bless`"
            );
        }
    }
}
