//! End-to-end integration: simulator → harness → report, on a reduced
//! campaign.

use ballista::campaign::{run_campaign, CampaignConfig};
use ballista::muts::FunctionGroup;
use report::normalize::{group_rate, table1_row, Metric};
use report::MultiOsResults;
use sim_kernel::variant::OsVariant;

fn cfg(cap: usize) -> CampaignConfig {
    CampaignConfig {
        cap,
        record_raw: false,
        isolation_probe: true,
        perfect_cleanup: false,
        parallelism: 1,
        fuel_budget: 0,
    }
}

#[test]
fn linux_campaign_end_to_end() {
    let report = run_campaign(OsVariant::Linux, &cfg(60));
    assert_eq!(report.os, OsVariant::Linux);
    assert!(report.total_cases > 2_000, "got {}", report.total_cases);
    // Linux never crashes (paper Table 1).
    assert!(report.catastrophic_muts().is_empty());
    // Every MuT executed its planned case count (no crash truncation).
    for m in &report.muts {
        assert_eq!(m.cases, m.planned, "{} truncated", m.name);
        assert_eq!(
            m.cases,
            m.aborts + m.restarts + m.silents + m.error_reports + m.passes,
            "{} tallies must partition the cases",
            m.name
        );
    }
    // The ctype result: C char group aborts heavily on glibc.
    let cchar = group_rate(&report, FunctionGroup::CChar, Metric::Abort);
    assert!(cchar.rate > 0.15, "glibc ctype abort rate: {}", cchar.rate);
}

#[test]
fn win98_campaign_finds_crashes_and_truncates() {
    let report = run_campaign(OsVariant::Win98, &cfg(60));
    let catastrophic = report.catastrophic_muts();
    assert!(
        !catastrophic.is_empty(),
        "Windows 98 must lose functions to Catastrophic failures"
    );
    let names: Vec<&str> = catastrophic.iter().map(|m| m.name.as_str()).collect();
    assert!(names.contains(&"GetThreadContext"), "{names:?}");
    // The crash interrupted the test set (the paper's Table 1 footnote).
    let gtc = catastrophic
        .iter()
        .find(|m| m.name == "GetThreadContext")
        .expect("just checked");
    assert!(gtc.cases <= gtc.planned);
    assert_eq!(gtc.crash_reproducible_in_isolation, Some(true));
}

#[test]
fn table1_statistics_consistent() {
    let report = run_campaign(OsVariant::WinNt4, &cfg(40));
    let row = table1_row(&report);
    assert_eq!(row.total_tested, row.sys_tested + row.c_tested);
    assert_eq!(row.sys_catastrophic, 0);
    assert_eq!(row.c_catastrophic, 0);
    assert!(row.sys_abort > 0.0 && row.sys_abort < 1.0);
    assert!(row.overall_abort > 0.0);
}

#[test]
fn suspected_hindering_oracle() {
    // setsid() always reports EPERM, even on its (only, benign) input —
    // the oracle flags it as a suspected Hindering failure. A normal
    // robust call like getpid never trips the counter.
    let report = run_campaign(OsVariant::Linux, &cfg(20));
    let setsid = report.muts.iter().find(|m| m.name == "setsid").unwrap();
    assert_eq!(setsid.suspected_hindering, 1, "{setsid:?}");
    let getpid = report.muts.iter().find(|m| m.name == "getpid").unwrap();
    assert_eq!(getpid.suspected_hindering, 0);
    // The counter is a subset of error reports.
    for m in &report.muts {
        assert!(m.suspected_hindering <= m.error_reports, "{}", m.name);
    }
}

#[test]
fn multi_os_results_serialize_roundtrip() {
    let results = MultiOsResults {
        reports: vec![run_campaign(OsVariant::WinCe, &cfg(30))],
        warnings: Vec::new(),
    };
    let json = serde_json::to_string(&results).expect("serialize");
    let back: MultiOsResults = serde_json::from_str(&json).expect("deserialize");
    assert_eq!(back.reports.len(), 1);
    assert_eq!(back.reports[0].os, OsVariant::WinCe);
    assert_eq!(back.reports[0].total_cases, results.reports[0].total_cases);
}

#[test]
fn report_renderers_run_on_real_data() {
    let results = MultiOsResults {
        reports: vec![
            run_campaign(OsVariant::Win95, &cfg(120)),
            run_campaign(OsVariant::WinNt4, &cfg(120)),
        ],
        warnings: Vec::new(),
    };
    let t1 = report::tables::table1(&results);
    let t2 = report::tables::table2(&results);
    let t3 = report::tables::table3(&results);
    let f1 = report::figures::figure1(&results);
    assert!(t1.contains("Windows 95"));
    assert!(t2.contains("C char"));
    assert!(t3.contains("GetThreadContext"));
    assert!(f1.contains("I/O Primitives"));
}
