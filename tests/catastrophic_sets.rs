//! Verifies the paper's **Table 3** exactly: which functions crash which
//! OS, and which crashes carry the `*` (harness-only) mark.
//!
//! This is the reproduction's strongest claim, so the campaign here runs
//! with a realistic cap.

use ballista::campaign::{run_campaign, CampaignConfig};
use sim_kernel::variant::OsVariant;
use std::collections::BTreeMap;

fn crashes_for(os: OsVariant) -> BTreeMap<String, bool> {
    let cfg = CampaignConfig {
        cap: 400,
        record_raw: false,
        isolation_probe: true,
        perfect_cleanup: false,
        parallelism: 1,
        fuel_budget: 0,
    };
    run_campaign(os, &cfg)
        .catastrophic_muts()
        .iter()
        .map(|m| {
            (
                m.name.clone(),
                m.crash_reproducible_in_isolation.unwrap_or(true),
            )
        })
        .collect()
}

#[test]
fn windows95_table3_row() {
    let crashes = crashes_for(OsVariant::Win95);
    // Paper: DuplicateHandle*, GetFileInformationByHandle,
    // GetThreadContext, MsgWaitForMultipleObjects*, ReadProcessMemory*,
    // FileTimeToSystemTime, HeapCreate — and no C functions.
    let expected = [
        ("DuplicateHandle", false),
        ("GetFileInformationByHandle", true),
        ("GetThreadContext", true),
        ("MsgWaitForMultipleObjects", false),
        ("ReadProcessMemory", false),
        ("FileTimeToSystemTime", true),
        ("HeapCreate", true),
    ];
    for (name, in_isolation) in expected {
        assert_eq!(
            crashes.get(name),
            Some(&in_isolation),
            "{name} on Windows 95 (found: {crashes:?})"
        );
    }
    assert_eq!(crashes.len(), 7, "exactly the paper's seven: {crashes:?}");
}

#[test]
fn windows98_table3_row() {
    let crashes = crashes_for(OsVariant::Win98);
    for name in [
        "DuplicateHandle",
        "GetFileInformationByHandle",
        "GetThreadContext",
        "MsgWaitForMultipleObjects",
        "MsgWaitForMultipleObjectsEx",
        "fwrite",
        "strncpy",
    ] {
        assert!(crashes.contains_key(name), "{name} missing: {crashes:?}");
    }
    // 95-only entries must NOT crash 98.
    for name in ["FileTimeToSystemTime", "HeapCreate", "ReadProcessMemory", "CreateThread"] {
        assert!(!crashes.contains_key(name), "{name} wrongly crashes 98");
    }
    // fwrite and strncpy are the paper's `*` entries.
    assert_eq!(crashes.get("fwrite"), Some(&false));
    assert_eq!(crashes.get("strncpy"), Some(&false));
    assert_eq!(crashes.len(), 7);
}

#[test]
fn windows98se_table3_row() {
    let crashes = crashes_for(OsVariant::Win98Se);
    // SE adds CreateThread, drops fwrite.
    assert!(crashes.contains_key("CreateThread"));
    assert!(!crashes.contains_key("fwrite"), "98 SE fixed fwrite");
    assert!(crashes.contains_key("strncpy"));
    assert_eq!(crashes.len(), 7, "{crashes:?}");
}

#[test]
fn nt_2000_linux_never_crash() {
    for os in [OsVariant::WinNt4, OsVariant::Win2000, OsVariant::Linux] {
        let crashes = crashes_for(os);
        assert!(crashes.is_empty(), "{os} crashed: {crashes:?}");
    }
}

#[test]
fn windows_ce_table3_row() {
    let crashes = crashes_for(OsVariant::WinCe);
    // The ten system calls of the paper's CE list.
    for name in [
        "CreateThread",
        "GetThreadContext",
        "InterlockedDecrement",
        "InterlockedExchange",
        "InterlockedIncrement",
        "MsgWaitForMultipleObjects",
        "MsgWaitForMultipleObjectsEx",
        "ReadProcessMemory",
        "SetThreadContext",
        "VirtualAlloc",
    ] {
        assert!(crashes.contains_key(name), "{name} missing on CE: {crashes:?}");
    }
    // Seventeen C functions via the single bad-FILE* root cause, plus the
    // UNICODE strncpy twin — 18 C functions in all (paper §4/§5).
    let c_functions = [
        "clearerr", "fclose", "fflush", "freopen", "fseek", "ftell", // file I/O (6)
        "fread", "fgetc", "fgets", "fprintf", "fputc", "fputs", "fscanf", "getc", "putc",
        "ungetc", // stream (10) — printf/scanf take no FILE* argument
        "strncpy", // the UNICODE _tcsncpy
    ];
    for name in c_functions {
        assert!(crashes.contains_key(name), "{name} missing on CE: {crashes:?}");
    }
    let sys_count = crashes
        .keys()
        .filter(|n| n.chars().next().is_some_and(char::is_uppercase))
        .count();
    assert_eq!(sys_count, 10, "CE system-call crashes: {crashes:?}");
    assert_eq!(crashes.len() - sys_count, 17, "CE C-function crashes");
}
