//! Verifies the paper's *shape* findings — the orderings and contrasts the
//! evaluation section reports — on a reduced-cap campaign. These are the
//! claims EXPERIMENTS.md records as "reproduced":
//!
//! 1. Linux C char Abort ≳ 30 %; every Windows variant 0 % (§4).
//! 2. Linux Abort is higher than Windows in exactly the four C-library
//!    groups the paper names: C char, C file I/O, C stream I/O, C memory
//!    management — and lower (or comparable) elsewhere (§5).
//! 3. Linux is more graceful on system calls; the NT family has the
//!    *highest* system-call Abort rates (Table 1).
//! 4. The 9x family has far more Silent failures than NT/2000 (Figure 2).
//! 5. Restart failures are rare for every OS (§4).
//! 6. Family resemblance: 95 ≈ 98 ≈ 98 SE and NT ≈ 2000 group rates.

use ballista::campaign::{run_campaign, CampaignConfig};
use ballista::muts::FunctionGroup as G;
use report::normalize::{group_rate, overall_by_mut, Metric};
use report::MultiOsResults;
use sim_kernel::variant::OsVariant;
use std::sync::OnceLock;

fn results() -> &'static MultiOsResults {
    static RESULTS: OnceLock<MultiOsResults> = OnceLock::new();
    RESULTS.get_or_init(|| {
        let reports = OsVariant::ALL
            .into_iter()
            .map(|os| {
                let cfg = CampaignConfig {
                    cap: 400,
                    record_raw: OsVariant::DESKTOP_WINDOWS.contains(&os),
                    isolation_probe: false,
                    perfect_cleanup: false,
                    parallelism: 1,
                    fuel_budget: 0,
                };
                run_campaign(os, &cfg)
            })
            .collect();
        MultiOsResults { reports, warnings: Vec::new() }
    })
}

fn abort(os: OsVariant, group: G) -> f64 {
    group_rate(results().for_os(os).expect("all ran"), group, Metric::Abort).rate
}

#[test]
fn c_char_contrast() {
    assert!(
        abort(OsVariant::Linux, G::CChar) > 0.30,
        "Linux C char: {}",
        abort(OsVariant::Linux, G::CChar)
    );
    for os in OsVariant::ALL.into_iter().filter(|o| o.is_windows()) {
        assert_eq!(abort(os, G::CChar), 0.0, "{os} C char must be 0%");
    }
}

#[test]
fn linux_higher_in_exactly_the_four_paper_groups() {
    let windows_ref = OsVariant::WinNt4;
    for group in [G::CChar, G::CFileIo, G::CStreamIo, G::CMemory] {
        assert!(
            abort(OsVariant::Linux, group) > abort(windows_ref, group),
            "{group}: Linux {} vs NT {}",
            abort(OsVariant::Linux, group),
            abort(windows_ref, group)
        );
    }
    for group in [G::CMath, G::CTime, G::CString] {
        assert!(
            abort(OsVariant::Linux, group) <= abort(windows_ref, group) + 1e-9,
            "{group}: Linux {} vs NT {} (paper: Linux lower)",
            abort(OsVariant::Linux, group),
            abort(windows_ref, group)
        );
    }
}

#[test]
fn linux_graceful_on_system_calls_nt_aborts_most() {
    let sys_abort = |os: OsVariant| {
        overall_by_mut(results().for_os(os).expect("all ran"), Metric::Abort, |m| {
            !m.group.is_c_library()
        })
    };
    let linux = sys_abort(OsVariant::Linux);
    let w98 = sys_abort(OsVariant::Win98);
    let nt = sys_abort(OsVariant::WinNt4);
    let ce = sys_abort(OsVariant::WinCe);
    assert!(linux < w98, "Linux {linux} < 98 {w98}");
    assert!(w98 < nt, "98 {w98} < NT {nt} (NT probes eagerly)");
    assert!(ce < nt, "CE {ce} < NT {nt} (paper: CE aborts below NT)");
    assert!(linux < 0.10, "Linux system calls are graceful: {linux}");
}

#[test]
fn ninex_silent_failures_dominate_nt() {
    // Ground-truth Silent on system calls: 9x ≫ NT (Figure 2's story).
    let sys_silent = |os: OsVariant| {
        overall_by_mut(
            results().for_os(os).expect("all ran"),
            Metric::SilentTruth,
            |m| !m.group.is_c_library(),
        )
    };
    let w95 = sys_silent(OsVariant::Win95);
    let w98 = sys_silent(OsVariant::Win98);
    let nt = sys_silent(OsVariant::WinNt4);
    let w2k = sys_silent(OsVariant::Win2000);
    assert!(w95 > 2.0 * nt, "95 {w95} vs NT {nt}");
    assert!(w98 > 2.0 * w2k, "98 {w98} vs 2000 {w2k}");
}

#[test]
fn voted_silent_estimate_matches_direction() {
    // The paper's voting methodology, applied to our raw streams, must
    // reach the same conclusion: 9x voted-Silent ≫ NT voted-Silent.
    let desktop: Vec<_> = results()
        .reports
        .iter()
        .filter(|r| OsVariant::DESKTOP_WINDOWS.contains(&r.os))
        .collect();
    let avg_voted = |os: OsVariant| {
        let votes = report::voting::vote_silent(&desktop, os);
        if votes.is_empty() {
            return 0.0;
        }
        votes.iter().map(report::voting::VotedSilent::voted_rate).sum::<f64>()
            / votes.len() as f64
    };
    let w98 = avg_voted(OsVariant::Win98);
    let nt = avg_voted(OsVariant::WinNt4);
    assert!(w98 > 0.05, "98 voted silent: {w98}");
    assert!(w98 > 3.0 * nt, "98 {w98} vs NT {nt}");
}

#[test]
fn restarts_rare_everywhere() {
    for report in &results().reports {
        let restart = overall_by_mut(report, Metric::Restart, |_| true);
        assert!(
            restart < 0.02,
            "{}: restart rate {restart} should be rare",
            report.os
        );
    }
}

#[test]
fn family_resemblance() {
    // "the similar code bases for the Windows 95/98 pairing and the
    // Windows NT/2000 pairing show up in relatively similar Abort failure
    // rates."
    for group in [G::IoPrimitives, G::CString, G::CMath, G::FileDirAccess] {
        let d9x = (abort(OsVariant::Win98, group) - abort(OsVariant::Win98Se, group)).abs();
        let dnt = (abort(OsVariant::WinNt4, group) - abort(OsVariant::Win2000, group)).abs();
        assert!(d9x < 0.05, "{group}: 98 vs 98SE differ by {d9x}");
        assert!(dnt < 0.05, "{group}: NT vs 2000 differ by {dnt}");
    }
}

#[test]
fn ce_is_unlike_either_family() {
    // CE misses the C time group entirely and has its own crash set.
    let ce = results().for_os(OsVariant::WinCe).expect("ran");
    assert!(!group_rate(ce, G::CTime, Metric::Abort).present);
    assert!(ce.catastrophic_muts().len() > 20, "CE's 27 catastrophic MuTs");
}
