//! Determinism suite for the crash-consistency (crashcon) engine: on a
//! representative variant set at the golden cap, the serial engine, the
//! parallel engine at 2 and 8 workers, a fresh journaled run, and a
//! journaled run split at the mid-case boundary and resumed must all
//! produce **bit-identical** per-MuT tallies; and a per-case verdict is
//! a commutative fold over independent crash-point judgements, so any
//! evaluation order over the enumerated points — including orders over
//! proptest-generated workloads — yields the identical verdict.

use ballista::campaign::CampaignConfig;
use ballista::crashcon::{run_crashcon, run_crashcon_journaled, Verifier};
use ballista::journal::{HEADER_LEN, RECORD_LEN};
use proptest::prelude::*;
use sim_kernel::fs::{FileSystem, OpenOptions};
use sim_kernel::variant::OsVariant;
use sim_kernel::MachineFlavor;
use std::fs;
use std::path::PathBuf;

/// Must match `GOLDEN_CAP` in the crashcon binary.
const CAP: usize = 200;

/// Win95 (9x line), NT4 (NT line), CE (embedded line) — one variant per
/// kernel family keeps the suite's wall clock in check while still
/// crossing every personality's flush/close barrier wiring.
const VARIANTS: [OsVariant; 3] = [OsVariant::Win95, OsVariant::WinNt4, OsVariant::WinCe];

fn cfg(parallelism: usize) -> CampaignConfig {
    CampaignConfig {
        cap: CAP,
        record_raw: true,
        isolation_probe: true,
        perfect_cleanup: false,
        parallelism,
        fuel_budget: 0,
    }
}

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("ballista-crashcon-determinism");
    fs::create_dir_all(&dir).expect("temp dir");
    dir.join(name)
}

#[test]
fn crashcon_engines_bit_identical_across_serial_parallel_and_resume() {
    for os in VARIANTS {
        let name = os.short_name();
        let serial = run_crashcon(os, &cfg(1));
        assert!(
            serial.consistent(),
            "{name}: the unbroken filesystem must pass every bounded crash point"
        );

        for workers in [2usize, 8] {
            let parallel = run_crashcon(os, &cfg(workers));
            assert_eq!(
                serial.muts, parallel.muts,
                "{name}: parallel-{workers} tallies diverged from serial"
            );
        }

        let journal = scratch(&format!("{name}.jrn"));
        let _ = fs::remove_file(&journal);
        let journaled =
            run_crashcon_journaled(os, &cfg(1), &journal, false).expect("journaled run");
        assert_eq!(
            serial.muts, journaled.muts,
            "{name}: journaled tallies diverged from serial"
        );

        // Truncate at the mid-case record boundary — the byte-exact state
        // a SIGKILL between two appends leaves — and resume.
        let bytes = fs::read(&journal).expect("journal readable");
        let boundary = HEADER_LEN + (journaled.total_cases / 2) * RECORD_LEN;
        fs::write(&journal, &bytes[..boundary]).expect("truncate journal");
        let resumed = run_crashcon_journaled(os, &cfg(1), &journal, true).expect("resume");
        assert_eq!(
            serial.muts, resumed.muts,
            "{name}: split-resume tallies diverged from serial"
        );
        assert!(
            resumed.warnings.iter().any(|w| w.contains("resumed from journal")),
            "{name}: split-resume did not actually replay the journal"
        );
        let _ = fs::remove_file(&journal);
    }
}

/// The workload alphabet the proptest strategy draws from: a small fixed
/// path set plus an op-code, applied to a recording filesystem. Failed
/// calls record nothing, so every generated sequence yields a valid log.
const PATHS: [&str; 6] = ["/a", "/b", "/d", "/d/x", "/d/y", "/e"];

fn apply_step(fs: &mut FileSystem, code: u8, p: usize, q: usize, byte: u8) {
    let (p, q) = (PATHS[p % PATHS.len()], PATHS[q % PATHS.len()]);
    match code % 7 {
        0 => {
            let _ = fs.mkdir(p);
        }
        1 => {
            let _ = fs.create_file(p, vec![byte]);
        }
        2 => {
            // Open for write, write, close: records Write plus the
            // close-of-write-descriptor Barrier.
            if let Ok(ofd) = fs.open(p, OpenOptions::write_only()) {
                let _ = fs.write(ofd, &[byte, byte]);
                let _ = fs.close(ofd);
            }
        }
        3 => {
            let _ = fs.rename(p, q);
        }
        4 => {
            let _ = fs.unlink(p);
        }
        5 => {
            let _ = fs.rmdir(p);
        }
        _ => {
            // Explicit flush barrier through an open descriptor.
            if let Ok(ofd) = fs.open(p, OpenOptions::write_only()) {
                let _ = fs.write(ofd, &[byte]);
                let _ = fs.flush(ofd);
                let _ = fs.close(ofd);
            }
        }
    }
}

/// Fisher–Yates driven by proptest-supplied randoms: a deterministic
/// permutation of `0..n` for any seed vector.
fn permutation(n: usize, seed: &[usize]) -> Vec<usize> {
    let mut perm: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = seed.get(n - 1 - i).copied().unwrap_or(i * 7 + 3) % (i + 1);
        perm.swap(i, j);
    }
    perm
}

proptest! {
    /// For arbitrary recorded workloads, the verdict is independent of
    /// the order crash points are judged in: enumeration order and a
    /// seeded shuffle must agree bit for bit, on both a POSIX and a
    /// Windows (case-folding) filesystem personality.
    #[test]
    fn verdicts_are_independent_of_crash_point_order(
        steps in proptest::collection::vec((any::<u8>(), any::<usize>(), any::<usize>(), any::<u8>()), 1..24),
        seed in proptest::collection::vec(any::<usize>(), 0..64),
    ) {
        for flavor in [MachineFlavor::Posix, MachineFlavor::Windows] {
            let mut verifier = Verifier::new(flavor);
            let mut fs = match flavor {
                MachineFlavor::Posix => FileSystem::new_posix(),
                _ => FileSystem::new_windows(),
            };
            fs.set_crash_recording(true);
            for &(code, p, q, byte) in &steps {
                apply_step(&mut fs, code, p, q, byte);
            }
            let (ops, truncated) = fs.take_oplog();

            let reference = verifier.evaluate(&ops, truncated);
            let n = reference.points as usize;
            let shuffled = verifier.evaluate_ordered(&ops, truncated, Some(&permutation(n, &seed)));
            prop_assert_eq!(reference, shuffled);
            prop_assert_eq!(reference.pack(), shuffled.pack());
        }
    }
}
