//! Adaptive-mode determinism acceptance (ISSUE: coverage-guided
//! adaptive sampling).
//!
//! The adaptive mode's whole correctness story is "explore once, pin,
//! then replay like any fixed plan". This suite holds it to that:
//!
//! * same seed + config ⇒ the identical pinned plan (digest-equal
//!   across independent explores), and **bit-identical tallies** across
//!   the serial, parallel, journaled, and supervised-fleet engines;
//! * a proptest: for arbitrary (seed, cap, rounds) knobs, the pinned
//!   plan replays bit-identically through a journal that is truncated
//!   at an arbitrary record boundary — the SIGKILL-shaped state — and
//!   resumed.

use ballista::adaptive::{
    explore, pinned_plan_shared, run_adaptive, run_adaptive_fleet, run_adaptive_journaled,
    AdaptiveConfig,
};
use ballista::campaign::{CampaignConfig, CampaignReport};
use ballista::fleet::FleetConfig;
use ballista::journal::{HEADER_LEN, RECORD_LEN};
use proptest::prelude::*;
use sim_kernel::variant::OsVariant;
use std::fs;
use std::path::PathBuf;

fn cfg(cap: usize, parallelism: usize) -> CampaignConfig {
    CampaignConfig {
        cap,
        record_raw: false,
        isolation_probe: false,
        perfect_cleanup: false,
        parallelism,
        fuel_budget: 0,
    }
}

/// The bit-identity contract compares tallies, not timing metadata.
fn tallies(report: &CampaignReport) -> String {
    serde_json::to_string(&report.muts).expect("tallies serialize")
}

fn scratch_journal(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("ballista-adaptive-tests");
    fs::create_dir_all(&dir).expect("scratch dir");
    dir.join(format!("{}-{tag}.jrn", std::process::id()))
}

#[test]
fn pinned_plan_is_reproducible_and_engines_agree_bit_for_bit() {
    let os = OsVariant::Win95;
    let serial_cfg = cfg(120, 1);
    let acfg = AdaptiveConfig::default();

    // Two independent explores pin the identical plan.
    let pin = pinned_plan_shared(os, &serial_cfg, &acfg);
    let fresh = explore(os, &serial_cfg, &acfg);
    assert_eq!(pin.digest(), fresh.digest(), "explore is not reproducible");

    let serial = run_adaptive(os, &serial_cfg, &acfg);
    let reference = tallies(&serial);
    assert!(serial.total_cases > 0);

    // Parallel engine (pin key ignores parallelism, as it must).
    for workers in [2usize, 8] {
        let parallel = run_adaptive(os, &cfg(120, workers), &acfg);
        assert_eq!(
            reference,
            tallies(&parallel),
            "parallel-{workers} tallies diverged from serial"
        );
    }

    // Journaled engine: fresh run, then a mid-campaign truncation + resume.
    let journal = scratch_journal("engine-matrix");
    let _ = fs::remove_file(&journal);
    let journaled =
        run_adaptive_journaled(os, &serial_cfg, &acfg, &journal, false).expect("journaled run");
    assert_eq!(reference, tallies(&journaled), "journaled diverged");
    let boundary = HEADER_LEN + (journaled.total_cases / 2) * RECORD_LEN;
    let bytes = fs::read(&journal).expect("journal readable");
    fs::write(&journal, &bytes[..boundary.min(bytes.len())]).expect("journal truncatable");
    let resumed =
        run_adaptive_journaled(os, &serial_cfg, &acfg, &journal, true).expect("resumed run");
    assert_eq!(reference, tallies(&resumed), "split-resume diverged");
    assert!(
        resumed.warnings.iter().any(|w| w.contains("resumed from journal")),
        "split-resume did not actually replay the journal: {:?}",
        resumed.warnings
    );
    let _ = fs::remove_file(&journal);

    // Supervised fleet (in-process pool), two shard/worker splits.
    for (shards, workers) in [(4usize, 2usize), (9, 3)] {
        let fleet = run_adaptive_fleet(
            os,
            &serial_cfg,
            &acfg,
            &FleetConfig {
                shards,
                workers,
                ..FleetConfig::default()
            },
        );
        assert_eq!(
            reference,
            tallies(&fleet),
            "fleet-{shards}x{workers} tallies diverged from serial"
        );
    }
}

proptest! {
    /// Any pinned plan replays bit-identically after a journal resume:
    /// for arbitrary adaptive knobs, truncating the journal at an
    /// arbitrary record boundary (the byte-exact state of a run
    /// SIGKILLed between appends) and resuming reproduces the
    /// uninterrupted tallies exactly.
    #[test]
    fn any_pinned_plan_survives_journal_resume(
        seed in 0u64..1_000,
        cap in 12usize..32,
        rounds in 1usize..4,
        cut_permille in 0usize..1_000,
    ) {
        let os = OsVariant::Win98;
        let c = cfg(cap, 1);
        let acfg = AdaptiveConfig { rounds, seed, rare_bonus: 0 };
        let reference = run_adaptive(os, &c, &acfg);

        let journal = scratch_journal(&format!("prop-{seed}-{cap}-{rounds}-{cut_permille}"));
        let _ = fs::remove_file(&journal);
        let journaled = run_adaptive_journaled(os, &c, &acfg, &journal, false)
            .expect("journaled run");
        prop_assert_eq!(tallies(&reference), tallies(&journaled));

        let keep = journaled.total_cases * cut_permille / 1_000;
        let boundary = HEADER_LEN + keep * RECORD_LEN;
        let bytes = fs::read(&journal).expect("journal readable");
        fs::write(&journal, &bytes[..boundary.min(bytes.len())]).expect("journal truncatable");
        let resumed = run_adaptive_journaled(os, &c, &acfg, &journal, true)
            .expect("resumed run");
        prop_assert_eq!(tallies(&reference), tallies(&resumed));
        let _ = fs::remove_file(&journal);
    }
}
