//! Offline stand-in for `serde`, API-compatible with this workspace's
//! usage: `#[derive(Serialize, Deserialize)]` plus the two field
//! attributes `#[serde(default)]` and `#[serde(skip_serializing_if =
//! "path")]`.
//!
//! Instead of real serde's visitor-based data model, values round-trip
//! through an owned [`Content`] tree which `serde_json` renders and
//! parses. Field order is declaration order, so serialization is
//! byte-deterministic — a property the campaign determinism tests rely
//! on.

#![forbid(unsafe_code)]

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// An owned, self-describing value tree (the serde data model collapsed
/// to what JSON can express).
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    /// JSON `null` (also `Option::None` and non-finite floats).
    Null,
    /// A boolean.
    Bool(bool),
    /// A non-negative integer.
    U64(u64),
    /// A negative integer.
    I64(i64),
    /// A finite float.
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Seq(Vec<Content>),
    /// An object, in insertion order.
    Map(Vec<(String, Content)>),
}

impl Content {
    /// The entries of a map, if this is one.
    #[must_use]
    pub fn as_map(&self) -> Option<&[(String, Content)]> {
        match self {
            Content::Map(m) => Some(m),
            _ => None,
        }
    }

    /// The elements of a sequence, if this is one.
    #[must_use]
    pub fn as_seq(&self) -> Option<&[Content]> {
        match self {
            Content::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// The string, if this is one.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Content::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Looks up a key in map entries (helper for derived impls).
#[must_use]
pub fn content_get<'a>(entries: &'a [(String, Content)], key: &str) -> Option<&'a Content> {
    entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// Serialization/deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(pub String);

impl Error {
    /// An error carrying `msg`.
    #[must_use]
    pub fn custom(msg: impl fmt::Display) -> Self {
        Error(msg.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Types that can render themselves into a [`Content`] tree.
pub trait Serialize {
    /// The content-tree form of `self`.
    fn to_content(&self) -> Content;
}

/// Types that can rebuild themselves from a [`Content`] tree.
pub trait Deserialize: Sized {
    /// Rebuilds a value, or reports what was malformed.
    ///
    /// # Errors
    ///
    /// Returns [`Error`] when the content shape does not match `Self`.
    fn from_content(c: &Content) -> Result<Self, Error>;
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::U64(u64::from(*self))
            }
        }
        impl Deserialize for $t {
            fn from_content(c: &Content) -> Result<Self, Error> {
                match c {
                    Content::U64(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::custom(format!("{n} out of range"))),
                    _ => Err(Error::custom(concat!("expected ", stringify!($t)))),
                }
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                let v = i64::from(*self);
                if v < 0 { Content::I64(v) } else { Content::U64(v as u64) }
            }
        }
        impl Deserialize for $t {
            fn from_content(c: &Content) -> Result<Self, Error> {
                let wide = match c {
                    Content::I64(n) => i128::from(*n),
                    Content::U64(n) => i128::from(*n),
                    _ => return Err(Error::custom(concat!("expected ", stringify!($t)))),
                };
                <$t>::try_from(wide).map_err(|_| Error::custom(format!("{wide} out of range")))
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64);

impl Serialize for usize {
    fn to_content(&self) -> Content {
        Content::U64(*self as u64)
    }
}
impl Deserialize for usize {
    fn from_content(c: &Content) -> Result<Self, Error> {
        u64::from_content(c)
            .and_then(|n| usize::try_from(n).map_err(|_| Error::custom("usize out of range")))
    }
}

impl Serialize for isize {
    fn to_content(&self) -> Content {
        (*self as i64).to_content()
    }
}
impl Deserialize for isize {
    fn from_content(c: &Content) -> Result<Self, Error> {
        i64::from_content(c)
            .and_then(|n| isize::try_from(n).map_err(|_| Error::custom("isize out of range")))
    }
}

impl Serialize for bool {
    fn to_content(&self) -> Content {
        Content::Bool(*self)
    }
}
impl Deserialize for bool {
    fn from_content(c: &Content) -> Result<Self, Error> {
        match c {
            Content::Bool(b) => Ok(*b),
            _ => Err(Error::custom("expected bool")),
        }
    }
}

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                if self.is_finite() { Content::F64(f64::from(*self)) } else { Content::Null }
            }
        }
        impl Deserialize for $t {
            fn from_content(c: &Content) -> Result<Self, Error> {
                match c {
                    Content::F64(x) => Ok(*x as $t),
                    Content::U64(n) => Ok(*n as $t),
                    Content::I64(n) => Ok(*n as $t),
                    Content::Null => Ok(<$t>::NAN),
                    _ => Err(Error::custom("expected number")),
                }
            }
        }
    )*};
}
impl_float!(f32, f64);

impl Serialize for String {
    fn to_content(&self) -> Content {
        Content::Str(self.clone())
    }
}
impl Deserialize for String {
    fn from_content(c: &Content) -> Result<Self, Error> {
        c.as_str()
            .map(str::to_owned)
            .ok_or_else(|| Error::custom("expected string"))
    }
}

impl Serialize for str {
    fn to_content(&self) -> Content {
        Content::Str(self.to_owned())
    }
}
impl Deserialize for &'static str {
    fn from_content(c: &Content) -> Result<Self, Error> {
        // Real serde handles `&str` fields by borrowing from the input;
        // this owned-tree stand-in leaks instead. Acceptable: the only
        // such field is a diagnostic label and is never deserialized in
        // bulk.
        c.as_str()
            .map(|s| &*Box::leak(s.to_owned().into_boxed_str()))
            .ok_or_else(|| Error::custom("expected string"))
    }
}

impl Serialize for char {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}
impl Deserialize for char {
    fn from_content(c: &Content) -> Result<Self, Error> {
        let s = c.as_str().ok_or_else(|| Error::custom("expected char"))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(ch), None) => Ok(ch),
            _ => Err(Error::custom("expected single-char string")),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_content(&self) -> Content {
        match self {
            Some(v) => v.to_content(),
            None => Content::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn from_content(c: &Content) -> Result<Self, Error> {
        match c {
            Content::Null => Ok(None),
            other => T::from_content(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_content(c: &Content) -> Result<Self, Error> {
        c.as_seq()
            .ok_or_else(|| Error::custom("expected array"))?
            .iter()
            .map(T::from_content)
            .collect()
    }
}

impl<T: Serialize + Ord> Serialize for BTreeSet<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}
impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn from_content(c: &Content) -> Result<Self, Error> {
        c.as_seq()
            .ok_or_else(|| Error::custom("expected array"))?
            .iter()
            .map(T::from_content)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}
impl<T: Deserialize + fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_content(c: &Content) -> Result<Self, Error> {
        let v = Vec::<T>::from_content(c)?;
        <[T; N]>::try_from(v).map_err(|v| Error::custom(format!("expected {N} elements, got {}", v.len())))
    }
}

macro_rules! impl_tuple {
    ($(($($t:ident / $i:tt),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_content(&self) -> Content {
                Content::Seq(vec![$(self.$i.to_content()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_content(c: &Content) -> Result<Self, Error> {
                let s = c.as_seq().ok_or_else(|| Error::custom("expected tuple array"))?;
                Ok(($($t::from_content(
                    s.get($i).ok_or_else(|| Error::custom("tuple too short"))?
                )?,)+))
            }
        }
    )*};
}
impl_tuple! {
    (A / 0)
    (A / 0, B / 1)
    (A / 0, B / 1, C / 2)
    (A / 0, B / 1, C / 2, D / 3)
}

/// Map keys must render as JSON object keys.
pub trait MapKey: Sized {
    /// The key as a string.
    fn to_key(&self) -> String;
    /// Parses the key back.
    ///
    /// # Errors
    ///
    /// Returns [`Error`] when the string is not a valid key of this type.
    fn from_key(s: &str) -> Result<Self, Error>;
}

impl MapKey for String {
    fn to_key(&self) -> String {
        self.clone()
    }
    fn from_key(s: &str) -> Result<Self, Error> {
        Ok(s.to_owned())
    }
}

macro_rules! impl_numeric_key {
    ($($t:ty),*) => {$(
        impl MapKey for $t {
            fn to_key(&self) -> String {
                self.to_string()
            }
            fn from_key(s: &str) -> Result<Self, Error> {
                s.parse().map_err(|_| Error::custom(format!("bad numeric key {s:?}")))
            }
        }
    )*};
}
impl_numeric_key!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<K: MapKey + Ord, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_content(&self) -> Content {
        Content::Map(self.iter().map(|(k, v)| (k.to_key(), v.to_content())).collect())
    }
}
impl<K: MapKey + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_content(c: &Content) -> Result<Self, Error> {
        c.as_map()
            .ok_or_else(|| Error::custom("expected object"))?
            .iter()
            .map(|(k, v)| Ok((K::from_key(k)?, V::from_content(v)?)))
            .collect()
    }
}

impl<K: MapKey + Eq + std::hash::Hash + Ord, V: Serialize> Serialize for HashMap<K, V> {
    fn to_content(&self) -> Content {
        // Sort for deterministic output.
        let mut entries: Vec<(String, Content)> =
            self.iter().map(|(k, v)| (k.to_key(), v.to_content())).collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Content::Map(entries)
    }
}
impl<K: MapKey + Eq + std::hash::Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn from_content(c: &Content) -> Result<Self, Error> {
        c.as_map()
            .ok_or_else(|| Error::custom("expected object"))?
            .iter()
            .map(|(k, v)| Ok((K::from_key(k)?, V::from_content(v)?)))
            .collect()
    }
}

impl Serialize for Content {
    fn to_content(&self) -> Content {
        self.clone()
    }
}
impl Deserialize for Content {
    fn from_content(c: &Content) -> Result<Self, Error> {
        Ok(c.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u32::from_content(&42u32.to_content()), Ok(42));
        assert_eq!(i32::from_content(&(-7i32).to_content()), Ok(-7));
        assert_eq!(bool::from_content(&true.to_content()), Ok(true));
        assert_eq!(
            String::from_content(&"hi".to_string().to_content()),
            Ok("hi".to_string())
        );
        let v = vec![1u8, 2, 3];
        assert_eq!(Vec::<u8>::from_content(&v.to_content()), Ok(v));
        assert_eq!(Option::<u8>::from_content(&Content::Null), Ok(None));
    }

    #[test]
    fn map_keys() {
        let mut m = BTreeMap::new();
        m.insert("a".to_string(), 1u32);
        let c = m.to_content();
        assert_eq!(BTreeMap::<String, u32>::from_content(&c), Ok(m));
    }
}
