//! Offline stand-in for `crossbeam` exposing the `thread::scope` API
//! the campaign engine uses, implemented on `std::thread::scope`.

#![forbid(unsafe_code)]

/// Scoped threads (crossbeam 0.8 signatures over `std::thread::scope`).
pub mod thread {
    /// Handle passed to the scope closure; spawns scoped threads.
    #[derive(Clone, Copy)]
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Join handle for a scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure receives the scope
        /// handle again (crossbeam convention) so it can spawn nested
        /// threads.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let this = *self;
            ScopedJoinHandle {
                inner: self.inner.spawn(move || f(&this)),
            }
        }
    }

    impl<T> ScopedJoinHandle<'_, T> {
        /// Waits for the thread to finish.
        ///
        /// # Errors
        ///
        /// Returns the thread's panic payload if it panicked.
        pub fn join(self) -> std::thread::Result<T> {
            self.inner.join()
        }
    }

    /// Creates a scope for spawning scoped threads.
    ///
    /// Unlike `std::thread::scope`, panics in spawned threads are
    /// captured and returned as `Err` rather than propagated
    /// (crossbeam 0.8 behaviour). Only the first panic is reported.
    ///
    /// # Errors
    ///
    /// Returns the panic payload of the first panicking thread.
    pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
    where
        F: for<'scope, 'r> FnOnce(&'r Scope<'scope, 'env>) -> R,
    {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn scope_runs_threads_and_joins() {
        let total = AtomicU64::new(0);
        let total_ref = &total;
        let result = super::thread::scope(|s| {
            let handles: Vec<_> = (0..4u64)
                .map(|i| s.spawn(move |_| total_ref.fetch_add(i, Ordering::SeqCst)))
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            "done"
        });
        assert_eq!(result.unwrap(), "done");
        assert_eq!(total.load(Ordering::SeqCst), 6);
    }

    #[test]
    fn panics_become_err() {
        let result = super::thread::scope(|s| {
            s.spawn(|_| panic!("boom")).join().unwrap_or(0u32)
        });
        // The inner join swallowed the panic; the scope result is Ok.
        assert_eq!(result.unwrap(), 0);
    }
}
