//! `#[derive(Serialize, Deserialize)]` for the offline serde stand-in.
//!
//! Implemented directly on `proc_macro::TokenStream` (no syn/quote in the
//! container). Supports exactly the shapes this workspace serializes:
//! non-generic structs (named, tuple, unit) and enums (unit, tuple and
//! struct variants), plus the field attributes `#[serde(default)]` and
//! `#[serde(skip_serializing_if = "path")]`. Anything else fails loudly
//! at expansion time rather than silently misbehaving.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// One parsed field of a struct or struct variant.
struct Field {
    name: String,
    default: bool,
    skip_serializing_if: Option<String>,
}

/// One parsed enum variant.
enum Variant {
    Unit(String),
    Tuple(String, usize),
    Struct(String, Vec<Field>),
}

/// The parsed item shape.
enum Item {
    NamedStruct(String, Vec<Field>),
    TupleStruct(String, usize),
    UnitStruct(String),
    Enum(String, Vec<Variant>),
}

/// Derives `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item).parse().expect("generated Serialize impl must parse")
}

/// Derives `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item).parse().expect("generated Deserialize impl must parse")
}

// ---------------------------------------------------------------- parsing

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attributes(&tokens, &mut i);
    skip_visibility(&tokens, &mut i);
    let kind = expect_ident(&tokens, &mut i);
    let name = expect_ident(&tokens, &mut i);
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde stand-in derive does not support generic type `{name}`");
    }
    match kind.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Item::NamedStruct(name, parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Item::TupleStruct(name, count_tuple_fields(g.stream()))
            }
            _ => Item::UnitStruct(name),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Item::Enum(name, parse_variants(g.stream()))
            }
            _ => panic!("malformed enum `{name}`"),
        },
        other => panic!("cannot derive serde impls for `{other} {name}`"),
    }
}

/// Skips `#[...]` runs, returning the `#[serde(...)]` payloads seen.
fn take_attributes(tokens: &[TokenTree], i: &mut usize) -> (bool, Option<String>) {
    let mut default = false;
    let mut skip_if = None;
    while matches!(tokens.get(*i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        *i += 1;
        let TokenTree::Group(g) = &tokens[*i] else { panic!("malformed attribute") };
        let inner: Vec<TokenTree> = g.stream().into_iter().collect();
        if matches!(inner.first(), Some(TokenTree::Ident(id)) if id.to_string() == "serde") {
            let TokenTree::Group(args) = &inner[1] else { panic!("malformed #[serde] attribute") };
            parse_serde_args(args.stream(), &mut default, &mut skip_if);
        }
        *i += 1;
    }
    (default, skip_if)
}

fn parse_serde_args(args: TokenStream, default: &mut bool, skip_if: &mut Option<String>) {
    let toks: Vec<TokenTree> = args.into_iter().collect();
    let mut j = 0;
    while j < toks.len() {
        let TokenTree::Ident(key) = &toks[j] else { panic!("unsupported #[serde] syntax") };
        match key.to_string().as_str() {
            "default" => {
                *default = true;
                j += 1;
            }
            "skip_serializing_if" => {
                // skip_serializing_if = "Path::to::predicate"
                let TokenTree::Literal(lit) = &toks[j + 2] else {
                    panic!("skip_serializing_if expects a string literal")
                };
                *skip_if = Some(lit.to_string().trim_matches('"').to_owned());
                j += 3;
            }
            other => panic!("unsupported #[serde({other} ...)] attribute in offline stand-in"),
        }
        if matches!(toks.get(j), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            j += 1;
        }
    }
}

fn skip_attributes(tokens: &[TokenTree], i: &mut usize) {
    let _ = take_attributes(tokens, i);
}

fn skip_visibility(tokens: &[TokenTree], i: &mut usize) {
    if matches!(tokens.get(*i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        *i += 1;
        if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            *i += 1;
        }
    }
}

fn expect_ident(tokens: &[TokenTree], i: &mut usize) -> String {
    let TokenTree::Ident(id) = &tokens[*i] else { panic!("expected identifier") };
    *i += 1;
    id.to_string()
}

/// Skips one type, honoring `<...>` nesting; stops before a top-level `,`.
fn skip_type(tokens: &[TokenTree], i: &mut usize) {
    let mut angle = 0i32;
    while let Some(t) = tokens.get(*i) {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => return,
                _ => {}
            }
        }
        *i += 1;
    }
}

fn parse_named_fields(body: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let (default, skip_serializing_if) = take_attributes(&tokens, &mut i);
        skip_visibility(&tokens, &mut i);
        let name = expect_ident(&tokens, &mut i);
        i += 1; // ':'
        skip_type(&tokens, &mut i);
        i += 1; // ','
        fields.push(Field { name, default, skip_serializing_if });
    }
    fields
}

fn count_tuple_fields(body: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut i = 0;
    let mut n = 0;
    while i < tokens.len() {
        skip_attributes(&tokens, &mut i);
        skip_visibility(&tokens, &mut i);
        skip_type(&tokens, &mut i);
        i += 1; // ','
        n += 1;
    }
    n
}

fn parse_variants(body: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attributes(&tokens, &mut i);
        let name = expect_ident(&tokens, &mut i);
        let variant = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Variant::Tuple(name, count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Variant::Struct(name, parse_named_fields(g.stream()))
            }
            _ => Variant::Unit(name),
        };
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
            panic!("explicit enum discriminants are not supported by the serde stand-in");
        }
        if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            i += 1;
        }
        variants.push(variant);
    }
    variants
}

// ------------------------------------------------------------- generation

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::NamedStruct(name, fields) => {
            let mut body = String::from(
                "let mut entries: Vec<(String, ::serde::Content)> = Vec::new();\n",
            );
            for f in fields {
                let push = format!(
                    "entries.push((\"{n}\".to_string(), ::serde::Serialize::to_content(&self.{n})));\n",
                    n = f.name
                );
                match &f.skip_serializing_if {
                    Some(pred) => body.push_str(&format!(
                        "if !({pred}(&self.{n})) {{ {push} }}\n",
                        n = f.name
                    )),
                    None => body.push_str(&push),
                }
            }
            body.push_str("::serde::Content::Map(entries)");
            impl_serialize(name, &body)
        }
        Item::TupleStruct(name, 1) => {
            impl_serialize(name, "::serde::Serialize::to_content(&self.0)")
        }
        Item::TupleStruct(name, n) => {
            let elems: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_content(&self.{i})"))
                .collect();
            impl_serialize(name, &format!("::serde::Content::Seq(vec![{}])", elems.join(", ")))
        }
        Item::UnitStruct(name) => impl_serialize(name, "::serde::Content::Null"),
        Item::Enum(name, variants) => {
            let mut arms = String::new();
            for v in variants {
                match v {
                    Variant::Unit(vn) => arms.push_str(&format!(
                        "{name}::{vn} => ::serde::Content::Str(\"{vn}\".to_string()),\n"
                    )),
                    Variant::Tuple(vn, 1) => arms.push_str(&format!(
                        "{name}::{vn}(f0) => ::serde::Content::Map(vec![(\"{vn}\".to_string(), \
                         ::serde::Serialize::to_content(f0))]),\n"
                    )),
                    Variant::Tuple(vn, n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                        let elems: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Serialize::to_content(f{i})"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vn}({b}) => ::serde::Content::Map(vec![(\"{vn}\".to_string(), \
                             ::serde::Content::Seq(vec![{e}]))]),\n",
                            b = binds.join(", "),
                            e = elems.join(", ")
                        ));
                    }
                    Variant::Struct(vn, fields) => {
                        let binds: Vec<String> = fields.iter().map(|f| f.name.clone()).collect();
                        let entries: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "(\"{n}\".to_string(), ::serde::Serialize::to_content({n}))",
                                    n = f.name
                                )
                            })
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {b} }} => ::serde::Content::Map(vec![(\"{vn}\".to_string(), \
                             ::serde::Content::Map(vec![{e}]))]),\n",
                            b = binds.join(", "),
                            e = entries.join(", ")
                        ));
                    }
                }
            }
            impl_serialize(name, &format!("match self {{\n{arms}}}"))
        }
    }
}

fn impl_serialize(name: &str, body: &str) -> String {
    format!(
        "#[automatically_derived]\nimpl ::serde::Serialize for {name} {{\n\
         fn to_content(&self) -> ::serde::Content {{\n{body}\n}}\n}}\n"
    )
}

fn named_fields_constructor(path: &str, fields: &[Field], entries_expr: &str) -> String {
    let mut setters = String::new();
    for f in fields {
        let missing = if f.default {
            "::std::default::Default::default()".to_string()
        } else {
            format!(
                "return Err(::serde::Error::custom(\"missing field `{}` in {}\"))",
                f.name, path
            )
        };
        setters.push_str(&format!(
            "{n}: match ::serde::content_get({entries_expr}, \"{n}\") {{\n\
             Some(v) => ::serde::Deserialize::from_content(v)?,\n\
             None => {missing},\n}},\n",
            n = f.name
        ));
    }
    format!("{path} {{\n{setters}}}")
}

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::NamedStruct(name, fields) => {
            let ctor = named_fields_constructor(name, fields, "entries");
            impl_deserialize(
                name,
                &format!(
                    "let entries = c.as_map().ok_or_else(|| \
                     ::serde::Error::custom(\"expected map for {name}\"))?;\nOk({ctor})"
                ),
            )
        }
        Item::TupleStruct(name, 1) => impl_deserialize(
            name,
            &format!("Ok({name}(::serde::Deserialize::from_content(c)?))"),
        ),
        Item::TupleStruct(name, n) => {
            let elems: Vec<String> = (0..*n)
                .map(|i| {
                    format!(
                        "::serde::Deserialize::from_content(s.get({i}).ok_or_else(|| \
                         ::serde::Error::custom(\"tuple struct too short\"))?)?"
                    )
                })
                .collect();
            impl_deserialize(
                name,
                &format!(
                    "let s = c.as_seq().ok_or_else(|| \
                     ::serde::Error::custom(\"expected array for {name}\"))?;\n\
                     Ok({name}({}))",
                    elems.join(", ")
                ),
            )
        }
        Item::UnitStruct(name) => impl_deserialize(name, &format!("Ok({name})")),
        Item::Enum(name, variants) => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for v in variants {
                match v {
                    Variant::Unit(vn) => unit_arms.push_str(&format!(
                        "\"{vn}\" => Ok({name}::{vn}),\n"
                    )),
                    Variant::Tuple(vn, 1) => data_arms.push_str(&format!(
                        "\"{vn}\" => Ok({name}::{vn}(::serde::Deserialize::from_content(v)?)),\n"
                    )),
                    Variant::Tuple(vn, n) => {
                        let elems: Vec<String> = (0..*n)
                            .map(|i| {
                                format!(
                                    "::serde::Deserialize::from_content(s.get({i}).ok_or_else(|| \
                                     ::serde::Error::custom(\"variant tuple too short\"))?)?"
                                )
                            })
                            .collect();
                        data_arms.push_str(&format!(
                            "\"{vn}\" => {{\nlet s = v.as_seq().ok_or_else(|| \
                             ::serde::Error::custom(\"expected array for {name}::{vn}\"))?;\n\
                             Ok({name}::{vn}({}))\n}}\n",
                            elems.join(", ")
                        ));
                    }
                    Variant::Struct(vn, fields) => {
                        let ctor =
                            named_fields_constructor(&format!("{name}::{vn}"), fields, "entries");
                        data_arms.push_str(&format!(
                            "\"{vn}\" => {{\nlet entries = v.as_map().ok_or_else(|| \
                             ::serde::Error::custom(\"expected map for {name}::{vn}\"))?;\n\
                             Ok({ctor})\n}}\n"
                        ));
                    }
                }
            }
            impl_deserialize(
                name,
                &format!(
                    "match c {{\n\
                     ::serde::Content::Str(s) => match s.as_str() {{\n{unit_arms}\
                     other => Err(::serde::Error::custom(format!(\"unknown {name} variant {{other}}\"))),\n}},\n\
                     ::serde::Content::Map(m) if m.len() == 1 => {{\n\
                     let (k, v) = &m[0];\nlet _ = v;\n\
                     match k.as_str() {{\n{data_arms}\
                     other => Err(::serde::Error::custom(format!(\"unknown {name} variant {{other}}\"))),\n}}\n}},\n\
                     _ => Err(::serde::Error::custom(\"malformed {name} value\")),\n}}"
                ),
            )
        }
    }
}

fn impl_deserialize(name: &str, body: &str) -> String {
    format!(
        "#[automatically_derived]\nimpl ::serde::Deserialize for {name} {{\n\
         fn from_content(c: &::serde::Content) -> Result<Self, ::serde::Error> {{\n{body}\n}}\n}}\n"
    )
}
