//! Offline stand-in for `criterion`. Benchmarks run a fixed-count
//! timing loop and print mean per-iteration time; the macro surface
//! (`criterion_group!` / `criterion_main!`, `Criterion`,
//! `benchmark_group`, `Bencher::iter`) matches what the bench crate
//! uses so benches compile and run without the real dependency.

#![forbid(unsafe_code)]

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Prevents the optimizer from deleting a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, self.sample_size, &mut f);
        self
    }

    /// Criterion's post-run hook; a no-op here.
    pub fn final_summary(&mut self) {}
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, name);
        run_one(&full, self.sample_size, &mut f);
        self
    }

    /// Ends the group (no-op; mirrors criterion's API).
    pub fn finish(&mut self) {}
}

/// Timer handle passed to benchmark closures.
pub struct Bencher {
    samples: usize,
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Times `routine`, running it `samples` times.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.samples {
            std_black_box(routine());
        }
        self.elapsed = start.elapsed();
        self.iters = self.samples as u64;
    }
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, samples: usize, f: &mut F) {
    // One untimed warmup iteration.
    let mut warmup = Bencher { samples: 1, elapsed: Duration::ZERO, iters: 0 };
    f(&mut warmup);

    let mut b = Bencher { samples, elapsed: Duration::ZERO, iters: 0 };
    f(&mut b);
    let per_iter = if b.iters == 0 {
        Duration::ZERO
    } else {
        b.elapsed / u32::try_from(b.iters).unwrap_or(u32::MAX)
    };
    println!("bench: {name:<48} {per_iter:>12.2?}/iter ({} iters)", b.iters);
}

/// Declares a group of benchmark functions (criterion-compatible).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark entry point (criterion-compatible).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("stub");
        g.sample_size(3);
        g.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        g.finish();
    }

    criterion_group!(stub_group, sample_bench);

    #[test]
    fn group_runs() {
        stub_group();
    }

    #[test]
    fn bench_function_direct() {
        let mut c = Criterion::default().sample_size(2);
        c.bench_function("direct", |b| b.iter(|| black_box(21u32) * 2));
    }
}
