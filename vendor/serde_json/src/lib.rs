//! Offline stand-in for `serde_json`: renders and parses the serde
//! stand-in's [`Content`] tree. Output is deterministic (declaration
//! order for structs, sorted keys for hash maps), which the campaign
//! bit-identity tests depend on.

#![forbid(unsafe_code)]

use serde::{Content, Deserialize, Serialize};

pub use serde::Error;

/// `serde_json::Value` stand-in (the Content tree itself).
pub type Value = Content;

/// Serializes to a compact JSON string.
///
/// # Errors
///
/// Never fails in the stand-in; the `Result` mirrors serde_json's API.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_content(&mut out, &value.to_content(), None, 0);
    Ok(out)
}

/// Serializes to pretty-printed JSON (two-space indent).
///
/// # Errors
///
/// Never fails in the stand-in; the `Result` mirrors serde_json's API.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_content(&mut out, &value.to_content(), Some("  "), 0);
    Ok(out)
}

/// Serializes to compact JSON bytes.
///
/// # Errors
///
/// Never fails in the stand-in; the `Result` mirrors serde_json's API.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    to_string(value).map(String::into_bytes)
}

/// Parses a value from a JSON string.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON or a shape mismatch.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let content = Parser::new(s).parse_document()?;
    T::from_content(&content)
}

/// Parses a value from JSON bytes.
///
/// # Errors
///
/// Returns [`Error`] on invalid UTF-8, malformed JSON or a shape
/// mismatch.
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T, Error> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error::custom(format!("invalid UTF-8: {e}")))?;
    from_str(s)
}

// ------------------------------------------------------------------ write

fn write_content(out: &mut String, c: &Content, indent: Option<&str>, depth: usize) {
    match c {
        Content::Null => out.push_str("null"),
        Content::Bool(true) => out.push_str("true"),
        Content::Bool(false) => out.push_str("false"),
        Content::U64(n) => out.push_str(&n.to_string()),
        Content::I64(n) => out.push_str(&n.to_string()),
        Content::F64(x) => write_f64(out, *x),
        Content::Str(s) => write_escaped(out, s),
        Content::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_content(out, item, indent, depth + 1);
            }
            if !items.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push(']');
        }
        Content::Map(entries) => {
            out.push('{');
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_content(out, v, indent, depth + 1);
            }
            if !entries.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<&str>, depth: usize) {
    if let Some(pad) = indent {
        out.push('\n');
        for _ in 0..depth {
            out.push_str(pad);
        }
    }
}

fn write_f64(out: &mut String, x: f64) {
    if x.is_finite() {
        let s = format!("{x}");
        out.push_str(&s);
        // Keep the float/integer distinction through a reparse.
        if !s.contains(['.', 'e', 'E']) {
            out.push_str(".0");
        }
    } else {
        out.push_str("null");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ------------------------------------------------------------------ parse

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Parser { bytes: s.as_bytes(), pos: 0 }
    }

    fn parse_document(&mut self) -> Result<Content, Error> {
        let v = self.parse_value()?;
        self.skip_ws();
        if self.pos != self.bytes.len() {
            return Err(Error::custom("trailing characters after JSON value"));
        }
        Ok(v)
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Result<u8, Error> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| Error::custom("unexpected end of JSON"))
    }

    fn eat(&mut self, b: u8) -> Result<(), Error> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> Result<(), Error> {
        self.skip_ws();
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(())
        } else {
            Err(Error::custom(format!("expected `{kw}` at byte {}", self.pos)))
        }
    }

    fn parse_value(&mut self) -> Result<Content, Error> {
        match self.peek()? {
            b'n' => self.eat_keyword("null").map(|()| Content::Null),
            b't' => self.eat_keyword("true").map(|()| Content::Bool(true)),
            b'f' => self.eat_keyword("false").map(|()| Content::Bool(false)),
            b'"' => self.parse_string().map(Content::Str),
            b'[' => self.parse_array(),
            b'{' => self.parse_object(),
            _ => self.parse_number(),
        }
    }

    fn parse_array(&mut self) -> Result<Content, Error> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Content::Seq(items));
        }
        loop {
            items.push(self.parse_value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Content::Seq(items));
                }
                other => {
                    return Err(Error::custom(format!(
                        "expected `,` or `]`, found `{}`",
                        other as char
                    )))
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Content, Error> {
        self.eat(b'{')?;
        let mut entries = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Content::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.eat(b':')?;
            entries.push((key, self.parse_value()?));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Content::Map(entries));
                }
                other => {
                    return Err(Error::custom(format!(
                        "expected `,` or `}}`, found `{}`",
                        other as char
                    )))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let b = self
                .bytes
                .get(self.pos)
                .copied()
                .ok_or_else(|| Error::custom("unterminated string"))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = self
                        .bytes
                        .get(self.pos)
                        .copied()
                        .ok_or_else(|| Error::custom("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::custom("truncated \\u escape"))?;
                            self.pos += 4;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::custom("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::custom("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::custom("bad \\u code point"))?,
                            );
                        }
                        other => {
                            return Err(Error::custom(format!(
                                "unknown escape `\\{}`",
                                other as char
                            )))
                        }
                    }
                }
                _ => {
                    // Re-decode the UTF-8 sequence starting here.
                    let start = self.pos - 1;
                    let len = utf8_len(b);
                    let end = start + len;
                    let chunk = self
                        .bytes
                        .get(start..end)
                        .ok_or_else(|| Error::custom("truncated UTF-8"))?;
                    let s =
                        std::str::from_utf8(chunk).map_err(|_| Error::custom("invalid UTF-8"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Content, Error> {
        self.skip_ws();
        let start = self.pos;
        if matches!(self.bytes.get(self.pos), Some(b'-')) {
            self.pos += 1;
        }
        while matches!(
            self.bytes.get(self.pos),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("invalid number"))?;
        if text.is_empty() {
            return Err(Error::custom(format!("expected a value at byte {start}")));
        }
        if text.contains(['.', 'e', 'E']) {
            text.parse::<f64>()
                .map(Content::F64)
                .map_err(|_| Error::custom(format!("bad float `{text}`")))
        } else if let Some(stripped) = text.strip_prefix('-') {
            stripped
                .parse::<u64>()
                .map_err(|_| Error::custom(format!("bad integer `{text}`")))
                .and_then(|n| {
                    i64::try_from(n)
                        .map(|v| Content::I64(-v))
                        .map_err(|_| Error::custom(format!("integer `{text}` out of range")))
                })
        } else {
            text.parse::<u64>()
                .map(Content::U64)
                .map_err(|_| Error::custom(format!("bad integer `{text}`")))
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_basics() {
        let v = vec![1u32, 2, 3];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[1,2,3]");
        assert_eq!(from_str::<Vec<u32>>(&json).unwrap(), v);
    }

    #[test]
    fn strings_escape() {
        let s = "a\"b\\c\nd".to_string();
        let json = to_string(&s).unwrap();
        assert_eq!(from_str::<String>(&json).unwrap(), s);
    }

    #[test]
    fn floats_keep_floatness() {
        let json = to_string(&2.0f64).unwrap();
        assert_eq!(json, "2.0");
        assert_eq!(from_str::<f64>(&json).unwrap(), 2.0);
        assert_eq!(to_string(&0.25f64).unwrap(), "0.25");
    }

    #[test]
    fn negative_integers() {
        assert_eq!(to_string(&-5i32).unwrap(), "-5");
        assert_eq!(from_str::<i32>("-5").unwrap(), -5);
    }

    #[test]
    fn nested_objects() {
        let json = r#"{ "a": [1, {"b": null}], "c": "x" }"#;
        let v: Content = from_str(json).unwrap();
        let m = v.as_map().unwrap();
        assert_eq!(m.len(), 2);
        assert_eq!(m[1], ("c".to_string(), Content::Str("x".into())));
    }
}
