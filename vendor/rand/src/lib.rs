//! Offline stand-in for `rand`. Provides the small API surface the
//! workspace uses: `rngs::StdRng`, `SeedableRng::seed_from_u64`, and
//! `RngExt::random_range` over integer ranges.
//!
//! The generator is SplitMix64 — not the real `StdRng` stream, but
//! fully deterministic for a given seed, which is the only property
//! the sampling layer relies on.

#![forbid(unsafe_code)]

use std::ops::Range;

/// Seedable random number generators.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Core generator interface.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Types usable as `random_range` bounds.
pub trait SampleUniform: Copy {
    /// Converts to the u64 domain the generator works in.
    fn to_u64(self) -> u64;
    /// Converts back from the u64 domain.
    fn from_u64(v: u64) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn to_u64(self) -> u64 {
                self as u64
            }
            #[inline]
            #[allow(clippy::cast_possible_truncation)]
            fn from_u64(v: u64) -> Self {
                v as $t
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize);

/// Convenience sampling methods (rand 0.10 spelling).
pub trait RngExt: RngCore {
    /// Samples uniformly from `range` (half-open, must be non-empty).
    fn random_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        let lo = range.start.to_u64();
        let hi = range.end.to_u64();
        assert!(lo < hi, "random_range called with an empty range");
        let span = hi - lo;
        // Debiased multiply-shift rejection sampling.
        let zone = u64::MAX - (u64::MAX - span + 1) % span;
        loop {
            let v = self.next_u64();
            if v <= zone {
                return T::from_u64(lo + v % span);
            }
        }
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic SplitMix64 generator standing in for `StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.random_range(0u64..1000), b.random_range(0u64..1000));
        }
    }

    #[test]
    fn in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.random_range(10u64..20);
            assert!((10..20).contains(&v));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.random_range(0u64..1_000_000)).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.random_range(0u64..1_000_000)).collect();
        assert_ne!(va, vb);
    }
}
