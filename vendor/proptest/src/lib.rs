//! Offline stand-in for `proptest`. Implements the strategy +
//! `proptest!` surface the workspace's property tests use, driven by a
//! deterministic per-test RNG (seeded from the test name) so runs are
//! reproducible. Shrinking is not implemented — a failing case panics
//! with its message directly.

#![forbid(unsafe_code)]
#![allow(clippy::type_complexity)]

pub mod test_runner {
    //! Minimal test-runner types: case errors and the deterministic RNG.

    /// Why a single generated case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` filtered the case out; try another.
        Reject(String),
        /// An assertion failed; the property is falsified.
        Fail(String),
    }

    impl TestCaseError {
        /// Builds a failure error.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        /// Builds a rejection (assumption not met).
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    /// Result of one generated case.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Deterministic SplitMix64 generator driving all strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Creates a generator from a seed.
        pub fn seed(seed: u64) -> Self {
            TestRng { state: seed ^ 0x6a09_e667_f3bc_c909 }
        }

        /// Returns the next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform value in `0..bound` (`bound > 0`).
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            self.next_u64() % bound
        }
    }

    /// FNV-1a hash of the test name, used as the per-test seed.
    pub fn seed_from_name(name: &str) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    /// Number of accepted cases each property runs.
    pub const CASES: u32 = 64;
    /// Upper bound on generation attempts (accepted + rejected).
    pub const MAX_ATTEMPTS: u32 = CASES * 16;

    /// Drives one property: generates cases until [`CASES`] accepted
    /// cases ran, panicking on the first failure.
    pub fn run_cases<F>(name: &str, mut case: F)
    where
        F: FnMut(&mut TestRng) -> TestCaseResult,
    {
        let mut rng = TestRng::seed(seed_from_name(name));
        let mut accepted = 0u32;
        let mut attempts = 0u32;
        while accepted < CASES && attempts < MAX_ATTEMPTS {
            attempts += 1;
            match case(&mut rng) {
                Ok(()) => accepted += 1,
                Err(TestCaseError::Reject(_)) => {}
                Err(TestCaseError::Fail(msg)) => {
                    panic!("property `{name}` failed (case {accepted}): {msg}")
                }
            }
        }
        assert!(
            accepted > 0,
            "property `{name}`: every generated case was rejected by prop_assume!"
        );
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use crate::test_runner::TestRng;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transforms generated values with `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Types with a canonical whole-domain strategy.
    pub trait ArbitraryValue {
        /// Generates an arbitrary value of `Self`.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl ArbitraryValue for $t {
                #[allow(clippy::cast_possible_truncation, clippy::cast_possible_wrap)]
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl ArbitraryValue for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    /// Strategy returned by [`any`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(PhantomData<T>);

    /// Strategy over the whole domain of `T`.
    pub fn any<T: ArbitraryValue>() -> Any<T> {
        Any(PhantomData)
    }

    impl<T: ArbitraryValue> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss, clippy::cast_possible_wrap)]
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let lo = self.start as i128;
                    let hi = self.end as i128;
                    assert!(lo < hi, "empty range strategy");
                    let span = (hi - lo) as u64;
                    (lo + rng.below(span) as i128) as $t
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss, clippy::cast_possible_wrap)]
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let lo = *self.start() as i128;
                    let hi = *self.end() as i128;
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi - lo + 1) as u64;
                    (lo + rng.below(span) as i128) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            #[allow(clippy::cast_precision_loss)]
            let frac = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
            self.start + frac * (self.end - self.start)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident),+)),+ $(,)?) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($s,)+) = self;
                    ($($s.generate(rng),)+)
                }
            }
        )+};
    }

    impl_tuple_strategy!((A, B), (A, B, C), (A, B, C, D));

    /// `&str` strategies: a `[class]{m,n}` pattern generates matching
    /// strings; anything else generates the literal itself.
    impl Strategy for &str {
        type Value = String;

        fn generate(&self, rng: &mut TestRng) -> String {
            match parse_class_pattern(self) {
                Some((alphabet, lo, hi)) => {
                    let len = lo + rng.below((hi - lo + 1) as u64) as usize;
                    (0..len)
                        .map(|_| alphabet[rng.below(alphabet.len() as u64) as usize])
                        .collect()
                }
                None => (*self).to_string(),
            }
        }
    }

    /// Parses `[chars]{m,n}` / `[chars]{m}` into (alphabet, m, n).
    fn parse_class_pattern(pat: &str) -> Option<(Vec<char>, usize, usize)> {
        let rest = pat.strip_prefix('[')?;
        let close = rest.find(']')?;
        let class: Vec<char> = rest[..close].chars().collect();
        let mut alphabet = Vec::new();
        let mut i = 0;
        while i < class.len() {
            if i + 2 < class.len() && class[i + 1] == '-' {
                let (a, b) = (class[i], class[i + 2]);
                for c in a..=b {
                    alphabet.push(c);
                }
                i += 3;
            } else {
                alphabet.push(class[i]);
                i += 1;
            }
        }
        if alphabet.is_empty() {
            return None;
        }
        let counts = rest[close + 1..].strip_prefix('{')?.strip_suffix('}')?;
        let (lo, hi) = match counts.split_once(',') {
            Some((a, b)) => (a.trim().parse().ok()?, b.trim().parse::<usize>().ok()?),
            None => {
                let n: usize = counts.trim().parse().ok()?;
                (n, n)
            }
        };
        Some((alphabet, lo, hi))
    }

    /// One-of strategy built by `prop_oneof!`.
    pub struct Union<V> {
        arms: Vec<Box<dyn Fn(&mut TestRng) -> V>>,
    }

    impl<V> Union<V> {
        /// Builds a union from boxed generator arms.
        pub fn new(arms: Vec<Box<dyn Fn(&mut TestRng) -> V>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;

        fn generate(&self, rng: &mut TestRng) -> V {
            let idx = rng.below(self.arms.len() as u64) as usize;
            (self.arms[idx])(rng)
        }
    }

    /// Erases a strategy into a generator closure (used by `prop_oneof!`).
    pub fn boxed_gen<S>(s: S) -> Box<dyn Fn(&mut TestRng) -> S::Value>
    where
        S: Strategy + 'static,
    {
        Box::new(move |rng| s.generate(rng))
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Element-count specification for [`vec()`].
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi_inclusive: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi_inclusive: r.end - 1 }
        }
    }

    /// Strategy generating `Vec`s of `element` values.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Creates a strategy for vectors with lengths in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi_inclusive - self.size.lo + 1) as u64;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude::*`.

    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::{TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};
}

/// Declares deterministic property tests.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::test_runner::run_cases(stringify!($name), |prop_rng| {
                    $(let $pat = $crate::strategy::Strategy::generate(&$strat, prop_rng);)+
                    $body
                    Ok(())
                });
            }
        )*
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return Err($crate::test_runner::TestCaseError::fail(concat!(
                "assertion failed: ",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current case unless the operands compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{:?}` == `{:?}`",
                left, right
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)+)));
        }
    }};
}

/// Fails the current case if the operands compare equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if left == right {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{:?}` != `{:?}`",
                left, right
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if left == right {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)+)));
        }
    }};
}

/// Rejects the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return Err($crate::test_runner::TestCaseError::reject(stringify!($cond)));
        }
    };
}

/// Picks uniformly among the given strategies (all yielding one type).
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::boxed_gen($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        /// Ranges stay in bounds.
        #[test]
        fn ranges_in_bounds(a in 10u64..20, b in 0i32..=5, c in 0.5f64..2.0) {
            prop_assert!((10..20).contains(&a));
            prop_assert!((0..=5).contains(&b));
            prop_assert!((0.5..2.0).contains(&c));
        }

        /// Vec strategy respects sizes, including exact counts.
        #[test]
        fn vec_sizes(v in crate::collection::vec(any::<u8>(), 3..6),
                     w in crate::collection::vec(any::<bool>(), 4)) {
            prop_assert!((3..6).contains(&v.len()));
            prop_assert_eq!(w.len(), 4);
        }

        /// String class patterns generate matching strings.
        #[test]
        fn class_pattern(s in "[a-c]{2,4}") {
            prop_assert!((2..=4).contains(&s.len()), "len {}", s.len());
            prop_assert!(s.chars().all(|c| ('a'..='c').contains(&c)));
        }

        /// prop_oneof picks only listed values; prop_map transforms.
        #[test]
        fn oneof_and_map(
            x in prop_oneof![Just(1u8), Just(7u8)],
            y in (0u8..10).prop_map(|n| u32::from(n) * 2),
        ) {
            prop_assert!(x == 1 || x == 7);
            prop_assert!(y % 2 == 0 && y < 20);
            prop_assume!(x != 200); // exercise the reject path
        }
    }
}
